"""Cooperative solver budgets: bounded-overrun cancellation.

The serving deadlines (:mod:`repro.serve.race`) used to rely on
strategy-level ``should_stop`` polls — once per retraction, hitting-set
round or enumeration step.  A single hard SAT query between two polls
could overrun the deadline unboundedly, and the compiled kernels
(:mod:`repro.sat.compiled`) never return to Python at all until the
query finishes.  A :class:`Budget` pushes the check into the search
loops themselves:

* the interpreted arena solver (:class:`repro.sat.solver.Solver`) polls
  the budget every :attr:`~Budget.conflict_poll_interval` conflicts
  (and every :attr:`~Budget.propagation_poll_interval` propagations, so
  decision-heavy, conflict-light instances stay responsive);
* the compiled backend re-enters its jitted kernel in chunks of at most
  ``conflict_poll_interval`` conflicts, polling between chunks and
  carrying the learnt clauses across re-entries (see
  :meth:`repro.sat.compiled.CompiledSolver.solve`);
* strategies poll :meth:`Budget.expired` at their usual coarse points
  exactly as they poll ``should_stop`` today.

An interrupted search returns ``None`` from ``solve()`` — the same
answer surface as a ``conflict_limit`` stop — but additionally sets the
solver's ``interrupted`` flag and the budget's :attr:`~Budget.reason`,
so callers can distinguish "deadline/cancel" from "bounded probe ran
out" (the enumeration layer raises :class:`SearchInterrupted` for the
former and plain :class:`TimeoutError` for the latter).

Budgets are *stateful accounting objects*: the conflict/propagation
caps are cumulative across every solver call charged against the same
instance, which is exactly what a race leg wants (one budget for the
whole leg, not per query).  They are not thread-safe — give each leg
its own instance and share only the ``should_stop`` callable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["Budget", "SearchInterrupted"]


class SearchInterrupted(TimeoutError):
    """A search stopped because its :class:`Budget` tripped.

    Subclasses :class:`TimeoutError` so pre-budget handlers (which
    treated every ``None`` answer as a conflict-limit stop) keep
    working unchanged while new code can tell the two apart.
    """


@dataclass
class Budget:
    """Cumulative work caps plus a cooperative stop signal.

    Parameters
    ----------
    should_stop:
        Zero-argument callable polled at every check; ``True`` trips
        the budget with reason ``"cancelled"``.
    deadline:
        Absolute :func:`time.monotonic` timestamp; reaching it trips
        the budget with reason ``"deadline"``.
    max_conflicts / max_propagations:
        Cumulative caps across every charge against this budget;
        exceeding one trips with reason ``"conflicts"`` /
        ``"propagations"``.
    conflict_poll_interval:
        How many conflicts a search loop may run between polls — the
        bound on cancellation overrun the serving layer asserts.
    propagation_poll_interval:
        Secondary poll cadence for conflict-light stretches.
    """

    should_stop: Callable[[], bool] | None = None
    deadline: float | None = None
    max_conflicts: int | None = None
    max_propagations: int | None = None
    conflict_poll_interval: int = 64
    propagation_poll_interval: int = 20000

    #: Work charged so far (cumulative, all solver calls).
    conflicts: int = 0
    propagations: int = 0
    #: Set once the budget trips; never reset.
    interrupted: bool = False
    #: Why it tripped: "cancelled", "deadline", "conflicts",
    #: "propagations" (None while live).
    reason: str | None = None

    def __post_init__(self) -> None:
        if self.conflict_poll_interval < 1:
            raise ValueError("conflict_poll_interval must be >= 1")
        if self.propagation_poll_interval < 1:
            raise ValueError("propagation_poll_interval must be >= 1")

    @classmethod
    def from_deadline(
        cls,
        seconds: float,
        should_stop: Callable[[], bool] | None = None,
        **kwargs,
    ) -> "Budget":
        """A budget expiring ``seconds`` from now (monotonic clock)."""
        return cls(
            should_stop=should_stop,
            deadline=time.monotonic() + seconds,
            **kwargs,
        )

    def _trip(self, reason: str) -> bool:
        if not self.interrupted:
            self.interrupted = True
            self.reason = reason
        return True

    def poll(self) -> bool:
        """Check every stop condition; ``True`` means stop now.

        Once tripped a budget stays tripped — later polls return True
        immediately without re-evaluating the conditions.
        """
        if self.interrupted:
            return True
        if (
            self.max_conflicts is not None
            and self.conflicts >= self.max_conflicts
        ):
            return self._trip("conflicts")
        if (
            self.max_propagations is not None
            and self.propagations >= self.max_propagations
        ):
            return self._trip("propagations")
        if self.deadline is not None and time.monotonic() >= self.deadline:
            return self._trip("deadline")
        if self.should_stop is not None and self.should_stop():
            return self._trip("cancelled")
        return False

    #: Strategy-level alias: poll at the same coarse points as
    #: ``should_stop`` today.
    expired = poll

    def charge(self, conflicts: int = 0, propagations: int = 0) -> bool:
        """Record consumed work, then :meth:`poll`."""
        self.conflicts += conflicts
        self.propagations += propagations
        return self.poll()

    def note(self, conflicts: int = 0, propagations: int = 0) -> None:
        """Record consumed work *without* polling (cheap bookkeeping on
        the solver's normal-exit path)."""
        self.conflicts += conflicts
        self.propagations += propagations

    def conflicts_remaining(self) -> int | None:
        """Conflicts left under ``max_conflicts`` (None = uncapped)."""
        if self.max_conflicts is None:
            return None
        return max(0, self.max_conflicts - self.conflicts)
