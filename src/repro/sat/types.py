"""Literal conventions shared by the SAT subsystem.

Externally (everywhere outside :mod:`repro.sat.solver`) literals follow the
DIMACS convention: variables are positive integers ``1, 2, ...`` and a
negative integer denotes negation.  Internally the solver packs a literal
into ``var << 1 | sign`` so that arrays can be indexed directly; the helpers
here convert between the two forms and are shared by the solver, the
enumerator and the tests.
"""

from __future__ import annotations

__all__ = [
    "to_internal",
    "to_dimacs",
    "internal_negate",
    "UNASSIGNED",
]

#: Sentinel truth value for an unassigned variable (see ``Solver._assigns``):
#: values are 1 (true), 0 (false) and >= 2 (unassigned).  ``value ^ sign``
#: then evaluates a literal without branching.
UNASSIGNED = 2


def to_internal(lit: int) -> int:
    """DIMACS literal → internal packed form.

    >>> to_internal(3), to_internal(-3)
    (6, 7)
    """
    if lit > 0:
        return lit << 1
    if lit < 0:
        return ((-lit) << 1) | 1
    raise ValueError("0 is not a DIMACS literal")


def to_dimacs(lit: int) -> int:
    """Internal packed literal → DIMACS form.

    >>> to_dimacs(6), to_dimacs(7)
    (3, -3)
    """
    var = lit >> 1
    return -var if lit & 1 else var


def internal_negate(lit: int) -> int:
    """Negate an internal literal (flip the sign bit)."""
    return lit ^ 1
