"""SAT substrate: CDCL solver, CNF tooling, encodings, enumeration.

Everything the SAT-based diagnosis side of the paper needs, implemented
from scratch (the paper used Zchaff; see DESIGN.md substitutions):

* :class:`~repro.sat.solver.Solver` — incremental CDCL solver.
* :class:`~repro.sat.cnf.CNF` — formula container with named variables.
* :mod:`~repro.sat.tseitin` — circuit → CNF encodings, incl. correction
  multiplexers.
* :mod:`~repro.sat.cardinality` — at-most-k encodings (pairwise,
  sequential counter, incremental totalizer).
* :func:`~repro.sat.enumerate.enumerate_solutions` — all-solutions
  enumeration with superset/exact blocking clauses.
* :mod:`~repro.sat.dimacs` — DIMACS I/O.
"""

from .solver import Solver, SolveResult
from .cnf import CNF
from .tseitin import encode_circuit, encode_gate, encode_mux, encode_equivalence
from .cardinality import (
    at_most_k_pairwise,
    at_most_k_sequential,
    totalizer,
    at_least_one,
)
from .enumerate import enumerate_solutions
from .dimacs import parse_dimacs, load_dimacs, write_dimacs, dump_dimacs
from .proof import ProofLog, ProofStep, check_rup, check_drat, solve_with_proof

__all__ = [
    "Solver",
    "SolveResult",
    "CNF",
    "encode_circuit",
    "encode_gate",
    "encode_mux",
    "encode_equivalence",
    "at_most_k_pairwise",
    "at_most_k_sequential",
    "totalizer",
    "at_least_one",
    "enumerate_solutions",
    "ProofLog",
    "ProofStep",
    "check_rup",
    "check_drat",
    "solve_with_proof",
    "parse_dimacs",
    "load_dimacs",
    "write_dimacs",
    "dump_dimacs",
]
