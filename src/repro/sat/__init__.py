"""SAT substrate: CDCL solver backends, CNF tooling, encodings, enumeration.

Everything the SAT-based diagnosis side of the paper needs, implemented
from scratch (the paper used Zchaff; see DESIGN.md substitutions):

* :class:`~repro.sat.solver.Solver` — incremental arena CDCL solver
  (default backend); :class:`~repro.sat.legacy.LegacySolver` — the
  object-graph original, kept as differential oracle; both behind the
  :data:`~repro.sat.backends.SAT_BACKENDS` registry
  (:func:`~repro.sat.backends.create_solver`).
* :class:`~repro.sat.cnf.CNF` — formula container with named variables.
* :mod:`~repro.sat.tseitin` — circuit → CNF encodings, incl. correction
  multiplexers.
* :mod:`~repro.sat.cardinality` — at-most-k encodings (pairwise,
  sequential counter, incremental totalizer with extendable bound).
* :func:`~repro.sat.enumerate.enumerate_solutions` — all-solutions
  enumeration with superset/exact blocking clauses and per-solution
  solver-stats deltas.
* :mod:`~repro.sat.dimacs` — DIMACS I/O.

Incremental instance lifetime
-----------------------------

The diagnosis layer keeps **one** persistent solver per encoded instance
and drives every query through assumptions on it, instead of rebuilding
CNF per call.  The lifetime of such an instance::

    build (once per session)            queries (any number, any order)
    ==========================          ===============================
    CNF encode circuit copies   ----->  solve([-out[k], act_i])   k-probe
    + correction muxes                  enumerate(...; block+act_i)
    + IncrementalTotalizer(k0)  ----->  extend_bound(k1)          k grows
            |                           solve([-out[k1], act_i])
            v                           add_clause(block ∨ ¬act_i)
    one persistent Solver       ----->  add_clause([-act_i])      scope end
    (learnt clauses, phases,            ... next query: fresh act_{i+1}
     trail live across queries)

Blocking clauses are guarded by a per-query *activation literal*
``act_i`` (assumed true during the query, released afterwards), so the
same instance serves repeated enumerations without resetting learnt
state, and the totalizer extends its bound in place instead of being
re-encoded.

Sessions build **one master encoding** (muxes on every candidate gate)
and derive every suspect pool from it as an assumption-pinned *view*::

    master (once per session/backend)    pool views (any number)
    =================================    ==============================
    CNF: mux on ALL gates,       ----->  derive_view(pool_A):
    c_g^i folded into eff,                 pins = [¬s_g | g ∉ pool_A]
    per-test fan-in cones                  solve([pins…, ¬out_k, act])
    + IncrementalTotalizer       ----->  derive_view(pool_B):
            |                              pins' = [¬s_g | g ∉ pool_B]
            v                              …same solver, same learnts
    one persistent Solver        ----->  longest-common-prefix trail
    (pins first in every                 reuse keeps the shared pins'
     assumption list)                    implied trail alive

A view costs a tuple of pin literals — no per-pool CNF rebuild — and
its solution sets equal a freshly built pool instance by construction
(``benchmarks/bench_solver.py`` races 50-pool churn, ≥5× on sim1423).
See :meth:`repro.diagnosis.core.DiagnosisSession.instance` and
:func:`repro.diagnosis.satdiag.build_master_instance`.
"""

from .solver import Solver, SolveResult
from .legacy import LegacySolver
from .backends import (
    SAT_BACKENDS,
    DEFAULT_BACKEND,
    available_backends,
    backend_summary,
    create_solver,
    external_backend_available,
    register_backend,
)
from .cnf import CNF
from .tseitin import encode_circuit, encode_gate, encode_mux, encode_equivalence
from .cardinality import (
    IncrementalTotalizer,
    at_most_k_pairwise,
    at_most_k_sequential,
    totalizer,
    at_least_one,
)
from .enumerate import enumerate_solutions
from .dimacs import (
    GroupedCNF,
    dump_dimacs,
    dump_gcnf,
    load_dimacs,
    load_gcnf,
    parse_dimacs,
    parse_gcnf,
    write_dimacs,
    write_gcnf,
)
from .proof import ProofLog, ProofStep, check_rup, check_drat, solve_with_proof

__all__ = [
    "Solver",
    "SolveResult",
    "LegacySolver",
    "SAT_BACKENDS",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_summary",
    "create_solver",
    "external_backend_available",
    "register_backend",
    "CNF",
    "encode_circuit",
    "encode_gate",
    "encode_mux",
    "encode_equivalence",
    "IncrementalTotalizer",
    "at_most_k_pairwise",
    "at_most_k_sequential",
    "totalizer",
    "at_least_one",
    "enumerate_solutions",
    "ProofLog",
    "ProofStep",
    "check_rup",
    "check_drat",
    "solve_with_proof",
    "parse_dimacs",
    "load_dimacs",
    "write_dimacs",
    "dump_dimacs",
    "GroupedCNF",
    "parse_gcnf",
    "load_gcnf",
    "write_gcnf",
    "dump_gcnf",
]
