"""Compiled CDCL backend: the arena hot loop as numba-jitted kernels.

:class:`repro.sat.solver.Solver` drove the interpreted CDCL loop to its
floor (flat int arena, implicit binary watches, trail reuse); the next
order of magnitude is leaving the interpreter.  This module ports the
``_search``/BCP/analyze hot loop to *kernel* functions over flat numpy
``int32``/``int8``/``float64`` arrays — watch lists as linked lists in
parallel arrays, the trail and reasons as flat vectors, VSIDS as an
indexed binary max-heap — written in the numba-compatible subset of
Python.  When numba is importable the kernels are ``@njit``-compiled
(``cache=True``, so the compilation cost is paid once per machine);
when it is not, the *same* functions run interpreted, which keeps the
backend differential-testable on minimal installs even though it is
only registered (as ``arena-jit``) when numba is present.

Design points, relative to the interpreted arena solver:

* **One-shot kernel per solve.**  Each :meth:`CompiledSolver.solve`
  hands the whole clause database (persistent, amortized numpy
  buffers) to one kernel call that runs the complete search.  There is
  no cross-call trail reuse — rebuilding watches is a linear scan that
  the compiled loop amortizes in microseconds, and it keeps the kernel
  free of persistent heap-allocated state numba cannot hold.
* **Same answer surface.**  ``solve(assumptions=, conflict_limit=)``
  returns True/False/None with model / failed-assumption core exactly
  like the native solvers; assumption handling mirrors the arena
  solver's ``_analyze_final`` trail walk, so cores are comparable.
* **No learnt-clause deletion.**  The kernel keeps every learnt clause
  (``stats["deleted"]`` stays 0): the diagnosis workloads are many
  short queries, where deletion bookkeeping costs more than the
  clauses it trims.  Restarts follow the same ``100 * luby`` schedule
  as the arena solver.
* **Per-process warm-up.**  :func:`warm_up` runs two tiny solves (SAT
  and assumption-UNSAT) through every kernel path so JIT compilation
  never lands inside a measured query; the backend factory calls it on
  first instantiation.

``python -m repro backends`` reports the backend as unavailable (with
the numba import error) instead of raising, and
``resolve_backend("arena-jit")`` degrades to ``arena`` so portfolio
configurations stay runnable everywhere (see
:mod:`repro.sat.backends`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_IMPORT_ERROR",
    "CompiledSolver",
    "warm_up",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
    NUMBA_IMPORT_ERROR: str | None = None
except ImportError as exc:  # minimal installs: interpreted kernels
    numba = None
    NUMBA_AVAILABLE = False
    NUMBA_IMPORT_ERROR = str(exc)


def _jit(fn):
    """``numba.njit`` when available, identity otherwise.

    The kernels below are written in the numba-compatible subset, so
    the exact same code runs interpreted on minimal installs (slow but
    bit-identical — the differential tests rely on this).
    """
    if numba is not None:  # pragma: no cover - numba-only path
        return numba.njit(cache=True)(fn)
    return fn


# ----------------------------------------------------------------------
# VSIDS indexed max-heap (flat arrays; module-level so numba can inline)
# ----------------------------------------------------------------------
@_jit
def _heap_up(heap, pos, act, i):
    v = heap[i]
    a = act[v]
    while i > 0:
        p = (i - 1) >> 1
        pv = heap[p]
        if act[pv] >= a:
            break
        heap[i] = pv
        pos[pv] = i
        i = p
    heap[i] = v
    pos[v] = i


@_jit
def _heap_down(heap, pos, act, size, i):
    v = heap[i]
    a = act[v]
    while True:
        left = 2 * i + 1
        if left >= size:
            break
        best = left
        right = left + 1
        if right < size and act[heap[right]] > act[heap[left]]:
            best = right
        bv = heap[best]
        if a >= act[bv]:
            break
        heap[i] = bv
        pos[bv] = i
        i = best
    heap[i] = v
    pos[v] = i


@_jit
def _heap_insert(heap, pos, act, size, v):
    if pos[v] >= 0:
        return size
    heap[size] = v
    pos[v] = size
    _heap_up(heap, pos, act, size)
    return size + 1


@_jit
def _heap_pop(heap, pos, act, size):
    v = heap[0]
    pos[v] = -1
    size -= 1
    if size > 0:
        last = heap[size]
        heap[0] = last
        pos[last] = 0
        _heap_down(heap, pos, act, size, 0)
    return v, size


@_jit
def _luby(i):
    """Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 ..."""
    while True:
        k = 0
        j = i
        while j:
            k += 1
            j >>= 1
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


@_jit
def _grow_i32(buf, need):
    if need <= buf.shape[0]:
        return buf
    cap = buf.shape[0]
    while cap < need:
        cap *= 2
    new = np.empty(cap, np.int32)
    new[: buf.shape[0]] = buf
    return new


# ----------------------------------------------------------------------
# the solve kernel
# ----------------------------------------------------------------------
_SAT = 1
_UNSAT = 0
_UNKNOWN = 2


@_jit
def _solve_kernel(
    n_vars,
    lits0,
    starts0,
    sizes0,
    n_clauses,
    assumps,
    conflict_limit,
    budget_conflicts,
    activity,
    polarity,
    model_out,
    stats_out,
):
    """Run one CDCL search; returns ``(status, core, llits, lsizes, units)``.

    Internal literal encoding ``il = (var << 1) | sign`` (sign 1 =
    negative); clause ``c`` occupies ``lits[starts[c] : starts[c] +
    sizes[c]]`` with the two watched literals at positions 0 and 1 and
    — for reason clauses — the implied literal at position 0 (the
    arena solver's invariant, which the core/analyze walks rely on).
    ``activity``/``polarity`` are views of the wrapper's persistent
    arrays, so VSIDS seeds and saved phases survive across calls.

    ``budget_conflicts >= 0`` turns the call into one *chunk* of a
    budgeted search: the kernel returns ``_UNKNOWN`` after exactly that
    many conflicts (checked per conflict, unlike ``conflict_limit``'s
    restart-boundary check), handing back the clauses it learnt
    (``llits`` flat, ``lsizes`` per clause) and its root-level implied
    literals (``units``) so the wrapper can poll Python-side stop
    conditions and re-enter without losing search progress — learnt
    clauses are implied, so re-feeding them as problem clauses is
    sound.  The extra arrays are empty on every other return path.
    """
    empty = np.empty(0, np.int32)
    core = empty
    n_clauses_in = n_clauses
    # --- growable clause store (learnts append at the end) -----------
    cap_l = max(2 * lits0.shape[0], 64)
    lits = np.empty(cap_l, np.int32)
    lits[: lits0.shape[0]] = lits0
    n_lits = lits0.shape[0]
    cap_c = max(2 * n_clauses, 64)
    starts = np.empty(cap_c, np.int32)
    starts[:n_clauses] = starts0[:n_clauses]
    sizes = np.empty(cap_c, np.int32)
    sizes[:n_clauses] = sizes0[:n_clauses]

    # --- assignment state --------------------------------------------
    assigns = np.full(n_vars + 1, 2, np.int8)  # 0 false / 1 true / 2 unset
    level = np.zeros(n_vars + 1, np.int32)
    reason = np.full(n_vars + 1, -1, np.int32)
    seen = np.zeros(n_vars + 1, np.int8)
    trail = np.empty(n_vars + 1, np.int32)
    trail_len = 0
    trail_lim = np.empty(n_vars + 2, np.int32)
    n_levels = 0
    qhead = 0

    # --- watch lists: two linked-list nodes per clause (ids 2c, 2c+1)
    head = np.full(2 * n_vars + 2, -1, np.int32)
    w_next = np.empty(2 * cap_c, np.int32)
    w_blocker = np.empty(2 * cap_c, np.int32)

    # --- VSIDS heap ---------------------------------------------------
    heap = np.empty(n_vars + 1, np.int32)
    heap_pos = np.full(n_vars + 1, -1, np.int32)
    heap_size = 0
    for v in range(1, n_vars + 1):
        heap_size = _heap_insert(heap, heap_pos, activity, heap_size, v)
    var_inc = 1.0

    # --- scratch for conflict analysis --------------------------------
    lbuf = np.empty(n_vars + 2, np.int32)  # learnt under construction
    lvars = np.empty(n_vars + 2, np.int32)  # vars to clear from `seen`

    # attach watches + collect root units
    for c in range(n_clauses):
        s = starts[c]
        sz = sizes[c]
        if sz >= 2:
            a = lits[s]
            b = lits[s + 1]
            w_next[2 * c] = head[a]
            head[a] = 2 * c
            w_blocker[2 * c] = b
            w_next[2 * c + 1] = head[b]
            head[b] = 2 * c + 1
            w_blocker[2 * c + 1] = a
    for c in range(n_clauses):
        if sizes[c] != 1:
            continue
        il = lits[starts[c]]
        v = il >> 1
        val = assigns[v] ^ (il & 1)
        if val == 0:  # contradicting root units: formula UNSAT
            return _UNSAT, core, empty, empty, empty
        if val != 1:
            assigns[v] = (il & 1) ^ 1
            level[v] = 0
            reason[v] = c
            trail[trail_len] = il
            trail_len += 1

    n_assumps = assumps.shape[0]
    restart_idx = 0
    conflicts_since_restart = 0
    restart_limit = 100
    total_conflicts = 0

    while True:
        # ---------------- propagation --------------------------------
        conflict = -1
        while qhead < trail_len:
            p = trail[qhead]
            qhead += 1
            stats_out[2] += 1  # propagations
            fl = p ^ 1
            prev = -1
            w = head[fl]
            while w != -1:
                nxt = w_next[w]
                blk = w_blocker[w]
                if (assigns[blk >> 1] ^ (blk & 1)) == 1:
                    prev = w
                    w = nxt
                    continue
                c = w >> 1
                s = starts[c]
                if lits[s] == fl:
                    lits[s] = lits[s + 1]
                    lits[s + 1] = fl
                first = lits[s]
                if (
                    first != blk
                    and (assigns[first >> 1] ^ (first & 1)) == 1
                ):
                    w_blocker[w] = first
                    prev = w
                    w = nxt
                    continue
                sz = sizes[c]
                found = -1
                for k in range(s + 2, s + sz):
                    q = lits[k]
                    if (assigns[q >> 1] ^ (q & 1)) != 0:  # not false
                        found = k
                        break
                if found >= 0:
                    nl = lits[found]
                    lits[found] = fl
                    lits[s + 1] = nl
                    if prev == -1:
                        head[fl] = nxt
                    else:
                        w_next[prev] = nxt
                    w_next[w] = head[nl]
                    head[nl] = w
                    w_blocker[w] = first
                    w = nxt
                    continue
                w_blocker[w] = first
                if (assigns[first >> 1] ^ (first & 1)) == 0:  # conflict
                    conflict = c
                    qhead = trail_len
                    break
                # unit: imply `first` with reason c
                fv = first >> 1
                assigns[fv] = (first & 1) ^ 1
                level[fv] = n_levels
                reason[fv] = c
                trail[trail_len] = first
                trail_len += 1
                prev = w
                w = nxt
            if conflict >= 0:
                break

        if conflict >= 0:
            # ---------------- conflict analysis ----------------------
            total_conflicts += 1
            conflicts_since_restart += 1
            stats_out[0] += 1
            if n_levels == 0:
                return _UNSAT, core, empty, empty, empty
            # first-UIP resolution
            n_learnt = 1  # slot 0 reserved for the asserting literal
            n_seen = 0
            count = 0
            p = -1
            idx = trail_len - 1
            c = conflict
            while True:
                s = starts[c]
                sz = sizes[c]
                k0 = s if p == -1 else s + 1
                for k in range(k0, s + sz):
                    q = lits[k]
                    qv = q >> 1
                    if seen[qv] == 0 and level[qv] > 0:
                        seen[qv] = 1
                        lvars[n_seen] = qv
                        n_seen += 1
                        activity[qv] += var_inc
                        if activity[qv] > 1e100:
                            for vv in range(1, n_vars + 1):
                                activity[vv] *= 1e-100
                            var_inc *= 1e-100
                        if heap_pos[qv] >= 0:
                            _heap_up(heap, heap_pos, activity, heap_pos[qv])
                        if level[qv] >= n_levels:
                            count += 1
                        else:
                            lbuf[n_learnt] = q
                            n_learnt += 1
                while seen[trail[idx] >> 1] == 0:
                    idx -= 1
                p = trail[idx]
                c = reason[p >> 1]
                seen[p >> 1] = 0
                count -= 1
                idx -= 1
                if count == 0:
                    break
            lbuf[0] = p ^ 1
            # local minimization: drop literals covered by their reason
            j = 1
            for i in range(1, n_learnt):
                l = lbuf[i]
                r = reason[l >> 1]
                redundant = r >= 0
                if redundant:
                    rs = starts[r]
                    for k in range(rs + 1, rs + sizes[r]):
                        qv = lits[k] >> 1
                        if level[qv] > 0 and seen[qv] == 0:
                            redundant = False
                            break
                if not redundant:
                    lbuf[j] = l
                    j += 1
            n_learnt = j
            for i in range(n_seen):
                seen[lvars[i]] = 0
            # backjump level = second-highest decision level
            if n_learnt == 1:
                bj = 0
            else:
                mi = 1
                for i in range(2, n_learnt):
                    if level[lbuf[i] >> 1] > level[lbuf[mi] >> 1]:
                        mi = i
                tmp = lbuf[1]
                lbuf[1] = lbuf[mi]
                lbuf[mi] = tmp
                bj = level[lbuf[1] >> 1]
            # backtrack
            lim = trail_lim[bj]
            for i in range(trail_len - 1, lim - 1, -1):
                il = trail[i]
                v = il >> 1
                polarity[v] = il & 1
                assigns[v] = 2
                heap_size = _heap_insert(
                    heap, heap_pos, activity, heap_size, v
                )
            trail_len = lim
            qhead = lim
            n_levels = bj
            # record the learnt clause + assert its first literal
            stats_out[4] += 1
            al = lbuf[0]
            av = al >> 1
            if n_learnt == 1:
                assigns[av] = (al & 1) ^ 1
                level[av] = 0
                reason[av] = -1
                trail[trail_len] = al
                trail_len += 1
            else:
                lits = _grow_i32(lits, n_lits + n_learnt)
                if n_clauses + 1 > cap_c:
                    cap_c *= 2
                    ns = np.empty(cap_c, np.int32)
                    ns[:n_clauses] = starts[:n_clauses]
                    starts = ns
                    nz = np.empty(cap_c, np.int32)
                    nz[:n_clauses] = sizes[:n_clauses]
                    sizes = nz
                    nw = np.empty(2 * cap_c, np.int32)
                    nw[: 2 * n_clauses] = w_next[: 2 * n_clauses]
                    w_next = nw
                    nb = np.empty(2 * cap_c, np.int32)
                    nb[: 2 * n_clauses] = w_blocker[: 2 * n_clauses]
                    w_blocker = nb
                c_new = n_clauses
                n_clauses += 1
                starts[c_new] = n_lits
                sizes[c_new] = n_learnt
                for i in range(n_learnt):
                    lits[n_lits + i] = lbuf[i]
                n_lits += n_learnt
                a = lits[starts[c_new]]
                b = lits[starts[c_new] + 1]
                w_next[2 * c_new] = head[a]
                head[a] = 2 * c_new
                w_blocker[2 * c_new] = b
                w_next[2 * c_new + 1] = head[b]
                head[b] = 2 * c_new + 1
                w_blocker[2 * c_new + 1] = a
                assigns[av] = (al & 1) ^ 1
                level[av] = n_levels
                reason[av] = c_new
                trail[trail_len] = al
                trail_len += 1
            var_inc /= 0.95
            # restart / budget checks.  The chunk budget is per-conflict
            # (bounded-overrun re-entry point); conflict_limit keeps its
            # historical restart-boundary granularity.
            chunk_done = (
                budget_conflicts >= 0
                and total_conflicts >= budget_conflicts
            )
            if chunk_done or conflicts_since_restart >= restart_limit:
                if not chunk_done:
                    stats_out[3] += 1
                lim0 = trail_lim[0] if n_levels > 0 else trail_len
                if n_levels > 0:
                    for i in range(trail_len - 1, lim0 - 1, -1):
                        il = trail[i]
                        v = il >> 1
                        polarity[v] = il & 1
                        assigns[v] = 2
                        heap_size = _heap_insert(
                            heap, heap_pos, activity, heap_size, v
                        )
                    trail_len = lim0
                    qhead = lim0
                    n_levels = 0
                if chunk_done:
                    # Package search progress for kernel re-entry: the
                    # learnt clauses appended past the input DB and the
                    # root-level implied literals (as future units).
                    n_new = n_clauses - n_clauses_in
                    lsizes = np.empty(n_new, np.int32)
                    total = 0
                    for i in range(n_new):
                        lsizes[i] = sizes[n_clauses_in + i]
                        total += lsizes[i]
                    llits = np.empty(total, np.int32)
                    pos = 0
                    for i in range(n_new):
                        s = starts[n_clauses_in + i]
                        for k in range(s, s + lsizes[i]):
                            llits[pos] = lits[k]
                            pos += 1
                    units = trail[:trail_len].copy()
                    return _UNKNOWN, core, llits, lsizes, units
                if conflict_limit >= 0 and total_conflicts >= conflict_limit:
                    return _UNKNOWN, core, empty, empty, empty
                restart_idx += 1
                conflicts_since_restart = 0
                restart_limit = 100 * _luby(restart_idx + 1)
            continue

        # ---------------- decide (assumptions first) -----------------
        if n_levels < n_assumps:
            p = assumps[n_levels]
            val = assigns[p >> 1] ^ (p & 1)
            if val == 1:  # already satisfied: empty positional level
                trail_lim[n_levels] = trail_len
                n_levels += 1
                continue
            if val == 0:  # failed assumption -> core via trail walk
                ncore = 1
                cbuf = np.empty(n_assumps + 1, np.int32)
                cbuf[0] = -(p >> 1) if p & 1 else (p >> 1)
                if level[p >> 1] > 0:
                    seen[p >> 1] = 1
                    pending = 1
                    for i in range(trail_len - 1, -1, -1):
                        il = trail[i]
                        v = il >> 1
                        if seen[v] == 0:
                            continue
                        seen[v] = 0
                        pending -= 1
                        r = reason[v]
                        if r < 0:
                            if level[v] > 0:
                                cbuf[ncore] = (
                                    -(il >> 1) if il & 1 else (il >> 1)
                                )
                                ncore += 1
                        else:
                            rs = starts[r]
                            for k in range(rs + 1, rs + sizes[r]):
                                q = lits[k]
                                qv = q >> 1
                                if level[qv] > 0 and seen[qv] == 0:
                                    seen[qv] = 1
                                    pending += 1
                        if pending == 0:
                            break
                return _UNSAT, cbuf[:ncore].copy(), empty, empty, empty
            trail_lim[n_levels] = trail_len
            n_levels += 1
            pv = p >> 1
            assigns[pv] = (p & 1) ^ 1
            level[pv] = n_levels
            reason[pv] = -1
            trail[trail_len] = p
            trail_len += 1
            continue

        # ---------------- decide (VSIDS) -----------------------------
        dv = 0
        while heap_size > 0:
            cand, heap_size = _heap_pop(heap, heap_pos, activity, heap_size)
            if assigns[cand] == 2:
                dv = cand
                break
        if dv == 0:
            for v in range(1, n_vars + 1):
                model_out[v] = assigns[v]
            return _SAT, core, empty, empty, empty
        stats_out[1] += 1  # decisions
        trail_lim[n_levels] = trail_len
        n_levels += 1
        il = (dv << 1) | polarity[dv]
        assigns[dv] = (il & 1) ^ 1
        level[dv] = n_levels
        reason[dv] = -1
        trail[trail_len] = il
        trail_len += 1


# ----------------------------------------------------------------------
# the Solver-surface wrapper
# ----------------------------------------------------------------------
class CompiledSolver:
    """The repo's ``Solver`` surface over the compiled CDCL kernel.

    Clauses accumulate in persistent capacity-doubling numpy buffers;
    each :meth:`solve` is one kernel call over the whole database.
    VSIDS seeds (:meth:`bump_activity`) and phase presets
    (:meth:`set_phase`) persist across calls like the native solvers'.
    ``add_clause`` returns False only once the formula is trivially
    UNSAT (empty clause); root-level unit contradictions surface at the
    next :meth:`solve` (compare *solve outcomes* across backends, not
    ``add_clause`` flags).
    """

    def __init__(self) -> None:
        self._num_vars = 0
        self._ok = True
        self._lit_buf = np.empty(1024, np.int32)
        self._n_lits = 0
        self._starts = np.empty(256, np.int32)
        self._sizes = np.empty(256, np.int32)
        self._n_clauses = 0
        self._activity = np.zeros(64, np.float64)
        self._polarity = np.ones(64, np.int8)
        self._has_model = False
        self._model_buf: np.ndarray | None = None
        self._core: list[int] = []
        #: True iff the last solve() returned None because its Budget
        #: tripped (mirrors the arena solver's flag).
        self.interrupted = False
        self.stats: dict[str, int] = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "deleted": 0,
        }

    # -- variables -----------------------------------------------------
    def new_var(self) -> int:
        self._num_vars += 1
        self._grow_vars(self._num_vars)
        return self._num_vars

    def ensure_vars(self, n: int) -> None:
        if n > self._num_vars:
            self._num_vars = n
            self._grow_vars(n)

    def _grow_vars(self, n: int) -> None:
        if n + 1 > self._activity.shape[0]:
            cap = self._activity.shape[0]
            while cap < n + 1:
                cap *= 2
            act = np.zeros(cap, np.float64)
            act[: self._activity.shape[0]] = self._activity
            self._activity = act
            pol = np.ones(cap, np.int8)
            pol[: self._polarity.shape[0]] = self._polarity
            self._polarity = pol

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return self._n_clauses

    # -- clauses -------------------------------------------------------
    def _push_clause(self, clause: Sequence[int]) -> None:
        n = len(clause)
        need = self._n_lits + n
        if need > self._lit_buf.shape[0]:
            cap = self._lit_buf.shape[0]
            while cap < need:
                cap *= 2
            buf = np.empty(cap, np.int32)
            buf[: self._n_lits] = self._lit_buf[: self._n_lits]
            self._lit_buf = buf
        if self._n_clauses + 1 > self._starts.shape[0]:
            cap = 2 * self._starts.shape[0]
            st = np.empty(cap, np.int32)
            st[: self._n_clauses] = self._starts[: self._n_clauses]
            self._starts = st
            sz = np.empty(cap, np.int32)
            sz[: self._n_clauses] = self._sizes[: self._n_clauses]
            self._sizes = sz
        base = self._n_lits
        for i, lit in enumerate(clause):
            v = abs(lit)
            self._lit_buf[base + i] = (v << 1) | (lit < 0)
        self._starts[self._n_clauses] = base
        self._sizes[self._n_clauses] = n
        self._n_clauses += 1
        self._n_lits = base + n

    def add_clause(self, lits: Iterable[int]) -> bool:
        clause: list[int] = []
        seen: set[int] = set()
        for raw in lits:
            lit = int(raw)
            if -lit in seen:
                return self._ok  # tautology: drop silently
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
                self.ensure_vars(abs(lit))
        if not clause:
            self._ok = False
            return False
        self._push_clause(clause)
        return self._ok

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def load_clauses(self, clauses: Iterable[Sequence[int]]) -> bool:
        """Bulk-load without normalization (the ``CNF.to_solver`` fast
        path); the watch scheme tolerates duplicate literals and
        tautologies, exactly like the arena solver's bulk loader."""
        for clause in clauses:
            if not clause:
                self._ok = False
                continue
            for lit in clause:
                self.ensure_vars(abs(lit))
            self._push_clause(clause)
        return self._ok

    # -- heuristic hooks ----------------------------------------------
    def bump_activity(self, var: int, amount: float = 1.0) -> None:
        self.ensure_vars(var)
        self._activity[var] += amount

    def set_phase(self, var: int, value: bool) -> None:
        self.ensure_vars(var)
        self._polarity[var] = 0 if value else 1

    # -- solving -------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        budget=None,
    ) -> bool | None:
        """One-shot kernel call — or, with ``budget``, *chunked kernel
        re-entry*: the jitted loop runs at most
        ``budget.conflict_poll_interval`` conflicts per call, returns
        its learnt clauses and root-level units to Python, the budget
        is polled, and the kernel re-enters with the carried-over
        clauses (sound: learnt clauses are implied).  Cancellation
        overrun is therefore bounded by the poll interval even though
        the compiled loop itself never calls back into Python.
        """
        self._has_model = False
        self._core = []
        self.interrupted = False
        if not self._ok:
            return False
        if budget is not None and budget.poll():
            self.interrupted = True
            return None
        for a in assumptions:
            self.ensure_vars(abs(a))
        assumps = np.array(
            [(abs(a) << 1) | (a < 0) for a in assumptions], np.int32
        )
        n = self._num_vars
        model_out = np.full(n + 1, 2, np.int8)
        # Chunk-local clause store: starts as views of the persistent
        # buffers; learnt carry-over grows copies local to this solve so
        # the persistent DB stays exactly the problem clauses.
        lits = self._lit_buf[: self._n_lits]
        starts = self._starts
        sizes = self._sizes
        n_clauses = self._n_clauses
        n_lits = self._n_lits
        seen_units: set[int] = set()
        total_conflicts = 0
        while True:
            if budget is None:
                chunk = -1
            else:
                chunk = budget.conflict_poll_interval
                remaining = budget.conflicts_remaining()
                if remaining is not None:
                    chunk = min(chunk, max(1, remaining))
            limit = -1 if conflict_limit is None else conflict_limit
            if budget is not None:
                # the wrapper enforces conflict_limit cumulatively
                limit = -1
            stats_out = np.zeros(6, np.int64)
            status, core, llits, lsizes, units = _solve_kernel(
                n,
                lits[:n_lits],
                starts,
                sizes,
                n_clauses,
                assumps,
                limit,
                chunk,
                self._activity[: n + 1],
                self._polarity[: n + 1],
                model_out,
                stats_out,
            )
            for i, key in enumerate(
                (
                    "conflicts",
                    "decisions",
                    "propagations",
                    "restarts",
                    "learned",
                )
            ):
                self.stats[key] += int(stats_out[i])
            total_conflicts += int(stats_out[0])
            tripped = budget is not None and budget.charge(
                int(stats_out[0]), int(stats_out[2])
            )
            if status == _SAT:
                self._has_model = True
                self._model_buf = model_out
                return True
            if status == _UNSAT:
                self._core = [int(x) for x in core]
                return False
            if budget is None:
                return None  # conflict_limit hit inside the kernel
            if tripped:
                self.interrupted = True
                return None
            if (
                conflict_limit is not None
                and total_conflicts >= conflict_limit
            ):
                return None
            # fold the chunk's progress into the local DB and re-enter
            new_units = [u for u in units.tolist() if u not in seen_units]
            seen_units.update(new_units)
            n_new = lsizes.shape[0] + len(new_units)
            if n_new:
                grown = np.concatenate(
                    [
                        lits[:n_lits],
                        llits,
                        np.array(new_units, np.int32),
                    ]
                )
                new_starts = np.empty(n_clauses + n_new, np.int32)
                new_sizes = np.empty(n_clauses + n_new, np.int32)
                new_starts[:n_clauses] = starts[:n_clauses]
                new_sizes[:n_clauses] = sizes[:n_clauses]
                pos = n_lits
                idx = n_clauses
                for i in range(lsizes.shape[0]):
                    new_starts[idx] = pos
                    new_sizes[idx] = int(lsizes[i])
                    pos += int(lsizes[i])
                    idx += 1
                for _ in new_units:
                    new_starts[idx] = pos
                    new_sizes[idx] = 1
                    pos += 1
                    idx += 1
                lits = grown
                starts = new_starts
                sizes = new_sizes
                n_lits = pos
                n_clauses = idx

    def value(self, var: int) -> bool | None:
        if not self._has_model:
            raise RuntimeError("no model: last solve() did not return True")
        v = self._model_buf[var]
        return None if v >= 2 else bool(v)

    def model(self) -> list[int]:
        if not self._has_model:
            raise RuntimeError("no model: last solve() did not return True")
        buf = self._model_buf
        return [
            (v if buf[v] == 1 else -v)
            for v in range(1, self._num_vars + 1)
            if buf[v] < 2
        ]

    def core(self) -> list[int]:
        return list(self._core)

    def start_proof(self):
        raise NotImplementedError(
            "DRAT logging is only available on the native backends"
        )


_WARMED = False


def warm_up() -> None:
    """Compile (or pre-touch) every kernel path once per process.

    Runs a tiny SAT query, an assumption-UNSAT query and a
    conflict-limited query so numba's JIT compilation — tens of seconds
    on first use, milliseconds from cache — never lands inside a
    measured solve.  Idempotent and cheap when already warm.
    """
    global _WARMED
    if _WARMED:
        return
    from .budget import Budget

    s = CompiledSolver()
    s.add_clauses([[1, 2], [-1, 2], [1, -2], [2, 3]])
    assert s.solve() is True
    assert s.solve(assumptions=[-2]) is False and s.core() == [-2]
    s.solve(assumptions=[1, 3], conflict_limit=0)
    # chunked re-entry path (budgeted solve): learn-and-carry return
    s2 = CompiledSolver()
    s2.add_clauses(
        [[1, 2], [-1, 2], [1, -2], [-2, 3], [-2, -3], [2, 3], [3, 1]]
    )
    s2.solve(budget=Budget(conflict_poll_interval=1))
    _WARMED = True
