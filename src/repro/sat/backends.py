"""Pluggable SAT solver backends behind one ``solve/model/core`` surface.

The diagnosis layer never hard-codes a solver class: every instance
construction goes through :func:`create_solver` and the
:data:`SAT_BACKENDS` registry (the SAT twin of the simulation layer's
``_SIM_ENGINES`` and the diagnosis layer's ``DIAGNOSIS_STRATEGIES``).
Three backends ship:

``arena`` (default)
    :class:`repro.sat.solver.Solver` — the flat-arena CDCL solver with
    blocker watch lists, inlined propagation and enumeration trail
    reuse.  Fastest; used everywhere unless overridden.
``legacy``
    :class:`repro.sat.legacy.LegacySolver` — the original object-graph
    solver, kept as the differential oracle
    (``tests/sat/test_backends.py`` races the two on random CNFs).
``pysat``
    A thin adapter over `python-sat <https://pysathq.github.io/>`_'s
    Glucose3, registered **only when the package is importable** (the
    repo does not depend on it).  Useful as an external cross-check and
    as the template for remote/compiled engines (ROADMAP item).
``arena-jit``
    :class:`repro.sat.compiled.CompiledSolver` — the arena hot loop as
    numba-jitted kernels over flat numpy arrays.  Registered only when
    numba is importable; elsewhere it appears in
    :func:`unavailable_backends` with the import error, and
    :func:`resolve_backend` **degrades it to ``arena``** instead of
    raising, so portfolio configurations naming the compiled backend
    stay runnable on minimal installs.

Every backend object offers the :class:`~repro.sat.solver.Solver`
surface the repo relies on: ``new_var/ensure_vars/add_clause/solve
(assumptions=, conflict_limit=)/value/model/core/stats`` plus the
heuristic hooks ``bump_activity``/``set_phase`` (which may be no-ops).

Select a backend per call site (``CNF.to_solver(backend="legacy")``),
per diagnosis session (``DiagnosisSession(..., solver_backend=...)``),
per strategy invocation (every registered strategy accepts
``solver_backend=``) or on the CLI (``python -m repro diagnose
--solver-backend legacy ...``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .legacy import LegacySolver
from .solver import Solver

__all__ = [
    "SAT_BACKENDS",
    "BACKEND_FALLBACKS",
    "DEFAULT_BACKEND",
    "register_backend",
    "available_backends",
    "unavailable_backends",
    "create_solver",
    "backend_summary",
    "resolve_backend",
    "external_backend_available",
    "compiled_backend_available",
]

#: Name -> (solver factory, one-line summary).
SAT_BACKENDS: dict[str, tuple[Callable[[], object], str]] = {}

#: Optional backends that failed to register -> the reason (the import
#: error string), so ``python -m repro backends`` can say *why* instead
#: of silently omitting them.
UNAVAILABLE_BACKENDS: dict[str, str] = {}

#: The backend used when callers pass ``backend=None``.
DEFAULT_BACKEND = "arena"

#: Optional backend -> the interpreted backend it degrades to when its
#: dependency is missing.  Selection through :func:`resolve_backend`
#: (every session/strategy/CLI path) falls back instead of raising, so
#: e.g. ``--solver-backend arena-jit`` works — slower — without numba.
BACKEND_FALLBACKS: dict[str, str] = {"arena-jit": "arena"}


def register_backend(
    name: str, summary: str
) -> Callable[[Callable[[], object]], Callable[[], object]]:
    """Register a solver factory under ``name`` (decorator)."""

    def deco(factory: Callable[[], object]) -> Callable[[], object]:
        if name in SAT_BACKENDS:
            raise ValueError(f"backend {name!r} registered twice")
        SAT_BACKENDS[name] = (factory, summary)
        return factory

    return deco


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted, default first."""
    names = sorted(SAT_BACKENDS)
    names.remove(DEFAULT_BACKEND)
    return (DEFAULT_BACKEND, *names)


def unavailable_backends() -> dict[str, str]:
    """Optional backends that could not register -> why (import error)."""
    return dict(UNAVAILABLE_BACKENDS)


def backend_summary(name: str) -> str:
    """The registry's one-line summary for ``name``."""
    return SAT_BACKENDS[_resolve(name)][1]


def resolve_backend(name: str | None) -> str:
    """Canonical registered name for ``name`` (None = the default).

    Cache keys should use this so ``None`` and the default backend's
    explicit name share one entry.  An *optional* backend whose
    dependency is missing resolves to its :data:`BACKEND_FALLBACKS`
    entry (graceful degradation); truly unknown names raise.
    """
    resolved = DEFAULT_BACKEND if name is None else name
    if resolved not in SAT_BACKENDS:
        fallback = BACKEND_FALLBACKS.get(resolved)
        if fallback is not None and fallback in SAT_BACKENDS:
            return fallback
        raise ValueError(
            f"unknown solver backend {resolved!r}; choose from "
            f"{available_backends()}"
        )
    return resolved


_resolve = resolve_backend


def create_solver(backend: str | None = None):
    """Instantiate a solver from the registry (None = default backend)."""
    factory, _ = SAT_BACKENDS[_resolve(backend)]
    return factory()


@register_backend(
    "arena",
    "flat-arena CDCL: binary implicit watches, assumption-prefix trail "
    "reuse, chronological insertion (default)",
)
def _arena_backend() -> Solver:
    return Solver()


@register_backend(
    "legacy", "pre-arena object-graph CDCL, kept as differential oracle"
)
def _legacy_backend() -> LegacySolver:
    return LegacySolver()


# ----------------------------------------------------------------------
# optional external backend (python-sat), registered only if importable
# ----------------------------------------------------------------------
def external_backend_available() -> bool:
    """True when the optional python-sat backend is registered."""
    return "pysat" in SAT_BACKENDS


class _PySatSolver:
    """Adapter giving python-sat's Glucose3 the repo's Solver surface.

    Incremental (clauses and assumption solving map 1:1); the heuristic
    hooks are accepted but ignored, ``conflict_limit`` maps onto
    python-sat's ``conf_budget`` mechanism, and ``stats`` mirrors the
    accumulated statistics the native solvers expose (keys only — the
    counters come from the external engine where available).
    """

    def __init__(self) -> None:
        from pysat.solvers import Glucose3  # noqa: PLC0415

        self._solver = Glucose3(incr=True)
        self._num_vars = 0
        self._ok = True
        self._has_model = False
        self._model: dict[int, bool] = {}
        self._core: list[int] = []
        self.stats: dict[str, int] = {
            "conflicts": 0,
            "decisions": 0,
            "propagations": 0,
            "restarts": 0,
            "learned": 0,
            "deleted": 0,
        }

    def new_var(self) -> int:
        self._num_vars += 1
        return self._num_vars

    def ensure_vars(self, n: int) -> None:
        if n > self._num_vars:
            self._num_vars = n

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def add_clause(self, lits) -> bool:
        clause = list(lits)
        for lit in clause:
            self.ensure_vars(abs(lit))
        if not clause:
            self._ok = False
            return False
        self._solver.add_clause(clause)
        return self._ok

    def add_clauses(self, clauses) -> bool:
        ok = True
        for clause in clauses:
            ok = self.add_clause(clause) and ok
        return ok

    def bump_activity(self, var: int, amount: float = 1.0) -> None:
        pass  # external engine owns its heuristics

    def set_phase(self, var: int, value: bool) -> None:
        self._solver.set_phases([var if value else -var])

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_limit: int | None = None,
        budget=None,
    ):
        # Mirror the native contract: witnesses are per-solve, never
        # carried over from an earlier call.
        self._has_model = False
        self._model = {}
        self._core = []
        if not self._ok:
            return False
        self.interrupted = False
        if budget is not None:
            # The external engine cannot poll mid-solve; approximate the
            # budget with its conflict cap (checked up front and applied
            # as a conf_budget) — coarse, but keeps portfolio configs
            # naming this backend budget-safe.
            if budget.poll():
                self.interrupted = True
                return None
            remaining = budget.conflicts_remaining()
            if remaining is not None and (
                conflict_limit is None or remaining < conflict_limit
            ):
                conflict_limit = remaining
        for a in assumptions:
            self.ensure_vars(abs(a))
        prev_conflicts = self.stats["conflicts"]
        prev_props = self.stats["propagations"]
        if conflict_limit is not None:
            self._solver.conf_budget(conflict_limit)
            result = self._solver.solve_limited(
                assumptions=list(assumptions)
            )
        else:
            result = self._solver.solve(assumptions=list(assumptions))
        acc = self._solver.accum_stats()
        for key in ("conflicts", "decisions", "propagations", "restarts"):
            self.stats[key] = int(acc.get(key, self.stats[key]))
        if budget is not None:
            if budget.charge(
                self.stats["conflicts"] - prev_conflicts,
                self.stats["propagations"] - prev_props,
            ) and result is None:
                self.interrupted = True
        if result is True:
            self._has_model = True
            self._model = {
                abs(l): l > 0 for l in (self._solver.get_model() or [])
            }
        elif result is False:
            self._core = list(self._solver.get_core() or [])
        return result

    def value(self, var: int):
        if not self._has_model:
            raise RuntimeError("no model: last solve() did not return True")
        return self._model.get(var)

    def model(self) -> list[int]:
        if not self._has_model:
            raise RuntimeError("no model: last solve() did not return True")
        return [
            (v if self._model[v] else -v) for v in sorted(self._model)
        ]

    def core(self) -> list[int]:
        return list(self._core)

    def start_proof(self):
        raise NotImplementedError(
            "DRAT logging is only available on the native backends"
        )


def _try_register_pysat() -> None:
    try:
        from pysat.solvers import Glucose3  # noqa: F401,PLC0415
    except ImportError as exc:
        UNAVAILABLE_BACKENDS["pysat"] = (
            f"optional dependency not importable: {exc}"
        )
        return
    register_backend(
        "pysat", "external python-sat Glucose3 (optional dependency)"
    )(_PySatSolver)


_try_register_pysat()


# ----------------------------------------------------------------------
# optional compiled backend (numba), registered only if importable
# ----------------------------------------------------------------------
def compiled_backend_available() -> bool:
    """True when the numba-compiled ``arena-jit`` backend is registered."""
    return "arena-jit" in SAT_BACKENDS


def _try_register_compiled() -> None:
    from .compiled import NUMBA_AVAILABLE, NUMBA_IMPORT_ERROR

    if not NUMBA_AVAILABLE:
        UNAVAILABLE_BACKENDS["arena-jit"] = (
            f"optional dependency not importable: {NUMBA_IMPORT_ERROR} "
            f"(selection falls back to {BACKEND_FALLBACKS['arena-jit']!r})"
        )
        return

    @register_backend(
        "arena-jit",
        "numba-compiled arena CDCL kernels (optional dependency; "
        "per-process warm-up on first use)",
    )
    def _compiled_backend():
        from .compiled import CompiledSolver, warm_up

        warm_up()  # JIT compile outside any measured query
        return CompiledSolver()


_try_register_compiled()
