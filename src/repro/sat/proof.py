"""DRAT proofs: logging containers and an independent checker.

A diagnosis answer of the form "there is **no** correction with at most
``k`` candidates" (the UNSAT side of BSAT's incremental loop, Lemma 3) is
only as trustworthy as the SAT solver.  Modern practice is to have the
solver emit a *DRAT proof* — the sequence of learnt clauses plus deletions
— and re-check it with an independent, much simpler verifier.  This module
provides both halves:

* :class:`ProofLog` — the event list produced by
  :meth:`repro.sat.solver.Solver.start_proof`, with DRAT text round-trip.
* :func:`check_drat` — a reverse-unit-propagation (RUP) checker: every
  added clause must be derivable by unit propagation from the formula plus
  the earlier proof clauses; the proof must end in the empty clause.  The
  checker shares no code with the solver, favouring obvious correctness
  over speed.

The checker verifies the RUP property, which is a (strict) subset of full
RAT — every clause the CDCL solver here learns is RUP, so nothing is lost.

>>> from repro.sat.cnf import CNF
>>> cnf = CNF()
>>> a = cnf.new_var("a")
>>> cnf.add_clauses([[a], [-a]])
>>> ok, proof = solve_with_proof(cnf)
>>> ok, check_drat(cnf.clauses, proof)
(False, True)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .cnf import CNF
from .solver import Solver

__all__ = [
    "ProofStep",
    "ProofLog",
    "check_rup",
    "check_drat",
    "solve_with_proof",
]


@dataclass(frozen=True)
class ProofStep:
    """One DRAT line: an added (learnt) or deleted clause."""

    delete: bool
    lits: tuple[int, ...]

    def to_drat(self) -> str:
        body = " ".join(str(l) for l in self.lits)
        prefix = "d " if self.delete else ""
        return f"{prefix}{body} 0".replace("  ", " ").strip()


class ProofLog:
    """Ordered list of proof steps emitted by the solver."""

    def __init__(self) -> None:
        self._steps: list[ProofStep] = []

    def add(self, lits: Iterable[int]) -> None:
        """Record a learnt clause (the empty clause closes the proof)."""
        self._steps.append(ProofStep(delete=False, lits=tuple(lits)))

    def delete(self, lits: Iterable[int]) -> None:
        """Record the deletion of a previously added clause."""
        self._steps.append(ProofStep(delete=True, lits=tuple(lits)))

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[ProofStep]:
        return iter(self._steps)

    @property
    def steps(self) -> tuple[ProofStep, ...]:
        return tuple(self._steps)

    @property
    def ends_with_empty_clause(self) -> bool:
        return any(not s.delete and not s.lits for s in self._steps)

    def to_drat_text(self) -> str:
        """Serialize in the standard DRAT text format."""
        return "\n".join(step.to_drat() for step in self._steps) + "\n"

    @classmethod
    def from_drat_text(cls, text: str) -> "ProofLog":
        """Parse the standard DRAT text format.

        >>> log = ProofLog.from_drat_text("1 2 0\\nd 1 2 0\\n0\\n")
        >>> [s.delete for s in log], [s.lits for s in log]
        ([False, True, False], [(1, 2), (1, 2), ()])
        """
        log = cls()
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            delete = line.startswith("d ") or line == "d"
            body = line[1:].strip() if delete else line
            tokens = [int(t) for t in body.split()] if body else []
            if not tokens or tokens[-1] != 0:
                raise ValueError(f"DRAT line must end in 0: {raw!r}")
            lits = tuple(tokens[:-1])
            if delete:
                log.delete(lits)
            else:
                log.add(lits)
        return log


class _ClauseDb:
    """Active clause multiset with unit propagation (checker-internal)."""

    def __init__(self, clauses: Iterable[Sequence[int]]) -> None:
        self._count: dict[tuple[int, ...], int] = {}
        self._clauses: list[tuple[int, ...]] = []
        for clause in clauses:
            self.insert(clause)

    @staticmethod
    def _key(clause: Sequence[int]) -> tuple[int, ...]:
        return tuple(sorted(set(clause)))

    def insert(self, clause: Sequence[int]) -> None:
        key = self._key(clause)
        self._count[key] = self._count.get(key, 0) + 1
        self._clauses.append(key)

    def remove(self, clause: Sequence[int]) -> bool:
        """Deactivate one instance of ``clause``; False when absent."""
        key = self._key(clause)
        if self._count.get(key, 0) == 0:
            return False
        self._count[key] -= 1
        return True

    def active_clauses(self) -> list[tuple[int, ...]]:
        remaining = dict(self._count)
        result = []
        for key in self._clauses:
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                result.append(key)
        return result

    def propagates_to_conflict(self, assumed_false: Sequence[int]) -> bool:
        """Unit-propagate with the literals of ``assumed_false`` set false.

        Returns True when propagation derives a conflict — i.e. the clause
        made of ``assumed_false`` is RUP w.r.t. the active database.
        """
        assign: dict[int, int] = {}
        for lit in assumed_false:
            var, val = abs(lit), int(lit < 0)  # lit is false
            if var in assign and assign[var] != val:
                return True  # the clause is a tautology: trivially RUP
            assign[var] = val
        active = self.active_clauses()
        changed = True
        while changed:
            changed = False
            for clause in active:
                unassigned: list[int] = []
                satisfied = False
                for lit in clause:
                    var = abs(lit)
                    val = assign.get(var)
                    if val is None:
                        unassigned.append(lit)
                    elif (val == 1) == (lit > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not unassigned:
                    return True  # conflict
                if len(unassigned) == 1:
                    lit = unassigned[0]
                    assign[abs(lit)] = int(lit > 0)
                    changed = True
        return False


def check_rup(
    clauses: Iterable[Sequence[int]], clause: Sequence[int]
) -> bool:
    """Is ``clause`` derivable from ``clauses`` by reverse unit propagation?

    >>> check_rup([[1, 2], [-1, 2]], [2])
    True
    >>> check_rup([[1, 2]], [1])
    False
    """
    return _ClauseDb(clauses).propagates_to_conflict(list(clause))


def check_drat(
    clauses: Iterable[Sequence[int]],
    proof: ProofLog,
    require_empty: bool = True,
) -> bool:
    """Verify ``proof`` against the original formula ``clauses``.

    Every added clause must be RUP with respect to the formula plus the
    not-yet-deleted earlier proof clauses; with ``require_empty`` (the
    default) the proof must also contain the empty clause, certifying
    unsatisfiability.  Deletion steps of unknown clauses are rejected.
    """
    db = _ClauseDb(clauses)
    saw_empty = False
    for step in proof:
        if step.delete:
            if not db.remove(step.lits):
                return False
            continue
        if not db.propagates_to_conflict(list(step.lits)):
            return False
        if not step.lits:
            saw_empty = True
            break  # everything after the empty clause is irrelevant
        db.insert(step.lits)
    return saw_empty or not require_empty


def solve_with_proof(
    cnf: CNF, assumptions: Sequence[int] = ()
) -> tuple[bool, ProofLog]:
    """Solve ``cnf`` on a fresh solver with DRAT logging enabled.

    Returns ``(satisfiable, proof)``.  The proof certifies UNSAT only for
    assumption-free calls (see :meth:`Solver.start_proof`); it is still
    returned for SAT outcomes (useful to measure logging overhead).
    """
    solver = Solver()
    proof = solver.start_proof()
    cnf.to_solver(solver)
    result = solver.solve(assumptions=assumptions)
    return bool(result), proof
