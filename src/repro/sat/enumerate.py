"""All-solutions enumeration over a projection of the variables.

``BasicSATDiagnose`` needs *every* solution of the diagnosis instance,
projected onto the multiplexer select lines ("Enumerate all solutions and
add a blocking clause for each solution", paper Fig. 3).  The enumerator
repeatedly solves, yields the set of true projection variables, and blocks
it:

* ``block="superset"`` adds ``(¬s_a ∨ ¬s_b ∨ …)`` — no later solution may
  contain this one, which combined with increasing cardinality bounds
  yields exactly the inclusion-minimal ("essential candidates only",
  Lemma 3) solutions;
* ``block="exact"`` blocks only the precise projection assignment,
  enumerating all distinct projections.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from .solver import Solver

__all__ = ["enumerate_solutions"]


def enumerate_solutions(
    solver: Solver,
    projection: Sequence[int],
    assumptions: Sequence[int] = (),
    block: str = "superset",
    limit: int | None = None,
    conflict_limit: int | None = None,
    on_solution: Callable[[frozenset[int]], None] | None = None,
) -> Iterator[frozenset[int]]:
    """Yield sets of true projection variables, blocking each one found.

    Parameters
    ----------
    projection:
        The variables solutions are projected onto (select lines).
    assumptions:
        Extra assumptions per solve call (e.g. the totalizer bound literal).
    block:
        ``"superset"`` or ``"exact"`` (see module docstring).
    limit:
        Stop after this many solutions (None = all).
    conflict_limit:
        Per-solve conflict budget; raises :class:`TimeoutError` when hit so
        callers can distinguish exhaustion from completion.

    Notes
    -----
    Blocking clauses are added permanently: enumerating with bound ``i``
    and then ``i+1`` never repeats (or extends, under superset blocking) a
    solution — this is what makes the paper's incremental ``k`` loop return
    only corrections with essential candidates.
    """
    if block not in ("superset", "exact"):
        raise ValueError("block must be 'superset' or 'exact'")
    count = 0
    while limit is None or count < limit:
        result = solver.solve(
            assumptions=assumptions, conflict_limit=conflict_limit
        )
        if result is None:
            raise TimeoutError(
                f"enumeration hit the conflict limit ({conflict_limit})"
            )
        if not result:
            return
        true_vars = frozenset(v for v in projection if solver.value(v))
        if on_solution is not None:
            on_solution(true_vars)
        yield true_vars
        count += 1
        if block == "superset":
            clause = [-v for v in true_vars]
        else:
            clause = [(-v if v in true_vars else v) for v in projection]
        if not clause:
            # The empty projection solution blocks everything else.
            return
        if not solver.add_clause(clause):
            return
