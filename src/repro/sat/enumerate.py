"""All-solutions enumeration over a projection of the variables.

``BasicSATDiagnose`` needs *every* solution of the diagnosis instance,
projected onto the multiplexer select lines ("Enumerate all solutions and
add a blocking clause for each solution", paper Fig. 3).  The enumerator
repeatedly solves, yields the set of true projection variables, and blocks
it:

* ``block="superset"`` adds ``(¬s_a ∨ ¬s_b ∨ …)`` — no later solution may
  contain this one, which combined with increasing cardinality bounds
  yields exactly the inclusion-minimal ("essential candidates only",
  Lemma 3) solutions;
* ``block="exact"`` blocks only the precise projection assignment,
  enumerating all distinct projections.

The enumerator owns **no** solver state: it drives the caller's solver
in place — blocking clauses are added to it directly (no clause re-adding
per solution, no instance copies), so learnt clauses, saved phases and
the arena solver's reusable trail all persist across the loop *and*
remain with the caller afterwards.  ``block_extra`` appends activation
literals to every blocking clause, which is how the persistent diagnosis
instances scope one enumeration's blocks away from the next query
(see :mod:`repro.sat` docstring), and ``stats_deltas`` records what each
solution cost (restarts/learned/conflict/... deltas) for the benchmark
artifacts.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from .budget import SearchInterrupted
from .solver import Solver

__all__ = ["enumerate_solutions"]

#: Stats keys reported per solution in ``stats_deltas``.
_DELTA_KEYS = (
    "restarts",
    "learned",
    "conflicts",
    "decisions",
    "propagations",
)


def enumerate_solutions(
    solver: Solver,
    projection: Sequence[int],
    assumptions: Sequence[int] = (),
    block: str = "superset",
    limit: int | None = None,
    conflict_limit: int | None = None,
    on_solution: Callable[[frozenset[int]], None] | None = None,
    block_extra: Sequence[int] = (),
    stats_deltas: list | None = None,
    budget=None,
) -> Iterator[frozenset[int]]:
    """Yield sets of true projection variables, blocking each one found.

    Parameters
    ----------
    projection:
        The variables solutions are projected onto (select lines).
    assumptions:
        Extra assumptions per solve call (e.g. the totalizer bound literal
        and the activation literal matching ``block_extra``).
    block:
        ``"superset"`` or ``"exact"`` (see module docstring).
    limit:
        Stop after this many solutions (None = all).
    conflict_limit:
        Per-solve conflict budget; raises :class:`TimeoutError` when hit so
        callers can distinguish exhaustion from completion.
    budget:
        :class:`repro.sat.budget.Budget` threaded into every solve call;
        when it trips mid-search the enumerator raises
        :class:`~repro.sat.budget.SearchInterrupted` (a
        :class:`TimeoutError` subclass, so pre-budget handlers still
        catch it) rather than the plain conflict-limit TimeoutError.
    block_extra:
        Literals appended to every blocking clause.  Pass the negation of
        an activation literal that is also assumed in ``assumptions`` to
        make the blocks retractable (drop the assumption and they are
        vacuously satisfiable) — the persistent-instance scoping used by
        :mod:`repro.diagnosis.satdiag`.
    stats_deltas:
        When a list is passed, one dict per enumerated solution is
        appended with the change in the solver's ``restarts``/``learned``/
        ``conflicts``/``decisions``/``propagations`` counters that finding
        the solution cost.

    Notes
    -----
    Blocking clauses are added permanently (modulo ``block_extra``
    scoping): enumerating with bound ``i`` and then ``i+1`` never repeats
    (or extends, under superset blocking) a solution — this is what makes
    the paper's incremental ``k`` loop return only corrections with
    essential candidates.
    """
    if block not in ("superset", "exact"):
        raise ValueError("block must be 'superset' or 'exact'")
    extra = list(block_extra)
    count = 0
    while limit is None or count < limit:
        before = (
            {k: solver.stats[k] for k in _DELTA_KEYS}
            if stats_deltas is not None
            else None
        )
        if budget is None:
            result = solver.solve(
                assumptions=assumptions, conflict_limit=conflict_limit
            )
        else:
            result = solver.solve(
                assumptions=assumptions,
                conflict_limit=conflict_limit,
                budget=budget,
            )
        if result is None:
            if budget is not None and getattr(
                solver, "interrupted", False
            ):
                raise SearchInterrupted(
                    f"enumeration interrupted by budget ({budget.reason})"
                )
            raise TimeoutError(
                f"enumeration hit the conflict limit ({conflict_limit})"
            )
        if not result:
            return
        true_vars = frozenset(v for v in projection if solver.value(v))
        if before is not None:
            stats_deltas.append(
                {k: solver.stats[k] - before[k] for k in _DELTA_KEYS}
            )
        if on_solution is not None:
            on_solution(true_vars)
        yield true_vars
        count += 1
        if block == "superset":
            clause = [-v for v in true_vars]
        else:
            clause = [(-v if v in true_vars else v) for v in projection]
        clause.extend(extra)
        if not clause:
            # The empty projection solution blocks everything else.
            return
        if not solver.add_clause(clause):
            return
