"""Experiment workloads: the paper's benchmark cells.

One *workload* = (circuit, p injected gate-change errors, a test-set of up
to 32 failing tests).  The paper's Table 2/3 grid is::

    s1423  p=4   m in {4, 8, 16, 32}
    s6669  p=3   m in {4, 8, 16, 32}
    s38417 p=2   m in {4, 8, 16, 32}

with "a part of the same test-set ... used for an erroneous circuit" —
reproduced by generating 32 tests once and slicing prefixes.

The bundled circuits are the synthetic ISCAS89 stand-ins (see DESIGN.md);
``make_workload`` accepts any circuit name registered in
:mod:`repro.circuits.library` or a :class:`~repro.circuits.netlist.Circuit`
directly, so real ``.bench`` files drop in unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.library import get_circuit
from ..circuits.netlist import Circuit
from ..circuits.scan import to_combinational
from ..faults.inject import Injection, random_gate_changes, random_wire_errors
from ..testgen.random_gen import random_failing_tests
from ..testgen.satgen import distinguishing_tests
from ..testgen.testset import TestSet

__all__ = ["Workload", "make_workload", "PAPER_GRID", "M_VALUES"]

#: The paper's experiment grid: (circuit name, number of injected errors).
PAPER_GRID: tuple[tuple[str, int], ...] = (
    ("sim1423", 4),
    ("sim6669", 3),
    ("sim38417", 2),
)

#: Test counts evaluated per grid row.
M_VALUES: tuple[int, ...] = (4, 8, 16, 32)


@dataclass(frozen=True)
class Workload:
    """A fully prepared diagnosis problem with ground truth."""

    name: str
    injection: Injection
    tests: TestSet

    @property
    def golden(self) -> Circuit:
        return self.injection.golden

    @property
    def faulty(self) -> Circuit:
        return self.injection.faulty

    @property
    def p(self) -> int:
        return self.injection.p

    @property
    def sites(self) -> tuple[str, ...]:
        return self.injection.sites

    def cell(self, m: int) -> "Workload":
        """The workload restricted to the first ``m`` tests (a table cell)."""
        return Workload(self.name, self.injection, self.tests.prefix(m))


def make_workload(
    circuit: str | Circuit,
    p: int,
    m_max: int = 32,
    seed: int = 0,
    attach_expected: bool = False,
    allow_fewer: bool = False,
    error_model: str = "gate",
) -> Workload:
    """Prepare a workload: inject ``p`` errors, collect ``m_max`` failing tests.

    Sequential circuits are converted to their full-scan view first (the
    paper's combinational treatment of ISCAS89).  Random vector generation
    is tried first; the SAT-based miter generator completes the test-set
    when random search cannot excite the errors often enough.  Tiny
    circuits may admit fewer than ``m_max`` distinct failing tests; with
    ``allow_fewer`` the workload is built from whatever exists (at least
    one), otherwise this raises RuntimeError.

    ``error_model`` selects the injector: ``"gate"`` for the paper's
    gate-change errors (§2.1), ``"wire"`` for the Abadir-style design
    error zoo (ref [18]: inverter / wrong / extra / missing wire).
    """
    if error_model not in ("gate", "wire"):
        raise ValueError("error_model must be 'gate' or 'wire'")
    golden = get_circuit(circuit) if isinstance(circuit, str) else circuit
    if golden.is_sequential:
        golden = to_combinational(golden).circuit
    injector = random_gate_changes if error_model == "gate" else random_wire_errors
    injection = injector(golden, p=p, seed=seed)
    try:
        tests = random_failing_tests(
            golden,
            injection.faulty,
            m=m_max,
            seed=seed,
            attach_expected=attach_expected,
        )
    except RuntimeError:
        tests = distinguishing_tests(
            golden,
            injection.faulty,
            m=m_max,
            attach_expected=attach_expected,
        )
        if len(tests) < m_max and not (allow_fewer and len(tests) >= 1):
            raise RuntimeError(
                f"only {len(tests)} distinct failing tests exist for "
                f"{golden.name} with this injection (requested {m_max})"
            )
    return Workload(name=golden.name, injection=injection, tests=tests)
