"""Experiment runner: one Table 2/Table 3 cell at a time.

``run_cell`` executes the three basic approaches on one (circuit, p, m)
cell with the paper's measurement protocol:

* BSIM — wall time of ``BasicSimDiagnose``;
* COV — "CNF" (path tracing + covering-instance construction; the paper
  notes this *includes* the BSIM time), "One" (first solution; separate
  run with a solution limit of 1, as the paper reports separate columns),
  "All" (full enumeration);
* BSAT — "CNF" (instance construction), "One", "All".

Quality metrics (Table 3) come from the ground-truth error sites of the
workload's injection.

``run_candidate_search`` races the registered candidate-space strategies
(greedy-stochastic, IHS, BSAT, ...) on one cell over a shared
:class:`~repro.diagnosis.core.DiagnosisSession`, validating every
reported candidate — the measurement harness behind
``benchmarks/bench_candidate_search.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..diagnosis.base import SolutionSetResult
from ..diagnosis.core import DiagnosisSession, diagnose
from ..diagnosis.cover import sc_diagnose
from ..diagnosis.metrics import (
    BsimQuality,
    SolutionQuality,
    bsim_quality,
    solution_quality,
)
from ..diagnosis.pathtrace import basic_sim_diagnose
from ..diagnosis.satdiag import basic_sat_diagnose, build_diagnosis_instance
from ..diagnosis.validity import is_valid_correction
from .workloads import Workload

__all__ = ["CellResult", "run_cell", "SearchRaceResult", "run_candidate_search"]


@dataclass(frozen=True)
class CellResult:
    """All measurements of one experiment cell."""

    circuit: str
    p: int
    m: int
    k: int
    # Table 2 columns (seconds)
    bsim_time: float
    cov_cnf: float
    cov_one: float
    cov_all: float
    bsat_cnf: float
    bsat_one: float
    bsat_all: float
    # Table 3 columns
    bsim: BsimQuality
    cov: SolutionQuality
    sat: SolutionQuality
    # full solution sets (for cross-checks and Figure 6)
    cov_result: SolutionSetResult = field(repr=False, default=None)
    sat_result: SolutionSetResult = field(repr=False, default=None)
    notes: Mapping[str, object] = field(default_factory=dict)

    @property
    def cell_id(self) -> str:
        return f"{self.circuit}/p{self.p}/m{self.m}"


def run_cell(
    workload: Workload,
    m: int,
    k: int | None = None,
    policy: str = "first",
    solution_limit: int | None = None,
    conflict_limit: int | None = None,
    select_zero_clauses: bool = False,
) -> CellResult:
    """Run BSIM, COV and BSAT on the first ``m`` tests of ``workload``.

    ``k`` defaults to the number of injected errors ("The limit k was
    always set to the number of errors injected previously", §5).
    ``solution_limit``/``conflict_limit`` bound the "All" enumerations the
    way the paper's 512 MB / 30 min limits did; a truncated enumeration is
    flagged in ``notes``.
    """
    cell = workload.cell(m)
    if k is None:
        k = workload.p
    faulty = cell.faulty
    tests = cell.tests
    sites = cell.sites

    # ---- BSIM ----
    sim_result = basic_sim_diagnose(faulty, tests, policy=policy)
    bsim_q = bsim_quality(faulty, sim_result, sites)

    # ---- COV ----
    cov_one_res = sc_diagnose(
        faulty, tests, k, policy=policy, sim_result=sim_result,
        solution_limit=1, conflict_limit=conflict_limit,
    )
    cov_all_res = sc_diagnose(
        faulty, tests, k, policy=policy, sim_result=sim_result,
        solution_limit=solution_limit, conflict_limit=conflict_limit,
    )
    cov_q = solution_quality(faulty, cov_all_res.solutions, sites)

    # ---- BSAT ----
    instance = build_diagnosis_instance(
        faulty, tests, k_max=k, select_zero_clauses=select_zero_clauses
    )
    bsat_one_res = basic_sat_diagnose(
        faulty, tests, k, instance=instance,
        solution_limit=1, conflict_limit=conflict_limit,
    )
    # Fresh instance for the "All" run (the One run added blocking clauses).
    instance_all = build_diagnosis_instance(
        faulty, tests, k_max=k, select_zero_clauses=select_zero_clauses
    )
    bsat_all_res = basic_sat_diagnose(
        faulty, tests, k, instance=instance_all,
        solution_limit=solution_limit, conflict_limit=conflict_limit,
    )
    sat_q = solution_quality(faulty, bsat_all_res.solutions, sites)

    notes: dict[str, object] = {}
    if not cov_all_res.complete:
        notes["cov_truncated"] = True
    if not bsat_all_res.complete:
        notes["bsat_truncated"] = True

    return CellResult(
        circuit=workload.name,
        p=workload.p,
        m=m,
        k=k,
        bsim_time=sim_result.runtime,
        # Paper: COV's CNF column includes the BSIM time.
        cov_cnf=sim_result.runtime + cov_all_res.t_build,
        cov_one=cov_one_res.t_all,
        cov_all=cov_all_res.t_all,
        bsat_cnf=instance_all.build_time,
        bsat_one=bsat_one_res.t_all,
        bsat_all=bsat_all_res.t_all,
        bsim=bsim_q,
        cov=cov_q,
        sat=sat_q,
        cov_result=cov_all_res,
        sat_result=bsat_all_res,
        notes=notes,
    )


@dataclass(frozen=True)
class SearchRaceResult:
    """One strategy's leg of a candidate-search race."""

    strategy: str
    result: SolutionSetResult = field(repr=False)
    wall_time: float
    n_valid: int
    n_invalid: int
    hit: bool  # some candidate contains an actual error site

    @property
    def t_first(self) -> float:
        return self.result.t_first

    def row(self) -> dict[str, object]:
        """JSON-friendly summary (the bench artifact's row format)."""
        return {
            "strategy": self.strategy,
            "approach": self.result.approach,
            "n_solutions": self.result.n_solutions,
            "n_valid": self.n_valid,
            "n_invalid": self.n_invalid,
            "hit": self.hit,
            "t_build": self.result.t_build,
            "t_first": self.result.t_first,
            "t_all": self.result.t_all,
            "wall_time": self.wall_time,
            "complete": self.result.complete,
        }


def run_candidate_search(
    workload: Workload,
    m: int | None = None,
    k: int | None = None,
    strategies: Sequence[str] = ("greedy-stochastic", "ihs", "bsat"),
    validate: bool = True,
    strategy_options: Mapping[str, Mapping[str, object]] | None = None,
) -> dict[str, SearchRaceResult]:
    """Race diagnosis strategies on one workload cell, shared session.

    ``k`` defaults to the injected error count for strategies that need a
    bound (``bsat``); the search loops take ``k=None`` (self-determined
    cardinality) unless overridden via ``strategy_options``.  With
    ``validate`` every reported candidate is re-checked against the
    exact oracle, so the race also acts as a correctness harness.
    """
    cell = workload.cell(m) if m is not None else workload
    session = DiagnosisSession(cell.faulty, cell.tests)
    sites = set(cell.sites)
    if k is None:
        k = workload.p
    results: dict[str, SearchRaceResult] = {}
    for name in strategies:
        options = dict((strategy_options or {}).get(name, {}))
        # Search loops determine their own cardinality unless told not to.
        k_arg = options.pop(
            "k", None if name in ("greedy-stochastic", "ihs") else k
        )
        start = time.perf_counter()
        result = diagnose(session, k=k_arg, strategy=name, **options)
        wall = time.perf_counter() - start
        n_valid = n_invalid = 0
        if validate:
            for sol in result.solutions:
                if is_valid_correction(cell.faulty, cell.tests, sol):
                    n_valid += 1
                else:
                    n_invalid += 1
        hit = any(set(sol) & sites for sol in result.solutions)
        results[name] = SearchRaceResult(
            strategy=name,
            result=result,
            wall_time=wall,
            n_valid=n_valid,
            n_invalid=n_invalid,
            hit=hit,
        )
    return results
