"""Experiment runner: one Table 2/Table 3 cell at a time.

``run_cell`` executes the three basic approaches on one (circuit, p, m)
cell with the paper's measurement protocol:

* BSIM — wall time of ``BasicSimDiagnose``;
* COV — "CNF" (path tracing + covering-instance construction; the paper
  notes this *includes* the BSIM time), "One" (first solution; separate
  run with a solution limit of 1, as the paper reports separate columns),
  "All" (full enumeration);
* BSAT — "CNF" (instance construction), "One", "All".

Quality metrics (Table 3) come from the ground-truth error sites of the
workload's injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..diagnosis.base import SolutionSetResult
from ..diagnosis.cover import sc_diagnose
from ..diagnosis.metrics import (
    BsimQuality,
    SolutionQuality,
    bsim_quality,
    solution_quality,
)
from ..diagnosis.pathtrace import basic_sim_diagnose
from ..diagnosis.satdiag import basic_sat_diagnose, build_diagnosis_instance
from .workloads import Workload

__all__ = ["CellResult", "run_cell"]


@dataclass(frozen=True)
class CellResult:
    """All measurements of one experiment cell."""

    circuit: str
    p: int
    m: int
    k: int
    # Table 2 columns (seconds)
    bsim_time: float
    cov_cnf: float
    cov_one: float
    cov_all: float
    bsat_cnf: float
    bsat_one: float
    bsat_all: float
    # Table 3 columns
    bsim: BsimQuality
    cov: SolutionQuality
    sat: SolutionQuality
    # full solution sets (for cross-checks and Figure 6)
    cov_result: SolutionSetResult = field(repr=False, default=None)
    sat_result: SolutionSetResult = field(repr=False, default=None)
    notes: Mapping[str, object] = field(default_factory=dict)

    @property
    def cell_id(self) -> str:
        return f"{self.circuit}/p{self.p}/m{self.m}"


def run_cell(
    workload: Workload,
    m: int,
    k: int | None = None,
    policy: str = "first",
    solution_limit: int | None = None,
    conflict_limit: int | None = None,
    select_zero_clauses: bool = False,
) -> CellResult:
    """Run BSIM, COV and BSAT on the first ``m`` tests of ``workload``.

    ``k`` defaults to the number of injected errors ("The limit k was
    always set to the number of errors injected previously", §5).
    ``solution_limit``/``conflict_limit`` bound the "All" enumerations the
    way the paper's 512 MB / 30 min limits did; a truncated enumeration is
    flagged in ``notes``.
    """
    cell = workload.cell(m)
    if k is None:
        k = workload.p
    faulty = cell.faulty
    tests = cell.tests
    sites = cell.sites

    # ---- BSIM ----
    sim_result = basic_sim_diagnose(faulty, tests, policy=policy)
    bsim_q = bsim_quality(faulty, sim_result, sites)

    # ---- COV ----
    cov_one_res = sc_diagnose(
        faulty, tests, k, policy=policy, sim_result=sim_result,
        solution_limit=1, conflict_limit=conflict_limit,
    )
    cov_all_res = sc_diagnose(
        faulty, tests, k, policy=policy, sim_result=sim_result,
        solution_limit=solution_limit, conflict_limit=conflict_limit,
    )
    cov_q = solution_quality(faulty, cov_all_res.solutions, sites)

    # ---- BSAT ----
    instance = build_diagnosis_instance(
        faulty, tests, k_max=k, select_zero_clauses=select_zero_clauses
    )
    bsat_one_res = basic_sat_diagnose(
        faulty, tests, k, instance=instance,
        solution_limit=1, conflict_limit=conflict_limit,
    )
    # Fresh instance for the "All" run (the One run added blocking clauses).
    instance_all = build_diagnosis_instance(
        faulty, tests, k_max=k, select_zero_clauses=select_zero_clauses
    )
    bsat_all_res = basic_sat_diagnose(
        faulty, tests, k, instance=instance_all,
        solution_limit=solution_limit, conflict_limit=conflict_limit,
    )
    sat_q = solution_quality(faulty, bsat_all_res.solutions, sites)

    notes: dict[str, object] = {}
    if not cov_all_res.complete:
        notes["cov_truncated"] = True
    if not bsat_all_res.complete:
        notes["bsat_truncated"] = True

    return CellResult(
        circuit=workload.name,
        p=workload.p,
        m=m,
        k=k,
        bsim_time=sim_result.runtime,
        # Paper: COV's CNF column includes the BSIM time.
        cov_cnf=sim_result.runtime + cov_all_res.t_build,
        cov_one=cov_one_res.t_all,
        cov_all=cov_all_res.t_all,
        bsat_cnf=instance_all.build_time,
        bsat_one=bsat_one_res.t_all,
        bsat_all=bsat_all_res.t_all,
        bsim=bsim_q,
        cov=cov_q,
        sat=sat_q,
        cov_result=cov_all_res,
        sat_result=bsat_all_res,
        notes=notes,
    )
