"""Experiment harness: workloads, runner, table/figure reproduction."""

from .workloads import Workload, make_workload, PAPER_GRID, M_VALUES
from .runner import (
    CellResult,
    SearchRaceResult,
    run_candidate_search,
    run_cell,
)
from .tables import format_table2, format_table3, format_cell_summary
from .figures import ScatterPoint, fig6_series, render_scatter, format_fig6

__all__ = [
    "Workload",
    "make_workload",
    "PAPER_GRID",
    "M_VALUES",
    "CellResult",
    "run_cell",
    "SearchRaceResult",
    "run_candidate_search",
    "format_table2",
    "format_table3",
    "format_cell_summary",
    "ScatterPoint",
    "fig6_series",
    "render_scatter",
    "format_fig6",
]
