"""Text rendering of the paper's tables from measured cells."""

from __future__ import annotations

import math
from typing import Sequence

from .runner import CellResult

__all__ = ["format_table2", "format_table3", "format_cell_summary"]


def _fmt_t(seconds: float) -> str:
    return f"{seconds:.2f}"


def _fmt_d(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    return f"{value:.2f}"


def format_table2(cells: Sequence[CellResult]) -> str:
    """Table 2: runtimes of the basic approaches."""
    header = (
        f"{'I':<10} {'p':>2} {'m':>3} | {'BSIM':>7} | "
        f"{'COV CNF':>8} {'One':>7} {'All':>8} | "
        f"{'BSAT CNF':>8} {'One':>8} {'All':>9}"
    )
    lines = ["Table 2. Runtime of the basic approaches (seconds)", header,
             "-" * len(header)]
    for c in cells:
        flag = "*" if c.notes else " "
        lines.append(
            f"{c.circuit:<10} {c.p:>2} {c.m:>3} | {_fmt_t(c.bsim_time):>7} | "
            f"{_fmt_t(c.cov_cnf):>8} {_fmt_t(c.cov_one):>7} "
            f"{_fmt_t(c.cov_all):>8} | "
            f"{_fmt_t(c.bsat_cnf):>8} {_fmt_t(c.bsat_one):>8} "
            f"{_fmt_t(c.bsat_all):>8}{flag}"
        )
    if any(c.notes for c in cells):
        lines.append("* enumeration truncated by solution/conflict limit")
    return "\n".join(lines)


def format_table3(cells: Sequence[CellResult]) -> str:
    """Table 3: quality of the basic approaches."""
    header = (
        f"{'I':<10} {'p':>2} {'m':>3} | "
        f"{'|uCi|':>6} {'avgA':>6} {'Gmax':>5} {'min':>5} {'max':>5} "
        f"{'avgG':>6} | "
        f"{'#sol':>6} {'min':>5} {'max':>6} {'avg':>6} | "
        f"{'#sol':>6} {'min':>5} {'max':>6} {'avg':>6}"
    )
    title = (
        "Table 3. Quality of the basic approaches "
        "(BSIM | COV | SAT; distances to nearest actual error)"
    )
    lines = [title, header, "-" * len(header)]
    for c in cells:
        lines.append(
            f"{c.circuit:<10} {c.p:>2} {c.m:>3} | "
            f"{c.bsim.union_size:>6} {_fmt_d(c.bsim.avg_all):>6} "
            f"{c.bsim.gmax_size:>5} {_fmt_d(c.bsim.gmax_min):>5} "
            f"{_fmt_d(c.bsim.gmax_max):>5} {_fmt_d(c.bsim.gmax_avg):>6} | "
            f"{c.cov.n_solutions:>6} {_fmt_d(c.cov.min_avg):>5} "
            f"{_fmt_d(c.cov.max_avg):>6} {_fmt_d(c.cov.avg_avg):>6} | "
            f"{c.sat.n_solutions:>6} {_fmt_d(c.sat.min_avg):>5} "
            f"{_fmt_d(c.sat.max_avg):>6} {_fmt_d(c.sat.avg_avg):>6}"
        )
    return "\n".join(lines)


def format_cell_summary(cell: CellResult) -> str:
    """One-cell human-readable summary used by the examples."""
    lines = [
        f"cell {cell.cell_id} (k={cell.k})",
        f"  BSIM : {cell.bsim.union_size} marked gates in "
        f"{cell.bsim_time:.3f}s; Gmax={cell.bsim.gmax_size} "
        f"(min dist {cell.bsim.gmax_min})",
        f"  COV  : {cell.cov.n_solutions} solutions in {cell.cov_all:.3f}s; "
        f"avg dist {_fmt_d(cell.cov.avg_avg)}",
        f"  BSAT : {cell.sat.n_solutions} solutions in {cell.bsat_all:.3f}s; "
        f"avg dist {_fmt_d(cell.sat.avg_avg)} (all valid corrections)",
    ]
    return "\n".join(lines)
