"""Figure 6 data series and ASCII rendering.

Figure 6 compares BSAT against COV per benchmark cell: (a) the average
solution distance ("avg" of Table 3) on linear axes, (b) the number of
solutions on log-log axes.  Points below the diagonal favour BSAT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .runner import CellResult

__all__ = ["ScatterPoint", "fig6_series", "render_scatter", "format_fig6"]


@dataclass(frozen=True)
class ScatterPoint:
    cell_id: str
    cov: float
    sat: float

    @property
    def bsat_wins(self) -> bool:
        return self.sat < self.cov

    @property
    def tie(self) -> bool:
        return self.sat == self.cov


def fig6_series(
    cells: Sequence[CellResult],
) -> tuple[list[ScatterPoint], list[ScatterPoint]]:
    """Build the two scatter series: (a) avg distance, (b) #solutions."""
    quality: list[ScatterPoint] = []
    counts: list[ScatterPoint] = []
    for c in cells:
        if not (math.isnan(c.cov.avg_avg) or math.isnan(c.sat.avg_avg)):
            quality.append(ScatterPoint(c.cell_id, c.cov.avg_avg, c.sat.avg_avg))
        counts.append(
            ScatterPoint(
                c.cell_id, float(c.cov.n_solutions), float(c.sat.n_solutions)
            )
        )
    return quality, counts


def render_scatter(
    points: Sequence[ScatterPoint],
    width: int = 41,
    height: int = 21,
    log: bool = False,
    xlabel: str = "COV",
    ylabel: str = "BSAT",
) -> str:
    """Plain-text scatter plot with the y=x diagonal marked.

    Points plotted as ``o``; the diagonal as ``.``; overlaps as ``O``.
    """
    if not points:
        return "(no points)"

    def tx(v: float) -> float:
        if log:
            return math.log10(max(v, 0.5))
        return v

    xs = [tx(p.cov) for p in points]
    ys = [tx(p.sat) for p in points]
    lo = min(min(xs), min(ys))
    hi = max(max(xs), max(ys))
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for i in range(min(width, height)):
        gx = int(i * (width - 1) / (min(width, height) - 1))
        gy = int(i * (height - 1) / (min(width, height) - 1))
        grid[height - 1 - gy][gx] = "."
    for p in points:
        gx = int(round((tx(p.cov) - lo) / (hi - lo) * (width - 1)))
        gy = int(round((tx(p.sat) - lo) / (hi - lo) * (height - 1)))
        row, col = height - 1 - gy, gx
        grid[row][col] = "O" if grid[row][col] == "o" else "o"
    lines = ["".join(row) for row in grid]
    lines.append(f"x: {xlabel}{' (log10)' if log else ''}  "
                 f"y: {ylabel}{' (log10)' if log else ''}  "
                 f"range [{lo:.2f}, {hi:.2f}]")
    return "\n".join(lines)


def format_fig6(cells: Sequence[CellResult]) -> str:
    """Render both panels plus the headline statistic the paper draws from
    them: BSAT usually returns fewer solutions of better quality."""
    quality, counts = fig6_series(cells)
    q_wins = sum(1 for p in quality if p.bsat_wins)
    q_ties = sum(1 for p in quality if p.tie)
    c_wins = sum(1 for p in counts if p.bsat_wins)
    c_ties = sum(1 for p in counts if p.tie)
    parts = [
        "Figure 6(a): avg solution distance, BSAT vs COV",
        render_scatter(quality),
        f"BSAT better (below diagonal): {q_wins}/{len(quality)}"
        f" (ties: {q_ties})",
        "",
        "Figure 6(b): number of solutions, BSAT vs COV (log-log)",
        render_scatter(counts, log=True),
        f"BSAT fewer solutions: {c_wins}/{len(counts)} (ties: {c_ties})",
    ]
    return "\n".join(parts)
