"""Deductive fault simulation.

Classic single-fault deductive simulation (Armstrong): one topological pass
per pattern propagates, for every signal, the *fault list* — the set of
single stuck-at faults whose presence would flip that signal's value under
the current input vector.  The union of the primary-output lists is the set
of faults the pattern detects; one pass replaces one full simulation per
fault.

This is the pure-Python reference deductive engine, kept as the
equivalence oracle for its vectorized port
(:mod:`repro.sim.deductive_numpy`, which propagates the same lists as
uint64 bitset matrices, whole pattern blocks at once) and one leg of the
fault-engine lineup next to the serial forced-value simulator, the
bit-parallel pattern simulator, the fault-parallel batch sweep
(:mod:`repro.sim.batchfault`) and the event engines
(:mod:`repro.sim.event`, :mod:`repro.sim.batchevent`).  All engines agree
bit-for-bit — ``tests/sim/test_cross_engine.py`` holds the full
differential matrix.

Propagation rules, for a gate ``z`` with fault-free value ``v`` and fanin
lists ``L_i``:

* no fanin at a controlling value → ``L_z = ∪ L_i`` (any flipped input
  flips the output);
* fanins ``C`` at the controlling value → ``L_z = (∩_{i∈C} L_i) −
  (∪_{j∉C} L_j)`` (every controlling input must flip, no non-controlling
  one may);
* XOR/XNOR → a fault flips ``z`` iff it flips an odd number of fanins
  (symmetric difference);
* finally ``z``'s own stuck-at-``(1−v)`` fault joins ``L_z``.

The rules are exact for single faults, including the hard cases —
reconvergent fanout (a stem fault must flip *every* controlling fanin to
propagate, and is masked when it also flips a non-controlling one) and
XOR/XNOR parity cancellation — which is what makes the engine a strong
differential oracle.  Those cases are pinned by regression tests for both
this implementation and the numpy port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..circuits.gates import CONTROLLING_VALUE, GateType
from ..circuits.netlist import Circuit
from ..faults.collapse import full_stuck_at_universe
from ..faults.models import StuckAtFault
from .logicsim import simulate

__all__ = [
    "deductive_fault_lists",
    "deductive_detected",
    "FaultCoverage",
    "deductive_coverage",
]


def _fault_ids(
    faults: Sequence[StuckAtFault],
) -> tuple[dict[StuckAtFault, int], list[StuckAtFault]]:
    by_id = list(faults)
    return {f: i for i, f in enumerate(by_id)}, by_id


def deductive_fault_lists(
    circuit: Circuit,
    vector: Mapping[str, int],
    faults: Sequence[StuckAtFault] | None = None,
) -> dict[str, frozenset[StuckAtFault]]:
    """Fault list of every signal of ``circuit`` under ``vector``.

    ``faults`` restricts the simulated universe (default: the full stuck-at
    universe).  DFFs act as pseudo-inputs holding their (constant-0)
    present state; use the full-scan view for sequential circuits.

    >>> from repro.circuits.library import majority
    >>> from repro.faults.models import StuckAtFault
    >>> lists = deductive_fault_lists(majority(), {"a": 1, "b": 1, "c": 0})
    >>> StuckAtFault("ab", 0) in lists["out"]
    True
    """
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    fid, by_id = _fault_ids(faults)
    values = simulate(circuit, vector)
    lists: dict[str, set[int]] = {}
    for name in circuit.topological_order():
        gate = circuit.node(name)
        gtype = gate.gtype
        good = values[name]
        if gtype in (GateType.INPUT, GateType.DFF, GateType.CONST0, GateType.CONST1):
            result: set[int] = set()
        elif gtype in (GateType.BUF, GateType.NOT):
            result = set(lists[gate.fanins[0]])
        elif gtype in (GateType.XOR, GateType.XNOR):
            result = set()
            for fin in gate.fanins:
                result ^= lists[fin]
        else:
            control = CONTROLLING_VALUE[gtype]
            controlling = [f for f in gate.fanins if values[f] == control]
            if not controlling:
                result = set()
                for fin in gate.fanins:
                    result |= lists[fin]
            else:
                result = set(lists[controlling[0]])
                for fin in controlling[1:]:
                    result &= lists[fin]
                for fin in gate.fanins:
                    if values[fin] != control:
                        result -= lists[fin]
        own = StuckAtFault(name, good ^ 1)
        own_id = fid.get(own)
        if own_id is not None:
            result.add(own_id)
        lists[name] = result
    return {
        name: frozenset(by_id[i] for i in ids) for name, ids in lists.items()
    }


def deductive_detected(
    circuit: Circuit,
    vector: Mapping[str, int],
    faults: Sequence[StuckAtFault] | None = None,
) -> frozenset[StuckAtFault]:
    """Faults of ``circuit`` that ``vector`` detects at some primary output.

    >>> from repro.circuits.library import c17
    >>> from repro.faults.models import StuckAtFault
    >>> vec = {"G1": 1, "G2": 1, "G3": 1, "G6": 1, "G7": 1}
    >>> StuckAtFault("G16", 0) in deductive_detected(c17(), vec)
    True
    """
    lists = deductive_fault_lists(circuit, vector, faults=faults)
    detected: set[StuckAtFault] = set()
    for out in circuit.outputs:
        detected |= lists[out]
    return frozenset(detected)


@dataclass(frozen=True)
class FaultCoverage:
    """Coverage of a pattern set over a fault list.

    ``first_detection`` maps every detected fault to the index of the first
    pattern that exposes it — the per-fault view a fault dictionary is
    built from.
    """

    faults: tuple[StuckAtFault, ...]
    first_detection: Mapping[StuckAtFault, int]
    n_patterns: int

    @property
    def detected(self) -> frozenset[StuckAtFault]:
        return frozenset(self.first_detection)

    @property
    def undetected(self) -> tuple[StuckAtFault, ...]:
        return tuple(f for f in self.faults if f not in self.first_detection)

    @property
    def coverage(self) -> float:
        """Fraction of the fault list detected (1.0 when empty)."""
        if not self.faults:
            return 1.0
        return len(self.first_detection) / len(self.faults)


def deductive_coverage(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
    drop_detected: bool = True,
) -> FaultCoverage:
    """Simulate ``patterns`` in order, accumulating detected faults.

    With ``drop_detected`` (default) already-detected faults leave the
    simulated universe — the standard *fault dropping* that keeps fault
    lists small as coverage climbs.  Dropping never changes the result,
    only the cost.
    """
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    remaining = list(faults)
    first_detection: dict[StuckAtFault, int] = {}
    for idx, vector in enumerate(patterns):
        if not remaining:
            break
        target = remaining if drop_detected else faults
        detected = deductive_detected(circuit, vector, faults=target)
        newly = [f for f in detected if f not in first_detection]
        for fault in newly:
            first_detection[fault] = idx
        if drop_detected and newly:
            dropped = set(newly)
            remaining = [f for f in remaining if f not in dropped]
    return FaultCoverage(
        faults=tuple(faults),
        first_detection=first_detection,
        n_patterns=len(patterns),
    )
