"""Single-pattern two-valued logic simulation.

The workhorse used by path tracing, effect analysis and the test-suite
oracles.  Supports *forced values* — overriding the computed output of any
set of signals — which is exactly the "what-if analysis" the paper's
simulation-based effect analysis performs (changing the functionality of a
gate to an arbitrary Boolean function is, for a fixed input vector,
equivalent to forcing its output value).

Sequential circuits are simulated frame by frame with
:func:`simulate_sequence`; combinational diagnosis uses the full-scan view
(:mod:`repro.circuits.scan`) instead.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit
from .compiled import compile_circuit

__all__ = ["simulate", "output_values", "simulate_sequence"]


def simulate(
    circuit: Circuit,
    assignment: Mapping[str, int],
    forced: Mapping[str, int] | None = None,
    state: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Evaluate every signal of ``circuit`` under primary-input ``assignment``.

    Parameters
    ----------
    assignment:
        Value (0/1) for every primary input.  Missing inputs raise.
    forced:
        Optional signal → value overrides applied *after* gate evaluation
        (the gate's fanout sees the forced value).  Forcing a primary input
        overrides the assignment.
    state:
        Present-state value per DFF name for sequential circuits
        (default 0).

    Returns a dict with the value of every signal.

    >>> from repro.circuits.library import majority
    >>> simulate(majority(), {"a": 1, "b": 1, "c": 0})["out"]
    1
    """
    comp = compile_circuit(circuit)
    forced = forced or {}
    values: list[int] = [0] * comp.n
    for name in circuit.inputs:
        idx = comp.index[name]
        if name in forced:
            values[idx] = forced[name] & 1
        elif name in assignment:
            values[idx] = assignment[name] & 1
        else:
            raise KeyError(f"no value for primary input {name!r}")
    state = state or {}
    for idx in comp.dff_indices:
        name = comp.names[idx]
        values[idx] = state.get(name, 0) & 1
    forced_idx = {
        comp.index[name]: val & 1
        for name, val in forced.items()
        if not circuit.node(name).is_input
    }
    for idx in comp.eval_order:
        gtype = comp.gtypes[idx]
        if gtype is GateType.DFF:
            pass  # present state already loaded
        elif gtype is GateType.CONST0:
            values[idx] = 0
        elif gtype is GateType.CONST1:
            values[idx] = 1
        else:
            fin = comp.fanins[idx]
            if gtype is GateType.AND:
                v = 1
                for f in fin:
                    v &= values[f]
            elif gtype is GateType.NAND:
                v = 1
                for f in fin:
                    v &= values[f]
                v ^= 1
            elif gtype is GateType.OR:
                v = 0
                for f in fin:
                    v |= values[f]
            elif gtype is GateType.NOR:
                v = 0
                for f in fin:
                    v |= values[f]
                v ^= 1
            elif gtype is GateType.XOR:
                v = 0
                for f in fin:
                    v ^= values[f]
            elif gtype is GateType.XNOR:
                v = 0
                for f in fin:
                    v ^= values[f]
                v ^= 1
            elif gtype is GateType.NOT:
                v = values[fin[0]] ^ 1
            else:  # BUF
                v = values[fin[0]]
            values[idx] = v
        if idx in forced_idx:
            values[idx] = forced_idx[idx]
    return {name: values[comp.index[name]] for name in comp.names}


def output_values(
    circuit: Circuit,
    assignment: Mapping[str, int],
    forced: Mapping[str, int] | None = None,
    state: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Primary-output slice of :func:`simulate`."""
    values = simulate(circuit, assignment, forced=forced, state=state)
    return {out: values[out] for out in circuit.outputs}


def simulate_sequence(
    circuit: Circuit,
    vectors: Sequence[Mapping[str, int]],
    initial_state: Mapping[str, int] | None = None,
    forced_per_frame: Sequence[Mapping[str, int] | None] | None = None,
) -> list[dict[str, int]]:
    """Frame-by-frame simulation of a sequential circuit.

    Each element of ``vectors`` assigns the primary inputs of one clock
    cycle; DFFs start at ``initial_state`` (default all-0) and capture their
    fanin value at the end of each frame.  Returns the full signal valuation
    of every frame.
    """
    state = dict(initial_state or {})
    frames: list[dict[str, int]] = []
    for frame_no, vector in enumerate(vectors):
        forced = None
        if forced_per_frame is not None:
            forced = forced_per_frame[frame_no]
        values = simulate(circuit, vector, forced=forced, state=state)
        frames.append(values)
        state = {dff.name: values[dff.fanins[0]] for dff in circuit.dffs}
    return frames
