"""Codegen fault simulator: one straight-line numpy kernel per circuit.

The interpreted batched engine (:mod:`repro.sim.batchfault`) walks the
compiled netlist per sweep — a Python loop whose per-gate dispatch
(gate-type lookup, fanin tuple indexing) is interpreter overhead, and
whose ``(n_signals, rows, lanes)`` value buffer is touched far outside
the cache (the 600-gate production workload needs a ~30 MB buffer for a
~160-signal live set).  This module *compiles the netlist away* instead:
:func:`compile_kernel` emits one specialized Python function per
:class:`~repro.sim.compiled.CompiledCircuit` — a straight line of
vectorized numpy statements over uint64 lanes, one per gate, with no
dispatch left — and ``exec``-compiles it once per circuit.

Three properties make the generated kernel faster than interpreting the
same numpy ops:

* **Liveness-based slot reuse** — codegen knows each signal's last
  consumer, so signal values live in a small rotating pool of buffer
  slots instead of one slot per signal.  The working set shrinks to the
  circuit's *live width* (~4× smaller on the production workload), which
  keeps the whole sweep in cache.
* **Levelized emission with grouped fault forcing** — gates are emitted
  level by level, and the per-site stuck-at forcing of
  :func:`repro.sim.batchfault._sweep` collapses into at most four
  vectorized scatters per level (rows forced to 0/1, work/output
  region) instead of two fancy-index writes per fault site.
* **A dedicated output region** — primary outputs are computed straight
  into a separate array, so the response stack needs no gather over the
  sweep buffer afterwards.

The kernel is cached on the circuit (``circuit._cache["codegen"]``)
alongside the compiled form, so it is invalidated by exactly the same
structural mutations; fault-forcing plans and the sweep workspace are
cached on the kernel and keyed by the fault list / sweep shape.

Results are bit-identical to :mod:`repro.sim.batchfault` — same
evaluation order per gate, same left-fold over fanins, same forced-value
placement — and the cross-engine differential matrix
(``tests/sim/test_cross_engine.py``) pins the engine against all the
interpreted ones.  This is a *pure numpy* compiled path: it needs no
optional dependency, so the ≥2× speedup over ``batchfault``
(``benchmarks/bench_faultsim_engines.py`` gates the ratio) holds on
every install.

>>> from repro.circuits.library import majority
>>> from repro.faults.models import StuckAtFault
>>> sigs = fault_signatures_codegen(
...     majority(), [StuckAtFault("ab", 1)], [{"a": 0, "b": 0, "c": 0}]
... )
>>> sigs[0]["out"]
1
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit
from ..faults.collapse import full_stuck_at_universe
from ..faults.models import StuckAtFault
from .batchfault import (
    _ALL_ONES,
    _SWEEP_BUDGET,
    _fault_rows,
    _lane_mask,
    lanes_to_words,
    pack_responses,
)
from .compiled import CompiledCircuit, compile_circuit
from .deductive import FaultCoverage
from .parallel import pack_patterns_numpy

__all__ = [
    "CodegenKernel",
    "compile_kernel",
    "codegen_source",
    "codegen_output_lanes",
    "fault_signatures_codegen",
    "codegen_detected",
    "codegen_fault_coverage",
    "exact_match_faults_codegen",
]

#: Gate type -> (numpy ufunc name, invert result); mirrors
#: ``repro.sim.batchfault._GATE_OPS`` so generated code is bit-identical.
_OP_NAMES = {
    GateType.AND: ("bitwise_and", False),
    GateType.NAND: ("bitwise_and", True),
    GateType.OR: ("bitwise_or", False),
    GateType.NOR: ("bitwise_or", True),
    GateType.XOR: ("bitwise_xor", False),
    GateType.XNOR: ("bitwise_xor", True),
}

#: Cap on cached fault-forcing plans per kernel (coverage loops with
#: fault dropping produce one shrinking fault tuple per block).
_PLAN_CACHE_LIMIT = 16


def _apply_forces(entry, bflat, oflat) -> None:
    """Scatter one level's stuck-at forces into the flat value regions."""
    b0, b1, o0, o1 = entry
    if b0 is not None:
        bflat[b0] = 0
    if b1 is not None:
        bflat[b1] = _ALL_ONES
    if o0 is not None:
        oflat[o0] = 0
    if o1 is not None:
        oflat[o1] = _ALL_ONES


class CodegenKernel:
    """A compiled straight-line sweep kernel for one circuit.

    Built by :func:`compile_kernel`; holds the generated source
    (``self.source``), the executable kernel, the signal->buffer-slot
    placement used to aim fault forces, and the workspace / forcing-plan
    caches.  See the module docstring for the design.
    """

    def __init__(self, comp: CompiledCircuit) -> None:
        self.comp = comp
        # one output-region row per *unique* output signal (an output
        # listed twice shares its row; the final stack gathers per name)
        out_rows: dict[int, int] = {}
        for s in comp.output_indices:
            if s not in out_rows:
                out_rows[s] = len(out_rows)
        self.n_out_rows = len(out_rows)
        gather = [out_rows[s] for s in comp.output_indices]
        self._out_gather = (
            None if gather == list(range(len(gather))) else np.array(gather)
        )
        self._build(comp, out_rows)
        self._plans: dict[tuple[StuckAtFault, ...], tuple] = {}
        self._ws: tuple | None = None

    # ------------------------------------------------------------------
    # code generation
    # ------------------------------------------------------------------
    def _build(
        self, comp: CompiledCircuit, out_rows: dict[int, int]
    ) -> None:
        gtypes = comp.gtypes
        fanins = comp.fanins
        # Levelize: inputs at 0; source-like gates (constants, DFF — the
        # combinational engines treat DFF outputs as constant 0, so their
        # fanins are never read and may even close a sequential cycle) at
        # 1; everything else one past its deepest fanin.  Levels come out
        # dense, and sorting the topological order by level (stably)
        # keeps producers ahead of consumers.
        level = [0] * comp.n
        for idx in comp.eval_order:
            gt = gtypes[idx]
            if gt in (GateType.DFF, GateType.CONST0, GateType.CONST1):
                level[idx] = 1
                continue
            fin = fanins[idx]
            if not fin:
                raise ValueError(
                    f"gate {comp.names[idx]!r} ({gt.name}) has no fanins"
                )
            level[idx] = 1 + max(level[f] for f in fin)
        self._level = level
        n_levels = (max(level) if comp.eval_order else 0) + 1
        self.n_levels = n_levels
        by_level: list[list[int]] = [[] for _ in range(n_levels)]
        for idx in comp.eval_order:
            by_level[level[idx]].append(idx)

        def reads(idx: int) -> tuple[int, ...]:
            gt = gtypes[idx]
            if gt in _OP_NAMES:
                return fanins[idx]
            if gt in (GateType.DFF, GateType.CONST0, GateType.CONST1):
                return ()
            return fanins[idx][:1]  # NOT / BUF

        last_use: dict[int, int] = {}
        pos = 0
        for lv in range(1, n_levels):
            for idx in by_level[lv]:
                for f in reads(idx):
                    last_use[f] = pos
                pos += 1

        # slot allocation: LIFO free list; a slot freed at level L joins
        # the pool only at L+1, so the level's grouped force scatter still
        # sees the values it aims at.
        slot: dict[int, int] = {}
        place: dict[int, tuple[bool, int]] = {}  # idx -> (is_out, row)
        free: list[int] = []
        pending: list[int] = []
        next_slot = 0

        def alloc() -> int:
            nonlocal next_slot
            if free:
                return free.pop()
            s = next_slot
            next_slot += 1
            return s

        lines = ["def kern(b, out, inp, F, bflat, oflat):"]

        def bind(idx: int) -> str:
            name = f"v{idx}"
            if idx in out_rows:
                place[idx] = (True, out_rows[idx])
                lines.append(f"    {name} = out[{out_rows[idx]}]")
            else:
                s = alloc()
                slot[idx] = s
                place[idx] = (False, s)
                lines.append(f"    {name} = b[{s}]")
            return name

        def hook(lv: int) -> None:
            lines.append(f"    _f = F[{lv}]")
            lines.append("    if _f is not None: _apply(_f, bflat, oflat)")
            free.extend(pending)
            pending.clear()

        def release(idx: int, p: int) -> None:
            # the destination of a dead gate (no consumer, not an
            # output) frees immediately; read fanins free after their
            # last consumer
            if last_use.get(idx) is None and idx not in out_rows:
                pending.append(slot[idx])

        for k, idx in enumerate(comp.input_indices):
            v = bind(idx)
            lines.append(f"    {v}[...] = inp[{k}]")
            release(idx, -1)
        hook(0)

        pos = 0
        for lv in range(1, n_levels):
            for idx in by_level[lv]:
                gt = gtypes[idx]
                fin = fanins[idx]
                v = bind(idx)
                op_invert = _OP_NAMES.get(gt)
                if op_invert is not None:
                    op, invert = op_invert
                    if len(fin) == 1:
                        lines.append(f"    np.copyto({v}, v{fin[0]})")
                    else:
                        lines.append(
                            f"    np.{op}(v{fin[0]}, v{fin[1]}, out={v})"
                        )
                        for f in fin[2:]:
                            lines.append(f"    np.{op}({v}, v{f}, out={v})")
                    if invert:
                        lines.append(f"    np.invert({v}, out={v})")
                elif gt in (GateType.DFF, GateType.CONST0):
                    lines.append(f"    {v}[...] = 0")
                elif gt is GateType.CONST1:
                    lines.append(f"    {v}[...] = AO")
                elif gt is GateType.NOT:
                    lines.append(f"    np.invert(v{fin[0]}, out={v})")
                else:  # BUF
                    lines.append(f"    np.copyto({v}, v{fin[0]})")
                for f in set(reads(idx)):
                    if last_use[f] == pos and f not in out_rows:
                        pending.append(slot[f])
                release(idx, pos)
                pos += 1
            hook(lv)

        self.n_slots = next_slot
        self._place = place
        self.source = "\n".join(lines)
        namespace = {"np": np, "AO": _ALL_ONES, "_apply": _apply_forces}
        exec(compile(self.source, "<codegen-kernel>", "exec"), namespace)
        self.fn = namespace["kern"]

    # ------------------------------------------------------------------
    # per-call data: forcing plans and the sweep workspace
    # ------------------------------------------------------------------
    def _forcing_plan(self, faults: tuple[StuckAtFault, ...]) -> tuple:
        plan = self._plans.get(faults)
        if plan is not None:
            return plan
        rows = len(faults) + 1
        rows0, rows1 = _fault_rows(self.comp, faults)
        buckets: list[list] = [[None] * 4 for _ in range(self.n_levels)]
        for value, rowmap in ((0, rows0), (1, rows1)):
            for idx, rlist in rowmap.items():
                is_out, s = self._place[idx]
                which = (2 if is_out else 0) + value
                flat = [s * rows + r for r in rlist]
                entry = buckets[self._level[idx]]
                if entry[which] is None:
                    entry[which] = flat
                else:
                    entry[which].extend(flat)
        built = tuple(
            None
            if all(part is None for part in entry)
            else tuple(
                None if part is None else np.array(part, dtype=np.intp)
                for part in entry
            )
            for entry in buckets
        )
        if len(self._plans) >= _PLAN_CACHE_LIMIT:
            self._plans.clear()
        self._plans[faults] = built
        return built

    def _workspace(self, rows: int, lanes: int):
        ws = self._ws
        if ws is not None and ws[0] == rows and ws[1] == lanes:
            return ws[2:]
        b = np.empty((self.n_slots, rows, lanes), dtype=np.uint64)
        out = np.empty((self.n_out_rows, rows, lanes), dtype=np.uint64)
        self._ws = (rows, lanes, b, out, b.reshape(-1, lanes), out.reshape(-1, lanes))
        return self._ws[2:]

    # ------------------------------------------------------------------
    # sweeping
    # ------------------------------------------------------------------
    def sweep(
        self,
        faults: tuple[StuckAtFault, ...],
        input_lanes: Mapping[str, np.ndarray],
        lanes: int,
    ) -> np.ndarray:
        """Run one batched pass; returns the (cached) output region of
        shape ``(n_out_rows, rows, lanes)`` — valid until the next sweep."""
        rows = len(faults) + 1
        b, out, bflat, oflat = self._workspace(rows, lanes)
        plan = self._forcing_plan(faults)
        inp = [input_lanes[name] for name in self.comp.circuit.inputs]
        self.fn(b, out, inp, plan, bflat, oflat)
        return out

    def output_stack(self, out: np.ndarray) -> np.ndarray:
        """Copy the output region into a fresh ``(rows, n_outputs,
        lanes)`` stack in circuit output order (the
        ``batch_output_lanes`` layout)."""
        gathered = out if self._out_gather is None else out[self._out_gather]
        return np.ascontiguousarray(gathered.transpose(1, 0, 2))


def compile_kernel(circuit: Circuit) -> CodegenKernel:
    """Build (and cache) the straight-line sweep kernel for ``circuit``.

    Cached under ``circuit._cache["codegen"]``, which the circuit clears
    on every structural mutation — the same invalidation that covers the
    compiled form itself.
    """
    cached = circuit._cache.get("codegen")
    if isinstance(cached, CodegenKernel):
        return cached
    kernel = CodegenKernel(compile_circuit(circuit))
    circuit._cache["codegen"] = kernel
    return kernel


def codegen_source(circuit: Circuit) -> str:
    """The generated kernel source for ``circuit`` (debug/test aid)."""
    return compile_kernel(circuit).source


def codegen_output_lanes(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    patterns: Sequence[Mapping[str, int]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched sweep through the generated kernel.

    Drop-in for :func:`repro.sim.batchfault.batch_output_lanes`: same
    ``(fault_lanes, good_lanes, lane_mask)`` contract, bit-identical
    values, same lane-aligned blocking of pattern sets that exceed the
    sweep-buffer budget (scaled to the slot pool, which is what actually
    gets allocated here).
    """
    if not patterns:
        raise ValueError("need at least one pattern")
    kernel = compile_kernel(circuit)
    faults = tuple(faults)
    rows = len(faults) + 1
    per_lane = (kernel.n_slots + kernel.n_out_rows) * rows * 8
    block_lanes = max(1, _SWEEP_BUDGET // max(per_lane, 1))
    block = 64 * block_lanes
    stacks = []
    for start in range(0, len(patterns), block):
        chunk = patterns[start : start + block]
        input_lanes, lanes = pack_patterns_numpy(chunk, circuit.inputs)
        out = kernel.sweep(faults, input_lanes, lanes)
        stacks.append(kernel.output_stack(out))
    stack = stacks[0] if len(stacks) == 1 else np.concatenate(stacks, axis=2)
    lanes = stack.shape[2]
    return stack[:-1], stack[-1], _lane_mask(len(patterns), lanes)


def fault_signatures_codegen(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    patterns: Sequence[Mapping[str, int]],
) -> list[dict[str, int]]:
    """Per-fault output signatures through the generated kernel
    (codegen twin of :func:`repro.sim.batchfault.fault_signatures_batch`)."""
    faults = list(faults)
    if not faults:
        if not patterns:
            raise ValueError("need at least one pattern")
        return []
    fault_lanes, _, _ = codegen_output_lanes(circuit, faults, patterns)
    return lanes_to_words(fault_lanes, circuit.outputs, len(patterns))


def codegen_detected(
    circuit: Circuit,
    vector: Mapping[str, int],
    faults: Sequence[StuckAtFault] | None = None,
) -> frozenset[StuckAtFault]:
    """Faults ``vector`` detects, through the generated kernel (codegen
    twin of :func:`repro.sim.batchfault.batch_detected`, same defaults)."""
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    faults = list(faults)
    if not faults:
        return frozenset()
    fault_lanes, good, mask = codegen_output_lanes(circuit, faults, [vector])
    diff = (fault_lanes ^ good) & mask
    hit = diff.reshape(len(faults), -1).any(axis=1)
    return frozenset(f for f, h in zip(faults, hit) if h)


def codegen_fault_coverage(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
    drop_detected: bool = True,
    block_patterns: int = 256,
) -> FaultCoverage:
    """Fault coverage with dropping, through the generated kernel.

    Codegen twin of :func:`repro.sim.batchfault.batch_fault_coverage`:
    identical blocking, dropping and exact ``first_detection`` indices —
    only the sweep underneath is the compiled straight-line kernel.
    """
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    faults = list(faults)
    patterns = list(patterns)
    first_detection: dict[StuckAtFault, int] = {}
    if faults and patterns:
        block_patterns = max(64, block_patterns)
        active = faults
        for start in range(0, len(patterns), block_patterns):
            if not active:
                break
            block = patterns[start : start + block_patterns]
            fault_lanes, good, mask = codegen_output_lanes(
                circuit, active, block
            )
            diff = np.bitwise_or.reduce((fault_lanes ^ good) & mask, axis=1)
            hit = diff.any(axis=1)
            # vectorized first_set_bit: lowest set lane, then the lowest
            # set bit of that word via bitwise_count(lowbit - 1)
            hit_rows = np.flatnonzero(hit)
            if hit_rows.size:
                d = diff[hit_rows]
                lane = np.argmax(d != 0, axis=1)
                w = d[np.arange(hit_rows.size), lane]
                low = w & (~w + np.uint64(1))
                first = 64 * lane + np.bitwise_count(low - np.uint64(1))
                for row, pat in zip(hit_rows.tolist(), first.tolist()):
                    fault = active[row]
                    if fault not in first_detection:  # re-hits w/o dropping
                        first_detection[fault] = start + pat
            if drop_detected:
                active = [f for f, h in zip(active, hit) if not h]
    return FaultCoverage(
        faults=tuple(faults),
        first_detection=first_detection,
        n_patterns=len(patterns),
    )


def exact_match_faults_codegen(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    observed: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
    block_patterns: int = 256,
) -> list[StuckAtFault]:
    """Exact-signature diagnosis through the generated kernel (codegen
    twin of :func:`repro.sim.batchfault.exact_match_faults`)."""
    if len(patterns) != len(observed):
        raise ValueError("patterns and observed responses must align")
    if not patterns:
        raise ValueError("need at least one pattern")
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    active = list(faults)
    block_patterns = max(64, block_patterns)
    for start in range(0, len(patterns), block_patterns):
        if not active:
            break
        block = patterns[start : start + block_patterns]
        fault_lanes, _, mask = codegen_output_lanes(circuit, active, block)
        obs = pack_responses(
            circuit.outputs, observed[start : start + block_patterns]
        )
        diff = (fault_lanes ^ obs) & mask
        clean = ~diff.reshape(len(active), -1).any(axis=1)
        active = [f for f, ok in zip(active, clean) if ok]
    return active
