"""Three-valued (0/1/X) simulation.

Backs the X-list style diagnosis of Boppana et al. (paper ref [5]): inject
``X`` at suspect gates and check by forward implication whether the unknown
can reach — and therefore possibly correct — the erroneous outputs.  An
``X`` that does *not* reach the erroneous output proves the suspect cannot
rectify that test, which is a cheap necessary condition used for pruning.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..circuits.gates import GateType, X, eval_gate_ternary
from ..circuits.netlist import Circuit
from .compiled import compile_circuit

__all__ = ["X", "simulate_ternary", "x_reaches", "x_propagation_set"]


def simulate_ternary(
    circuit: Circuit,
    assignment: Mapping[str, int],
    forced: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Evaluate every signal over {0, 1, X}.

    ``assignment`` may assign 0, 1 or X to each primary input (missing
    inputs default to X rather than raising — partial vectors are the
    normal case in X-analysis).  ``forced`` overrides signal values after
    evaluation, typically injecting X at suspect gates.

    >>> from repro.circuits.library import majority
    >>> simulate_ternary(majority(), {"a": 1, "b": 1})["out"]
    1
    """
    comp = compile_circuit(circuit)
    forced = forced or {}
    values: list[int] = [X] * comp.n
    for name in circuit.inputs:
        idx = comp.index[name]
        if name in forced:
            values[idx] = forced[name]
        else:
            values[idx] = assignment.get(name, X)
    forced_idx = {
        comp.index[name]: val
        for name, val in forced.items()
        if not circuit.node(name).is_input
    }
    for idx in comp.eval_order:
        gtype = comp.gtypes[idx]
        if gtype is GateType.DFF:
            v = X
        else:
            fin = comp.fanins[idx]
            v = eval_gate_ternary(gtype, (values[f] for f in fin))
        values[idx] = forced_idx.get(idx, v)
    return {name: values[comp.index[name]] for name in comp.names}


def x_reaches(
    circuit: Circuit,
    assignment: Mapping[str, int],
    inject_at: Iterable[str],
    output: str,
) -> bool:
    """True if injecting X at ``inject_at`` makes ``output`` unknown.

    This is the X-list necessary condition: only if the X reaches the
    erroneous output can changing the injected gates' functions possibly
    change (and hence correct) that output under this test.
    """
    forced = {name: X for name in inject_at}
    values = simulate_ternary(circuit, assignment, forced=forced)
    return values[output] == X


def x_propagation_set(
    circuit: Circuit, assignment: Mapping[str, int], inject_at: str
) -> set[str]:
    """All signals that become X when ``inject_at`` is forced to X."""
    baseline = simulate_ternary(circuit, assignment)
    with_x = simulate_ternary(circuit, assignment, forced={inject_at: X})
    return {
        name
        for name in circuit.nodes
        if with_x[name] == X and baseline[name] != X
    }
