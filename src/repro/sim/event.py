"""Event-driven incremental simulation.

The advanced simulation-based diagnosis loop (paper §2.2) repeatedly asks
"what happens at the outputs if this gate's value is forced to v?" — a
workload where full re-simulation wastes time re-evaluating untouched logic.
:class:`EventSimulator` keeps the current valuation and propagates only the
fanout cone of whatever changed, processing gates in level order so each
gate is evaluated at most once per update.

This is the scalar (one-pattern) engine; when the same what-if question
is asked for many patterns at once — every failing test of a diagnosis
run, say — use its lane port
:class:`repro.sim.batchevent.BatchEventSimulator`, which applies one
force across uint64 pattern words with the same cone-only propagation.
"""

from __future__ import annotations

import heapq
from typing import Mapping

from ..circuits.gates import GateType, eval_gate
from ..circuits.netlist import Circuit
from ..circuits.structure import levels
from .compiled import compile_circuit

__all__ = ["EventSimulator"]


class EventSimulator:
    """Incremental two-valued simulator with forced-value support.

    Example
    -------
    >>> from repro.circuits.library import majority
    >>> sim = EventSimulator(majority(), {"a": 1, "b": 1, "c": 0})
    >>> sim.value("out")
    1
    >>> changed = sim.force("ab", 0)   # what-if: AND(a,b) stuck at 0
    >>> sim.value("out")
    0
    >>> _ = sim.unforce("ab")
    >>> sim.value("out")
    1
    """

    def __init__(self, circuit: Circuit, assignment: Mapping[str, int]) -> None:
        self._circuit = circuit
        self._comp = compile_circuit(circuit)
        comp = self._comp
        level_by_name = levels(circuit)
        self._level = [level_by_name[name] for name in comp.names]
        self._fanouts: list[list[int]] = [[] for _ in range(comp.n)]
        for idx in range(comp.n):
            for f in comp.fanins[idx]:
                self._fanouts[f].append(idx)
        self._values: list[int] = [0] * comp.n
        self._forced: dict[int, int] = {}
        self._assignment = {name: 0 for name in circuit.inputs}
        self.set_inputs(assignment, _initial=True)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def value(self, name: str) -> int:
        return self._values[self._comp.index[name]]

    def values(self) -> dict[str, int]:
        comp = self._comp
        return {name: self._values[comp.index[name]] for name in comp.names}

    def output_values(self) -> dict[str, int]:
        comp = self._comp
        return {
            comp.names[idx]: self._values[idx] for idx in comp.output_indices
        }

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def set_inputs(
        self, assignment: Mapping[str, int], _initial: bool = False
    ) -> set[str]:
        """Update primary-input values; returns the names of changed signals."""
        comp = self._comp
        dirty: list[int] = []
        for name, val in assignment.items():
            idx = comp.index[name]
            if comp.gtypes[idx] is not GateType.INPUT:
                raise ValueError(f"{name!r} is not a primary input")
            self._assignment[name] = val & 1
            effective = self._forced.get(idx, val & 1)
            if _initial or self._values[idx] != effective:
                self._values[idx] = effective
                dirty.append(idx)
        if _initial:
            dirty = list(range(comp.n))
        return self._propagate(dirty, full=_initial)

    def force(self, name: str, value: int) -> set[str]:
        """Force signal ``name`` to ``value``; returns changed signal names."""
        idx = self._comp.index[name]
        self._forced[idx] = value & 1
        if self._values[idx] == value & 1:
            return set()
        self._values[idx] = value & 1
        return self._propagate([idx])

    def unforce(self, name: str) -> set[str]:
        """Remove a forced value, restoring normal evaluation."""
        idx = self._comp.index[name]
        self._forced.pop(idx, None)
        fresh = self._evaluate(idx)
        if fresh == self._values[idx]:
            return set()
        self._values[idx] = fresh
        return self._propagate([idx])

    def clear_forces(self) -> set[str]:
        """Drop all forced values at once."""
        forced = list(self._forced)
        self._forced.clear()
        dirty: list[int] = []
        for idx in forced:
            fresh = self._evaluate(idx)
            if fresh != self._values[idx]:
                self._values[idx] = fresh
                dirty.append(idx)
        return self._propagate(dirty)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _evaluate(self, idx: int) -> int:
        comp = self._comp
        gtype = comp.gtypes[idx]
        if gtype is GateType.INPUT:
            return self._assignment[comp.names[idx]]
        if gtype is GateType.DFF:
            return 0
        if gtype is GateType.CONST0:
            return 0
        if gtype is GateType.CONST1:
            return 1
        return eval_gate(gtype, [self._values[f] for f in comp.fanins[idx]])

    def _propagate(self, dirty: list[int], full: bool = False) -> set[str]:
        comp = self._comp
        heap: list[tuple[int, int]] = []
        queued = set()
        changed: set[str] = set()

        def schedule(idx: int) -> None:
            if idx not in queued:
                queued.add(idx)
                heapq.heappush(heap, (self._level[idx], idx))

        for idx in dirty:
            changed.add(comp.names[idx])
            for fo in self._fanouts[idx]:
                schedule(fo)
        if full:
            for idx in comp.eval_order:
                schedule(idx)
        while heap:
            _, idx = heapq.heappop(heap)
            queued.discard(idx)
            if idx in self._forced:
                continue
            fresh = self._evaluate(idx)
            if fresh != self._values[idx] or full:
                if fresh != self._values[idx]:
                    changed.add(comp.names[idx])
                self._values[idx] = fresh
                for fo in self._fanouts[idx]:
                    schedule(fo)
        return changed
