"""Compiled (index-based) circuit form shared by the simulators.

Name-keyed dictionaries are convenient for construction and diagnosis
book-keeping but slow to simulate.  :class:`CompiledCircuit` freezes a
:class:`~repro.circuits.netlist.Circuit` into parallel arrays — names,
gate-type codes, fanin index tuples, topological evaluation order — that the
single-pattern, bit-parallel and event-driven engines all share.

The compiled form is cached on the circuit and invalidated automatically
when the circuit mutates (the circuit's internal cache is cleared on every
structural change).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit

__all__ = ["CompiledCircuit", "compile_circuit"]


@dataclass(frozen=True)
class CompiledCircuit:
    """Immutable index-based view of a circuit.

    ``eval_order`` lists node indices in topological order *excluding*
    sources (inputs, constants are included since they still need a value,
    DFF handling is the engine's business).  ``fanins`` is parallel to
    ``names``.
    """

    circuit: Circuit
    names: tuple[str, ...]
    index: dict[str, int]
    gtypes: tuple[GateType, ...]
    fanins: tuple[tuple[int, ...], ...]
    eval_order: tuple[int, ...]
    input_indices: tuple[int, ...]
    output_indices: tuple[int, ...]
    dff_indices: tuple[int, ...]

    @property
    def n(self) -> int:
        return len(self.names)


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile (and cache) ``circuit`` into array form."""
    cached = circuit._cache.get("compiled")
    if isinstance(cached, CompiledCircuit):
        return cached
    topo = circuit.topological_order()
    names = tuple(topo)
    index = {name: i for i, name in enumerate(names)}
    gtypes = tuple(circuit.node(name).gtype for name in names)
    fanins = tuple(
        tuple(index[f] for f in circuit.node(name).fanins) for name in names
    )
    eval_order = tuple(
        i
        for i, name in enumerate(names)
        if gtypes[i] is not GateType.INPUT
    )
    compiled = CompiledCircuit(
        circuit=circuit,
        names=names,
        index=index,
        gtypes=gtypes,
        fanins=fanins,
        eval_order=eval_order,
        input_indices=tuple(index[name] for name in circuit.inputs),
        output_indices=tuple(index[name] for name in circuit.outputs),
        dff_indices=tuple(
            i for i, t in enumerate(gtypes) if t is GateType.DFF
        ),
    )
    circuit._cache["compiled"] = compiled
    return compiled
