"""Fault/error simulation: comparing an implementation against its spec.

Used by the workload pipeline to find *failing* tests (vectors whose
response differs from the golden circuit) and by validity checking to
confirm that a proposed correction rectifies every test.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..circuits.netlist import Circuit
from .logicsim import output_values
from .parallel import pack_patterns, simulate_words

__all__ = [
    "response",
    "failing_outputs",
    "fault_table",
    "detects",
    "stuck_at_response",
]


def response(circuit: Circuit, vector: Mapping[str, int]) -> tuple[int, ...]:
    """Output response of ``circuit`` to ``vector`` in output order."""
    values = output_values(circuit, vector)
    return tuple(values[o] for o in circuit.outputs)


def failing_outputs(
    golden: Circuit, faulty: Circuit, vector: Mapping[str, int]
) -> list[str]:
    """Outputs where ``faulty`` disagrees with ``golden`` under ``vector``.

    Both circuits must share input and output names (error injection never
    renames signals).
    """
    good = output_values(golden, vector)
    bad = output_values(faulty, vector)
    return [o for o in golden.outputs if good[o] != bad[o]]


def fault_table(
    golden: Circuit, faulty: Circuit, patterns: Sequence[Mapping[str, int]]
) -> list[list[str]]:
    """Per-pattern failing outputs, computed bit-parallel.

    Returns one list of failing output names per pattern; empty list means
    the pattern does not detect the error.
    """
    n = len(patterns)
    if n == 0:
        return []
    words = pack_patterns(patterns, golden.inputs)
    good = simulate_words(golden, words, n)
    bad = simulate_words(faulty, words, n)
    table: list[list[str]] = [[] for _ in range(n)]
    for out in golden.outputs:
        diff = good[out] ^ bad[out]
        while diff:
            j = (diff & -diff).bit_length() - 1
            table[j].append(out)
            diff &= diff - 1
    return table


def detects(
    golden: Circuit, faulty: Circuit, vector: Mapping[str, int]
) -> bool:
    """True if ``vector`` exposes any output mismatch."""
    return bool(failing_outputs(golden, faulty, vector))


def stuck_at_response(
    circuit: Circuit, vector: Mapping[str, int], signal: str, value: int
) -> tuple[int, ...]:
    """Output response with ``signal`` stuck at ``value`` (classic s-a-v)."""
    values = output_values(circuit, vector, forced={signal: value})
    return tuple(values[o] for o in circuit.outputs)
