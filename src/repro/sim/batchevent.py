"""Batched event-driven simulation on uint64 pattern lanes.

:class:`repro.sim.event.EventSimulator` answers "what happens at the
outputs if this signal is forced to v?" incrementally for *one* pattern;
the advanced diagnosis loops ask that question for *every failing test at
once*.  :class:`BatchEventSimulator` is the lane port: the current
valuation is one ``(n_signals, lanes)`` uint64 matrix — bit ``b`` of lane
``l`` is pattern ``64*l + b`` — and a force/unforce event re-evaluates
only the fanout cone of the changed signal, in level order, with one
vectorized gate evaluation per touched gate.

Forcing a whole-word value (a per-pattern lane array) is supported, which
is what effect analysis needs: "flip this gate in every failing test" is
``force(g, ~base_word)``.  Forcing the constant 0/1 across all lanes is a
stuck-at fault, so a force/read/unforce cycle per fault reproduces the
fault-parallel sweep of :mod:`repro.sim.batchfault` bit-for-bit — the
property suite drives random force/unforce sequences against from-scratch
sweeps to pin that (stale-cone bugs die here).

Engine economics: :func:`repro.sim.batchfault.batch_fault_coverage` wins
when every fault must be swept anyway (it amortizes the netlist walk over
the whole batch); the event engine wins when changes arrive one at a time
and cones are small — the interactive what-if loop of
:mod:`repro.diagnosis.advanced_sim` and candidate screening over a
narrowed pool.
"""

from __future__ import annotations

import heapq
from typing import Mapping, Sequence

import numpy as np

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit
from ..circuits.structure import levels
from ..faults.collapse import full_stuck_at_universe
from ..faults.models import StuckAtFault
from .batchfault import _ALL_ONES, _GATE_OPS, _lane_mask, first_set_bit
from .compiled import compile_circuit
from .deductive import FaultCoverage
from .parallel import pack_patterns_numpy

__all__ = [
    "BatchEventSimulator",
    "event_detected",
    "event_fault_coverage",
]


class BatchEventSimulator:
    """Incremental bit-parallel simulator over uint64 pattern lanes.

    Example
    -------
    >>> from repro.circuits.library import majority
    >>> sim = BatchEventSimulator(
    ...     majority(),
    ...     [{"a": 1, "b": 1, "c": 0}, {"a": 0, "b": 0, "c": 1}],
    ... )
    >>> sim.value_word("out")
    1
    >>> _ = sim.force("ab", 0)      # what-if: AND(a,b) stuck at 0
    >>> sim.value_word("out")
    0
    >>> _ = sim.unforce("ab")
    >>> sim.value_word("out")
    1
    """

    def __init__(
        self, circuit: Circuit, patterns: Sequence[Mapping[str, int]]
    ) -> None:
        if not patterns:
            raise ValueError("need at least one pattern")
        self._circuit = circuit
        self._comp = compile_circuit(circuit)
        comp = self._comp
        input_lanes, lanes = pack_patterns_numpy(patterns, circuit.inputs)
        self._lanes = lanes
        self._n_patterns = len(patterns)
        self._mask = _lane_mask(len(patterns), lanes)
        self._word_mask = (1 << len(patterns)) - 1
        level_by_name = levels(circuit)
        self._level = [level_by_name[name] for name in comp.names]
        self._fanouts: list[list[int]] = [[] for _ in range(comp.n)]
        for idx in range(comp.n):
            for f in comp.fanins[idx]:
                self._fanouts[f].append(idx)
        self._values = np.zeros((comp.n, lanes), dtype=np.uint64)
        self._inputs = np.zeros((comp.n, lanes), dtype=np.uint64)
        for name in circuit.inputs:
            idx = comp.index[name]
            self._inputs[idx] = input_lanes[name]
            self._values[idx] = input_lanes[name]
        self._forced: dict[int, np.ndarray] = {}
        for idx in comp.eval_order:
            self._values[idx] = self._evaluate(idx)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_patterns(self) -> int:
        return self._n_patterns

    def value_lanes(self, name: str) -> np.ndarray:
        """Current lane array of ``name`` (a copy; padding bits cleared)."""
        return self._values[self._comp.index[name]] & self._mask

    def value_word(self, name: str) -> int:
        """Current value of ``name`` as one int word (bit j = pattern j)."""
        return self._word(self._comp.index[name])

    def values_words(self) -> dict[str, int]:
        """``{signal: word}`` for every signal — the
        :func:`repro.sim.parallel.simulate_words` result format."""
        return {
            name: self._word(idx)
            for idx, name in enumerate(self._comp.names)
        }

    def output_lanes(self) -> np.ndarray:
        """``(n_outputs, lanes)`` array of the primary outputs (a copy,
        padding cleared), in circuit output order."""
        return self._values[list(self._comp.output_indices)] & self._mask

    def output_words(self) -> dict[str, int]:
        """``{output: word}`` — the serial engines' signature format."""
        comp = self._comp
        return {comp.names[idx]: self._word(idx) for idx in comp.output_indices}

    def pattern_values(self, j: int) -> dict[str, int]:
        """Scalar valuation of pattern ``j`` — the
        :func:`repro.sim.logicsim.simulate` result format."""
        if not 0 <= j < self._n_patterns:
            raise IndexError(f"pattern index {j} out of range")
        lane, bit = divmod(j, 64)
        col = (self._values[:, lane] >> np.uint64(bit)) & np.uint64(1)
        return dict(zip(self._comp.names, col.tolist()))

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def force(self, name: str, value) -> set[str]:
        """Force ``name``; returns the names of changed signals.

        ``value`` may be an ``int`` 0/1 (broadcast to every pattern — the
        stuck-at convention of :class:`~repro.sim.event.EventSimulator`)
        or a uint64 lane array giving a per-pattern word (the what-if
        convention: ``force(g, ~base)`` flips ``g`` everywhere).
        """
        idx = self._comp.index[name]
        lanes = self._coerce(value)
        self._forced[idx] = lanes
        if np.array_equal(self._values[idx], lanes):
            return set()
        self._values[idx] = lanes
        return self._propagate([idx])

    def unforce(self, name: str) -> set[str]:
        """Remove a forced value, restoring normal evaluation."""
        idx = self._comp.index[name]
        self._forced.pop(idx, None)
        fresh = self._evaluate(idx)
        if np.array_equal(fresh, self._values[idx]):
            return set()
        self._values[idx] = fresh
        return self._propagate([idx])

    def clear_forces(self) -> set[str]:
        """Drop all forced values at once."""
        forced = list(self._forced)
        self._forced.clear()
        dirty: list[int] = []
        for idx in forced:
            fresh = self._evaluate(idx)
            if not np.array_equal(fresh, self._values[idx]):
                self._values[idx] = fresh
                dirty.append(idx)
        return self._propagate(dirty)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _word(self, idx: int) -> int:
        raw = np.ascontiguousarray(self._values[idx]).astype("<u8", copy=False)
        return int.from_bytes(raw.tobytes(), "little") & self._word_mask

    def _coerce(self, value) -> np.ndarray:
        if isinstance(value, (int, np.integer)):
            return np.full(
                self._lanes,
                _ALL_ONES if (int(value) & 1) else np.uint64(0),
            )
        arr = np.asarray(value, dtype=np.uint64)
        if arr.shape != (self._lanes,):
            raise ValueError(
                f"forced lane array must have shape ({self._lanes},), "
                f"got {arr.shape}"
            )
        return arr.copy()

    def _evaluate(self, idx: int) -> np.ndarray:
        comp = self._comp
        gtype = comp.gtypes[idx]
        fin = comp.fanins[idx]
        values = self._values
        if gtype is GateType.INPUT:
            return self._inputs[idx]
        if gtype in (GateType.DFF, GateType.CONST0):
            return np.zeros(self._lanes, dtype=np.uint64)
        if gtype is GateType.CONST1:
            return np.full(self._lanes, _ALL_ONES)
        if gtype is GateType.NOT:
            return ~values[fin[0]]
        op_invert = _GATE_OPS.get(gtype)
        if op_invert is None:  # BUF
            return values[fin[0]].copy()
        op, invert = op_invert
        if len(fin) == 1:
            v = values[fin[0]].copy()
        else:
            v = op(values[fin[0]], values[fin[1]])
            for f in fin[2:]:
                op(v, values[f], out=v)
        return ~v if invert else v

    def _propagate(self, dirty: list[int]) -> set[str]:
        comp = self._comp
        heap: list[tuple[int, int]] = []
        queued: set[int] = set()
        changed: set[str] = set()

        def schedule(idx: int) -> None:
            if idx not in queued:
                queued.add(idx)
                heapq.heappush(heap, (self._level[idx], idx))

        for idx in dirty:
            changed.add(comp.names[idx])
            for fo in self._fanouts[idx]:
                schedule(fo)
        while heap:
            _, idx = heapq.heappop(heap)
            queued.discard(idx)
            if idx in self._forced:
                continue
            fresh = self._evaluate(idx)
            if not np.array_equal(fresh, self._values[idx]):
                changed.add(comp.names[idx])
                self._values[idx] = fresh
                for fo in self._fanouts[idx]:
                    schedule(fo)
        return changed


def event_detected(
    circuit: Circuit,
    vector: Mapping[str, int],
    faults: Sequence[StuckAtFault] | None = None,
) -> frozenset[StuckAtFault]:
    """Faults that ``vector`` detects, via force/unforce cone updates.

    Batched-event drop-in for :func:`repro.sim.deductive.deductive_detected`
    and :func:`repro.sim.batchfault.batch_detected`: identical results
    (differential tests assert this); each fault costs one force and one
    unforce, touching only its fanout cone.
    """
    return frozenset(
        event_fault_coverage(circuit, [vector], faults).detected
    )


def event_fault_coverage(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
    drop_detected: bool = True,
) -> FaultCoverage:
    """Fault coverage via one force/unforce cycle per fault.

    The incremental/event flavour of
    :func:`repro.sim.batchfault.batch_fault_coverage` (bit-identical
    ``first_detection``): the good machine is simulated once, then every
    fault is a force of its site across all pattern lanes, an output
    comparison, and an unforce — so only the fault's fanout cone is ever
    re-evaluated.  ``drop_detected`` is accepted for signature parity but
    has no effect (there is no shared work to drop).
    """
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    faults = list(faults)
    first_detection: dict[StuckAtFault, int] = {}
    if faults and patterns:
        comp = compile_circuit(circuit)
        for fault in faults:
            if fault.signal not in comp.index:
                raise ValueError(
                    f"fault site {fault.signal!r} is not a signal of "
                    f"circuit {circuit.name!r}"
                )
        sim = BatchEventSimulator(circuit, patterns)
        good = sim.output_lanes()
        for fault in faults:
            sim.force(fault.signal, fault.value)
            diff = np.bitwise_or.reduce(sim.output_lanes() ^ good, axis=0)
            sim.unforce(fault.signal)
            if fault in first_detection:
                continue
            first = first_set_bit(diff)
            if first is not None:
                first_detection[fault] = first
    return FaultCoverage(
        faults=tuple(faults),
        first_detection=first_detection,
        n_patterns=len(patterns),
    )
