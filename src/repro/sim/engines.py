"""Fault-simulation engine registry with availability reporting.

The SAT layer's :mod:`repro.sat.backends` registry taught the CLI to
*list* optional backends that failed to import (with the reason) and to
*degrade* selection instead of raising.  This module is the simulation
twin: one place that names the fault-simulation engines the
``engine=``/``sim_engine=`` parameters accept (``FaultDictionary``,
:func:`repro.diagnosis.stuckat.diagnose_stuck_at`,
:func:`repro.testgen.atpg.generate_tests`), with a one-line summary per
engine, an unavailable-with-reason table for optional engines whose
dependency is missing, and a fallback map consulted by
:func:`resolve_engine` so selecting an unavailable engine degrades to
its interpreted twin instead of raising.

Every engine that ships in-tree is pure numpy/Python and therefore
always available — including ``codegen``, whose generated kernels need
no optional dependency — so :data:`UNAVAILABLE_ENGINES` is empty on a
stock install; the mechanism exists so compiled variants gated on
optional dependencies surface in ``python -m repro engines`` exactly
like ``arena-jit`` does in ``python -m repro backends``.
"""

from __future__ import annotations

__all__ = [
    "SIM_ENGINES",
    "UNAVAILABLE_ENGINES",
    "ENGINE_FALLBACKS",
    "register_engine",
    "available_engines",
    "unavailable_engines",
    "engine_summary",
    "resolve_engine",
]

#: Engine name -> one-line summary (the ``python -m repro engines`` rows).
SIM_ENGINES: dict[str, str] = {}

#: Optional engines that could not register -> the reason (import error).
UNAVAILABLE_ENGINES: dict[str, str] = {}

#: Optional engine -> the always-available engine it degrades to when
#: its dependency is missing (mirrors ``BACKEND_FALLBACKS``).
ENGINE_FALLBACKS: dict[str, str] = {}

#: The engine ``"auto"`` resolves to.
DEFAULT_ENGINE = "batch"


def register_engine(name: str, summary: str) -> None:
    """Register an engine name for listing/selection."""
    if name in SIM_ENGINES:
        raise ValueError(f"sim engine {name!r} registered twice")
    SIM_ENGINES[name] = summary


def available_engines() -> tuple[str, ...]:
    """Registered engine names, sorted, the ``auto`` default first."""
    names = sorted(SIM_ENGINES)
    names.remove(DEFAULT_ENGINE)
    return (DEFAULT_ENGINE, *names)


def unavailable_engines() -> dict[str, str]:
    """Optional engines that could not register -> why (import error)."""
    return dict(UNAVAILABLE_ENGINES)


def engine_summary(name: str) -> str:
    """The registry's one-line summary for ``name``."""
    return SIM_ENGINES[resolve_engine(name)]


def resolve_engine(name: str | None) -> str:
    """Canonical registered engine name (None / ``"auto"`` = default).

    An *optional* engine whose dependency is missing resolves to its
    :data:`ENGINE_FALLBACKS` entry instead of raising; truly unknown
    names raise with the list of choices.
    """
    resolved = DEFAULT_ENGINE if name in (None, "auto") else name
    if resolved not in SIM_ENGINES:
        fallback = ENGINE_FALLBACKS.get(resolved)
        if fallback is not None and fallback in SIM_ENGINES:
            return fallback
        raise ValueError(
            f"unknown sim engine {resolved!r}; choose from "
            f"{available_engines()}"
        )
    return resolved


register_engine(
    "serial",
    "one forced-value simulation pass per fault (the oracle)",
)
register_engine(
    "batch",
    "fault-parallel x pattern-parallel numpy sweep (default)",
)
register_engine(
    "codegen",
    "per-circuit generated straight-line numpy kernel (opt-in fast "
    "path; one kernel build per circuit, then ~2x the batch sweep)",
)
register_engine(
    "deductive",
    "pure-Python deductive fault-list propagation (second oracle)",
)
register_engine(
    "deductive-numpy",
    "deductive propagation on uint64 bitset matrices",
)
register_engine(
    "event",
    "batched event simulation: force/unforce fanout-cone updates",
)
