"""Simulation substrate: scalar, bit-parallel, ternary, event-driven engines.

All engines agree on two-valued semantics (asserted by cross-engine property
tests) and support *forced values* — the primitive behind the paper's
simulation-based effect analysis.  :mod:`repro.sim.deductive` adds the
classic deductive fault simulator (one pass per pattern, all faults at
once) used by the production-test ATPG flow.
"""

from .compiled import CompiledCircuit, compile_circuit
from .logicsim import simulate, output_values, simulate_sequence
from .parallel import (
    pack_patterns,
    unpack_word,
    simulate_words,
    simulate_patterns,
    simulate_words_numpy,
)
from .threevalued import simulate_ternary, x_reaches, x_propagation_set
from .event import EventSimulator
from .faultsim import (
    response,
    failing_outputs,
    fault_table,
    detects,
    stuck_at_response,
)
from .deductive import (
    deductive_fault_lists,
    deductive_detected,
    FaultCoverage,
    deductive_coverage,
)

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "simulate",
    "output_values",
    "simulate_sequence",
    "pack_patterns",
    "unpack_word",
    "simulate_words",
    "simulate_patterns",
    "simulate_words_numpy",
    "simulate_ternary",
    "x_reaches",
    "x_propagation_set",
    "EventSimulator",
    "response",
    "failing_outputs",
    "fault_table",
    "detects",
    "stuck_at_response",
    "deductive_fault_lists",
    "deductive_detected",
    "FaultCoverage",
    "deductive_coverage",
]
