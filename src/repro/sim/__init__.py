"""Simulation substrate: scalar, bit-parallel, ternary, event-driven and
fault-batched engines.

All engines agree on two-valued semantics (asserted by cross-engine property
tests) and support *forced values* — the primitive behind the paper's
simulation-based effect analysis.

Engine selection guide
----------------------

* :func:`simulate` / :func:`output_values` — one scalar pass, one pattern;
  the ground-truth oracle everything else is tested against.
* :func:`simulate_words` — bit-parallel over patterns on Python's
  unbounded ints (no 64-pattern limit); best for up to a few hundred
  patterns on one circuit configuration.
* :func:`simulate_words_numpy` — uint64-lane vectorization of the same
  idea, for thousands of patterns.
* :mod:`repro.sim.batchfault` (:func:`fault_signatures_batch`,
  :func:`batch_detected`, :func:`batch_fault_coverage`,
  :func:`exact_match_faults`) — fault-parallel × pattern-parallel: F
  stuck-at faults stacked along a numpy batch axis and swept in one
  vectorized pass, with fault dropping at pattern-block granularity.
  This is the fast path behind ``FaultDictionary``, ``diagnose_stuck_at``
  and the ATPG coverage loop (their ``engine`` / ``sim_engine``
  parameters select it; the serial engines remain the equivalence
  oracle).
* :func:`deductive_fault_lists` — the classic deductive fault simulator
  (one pass per pattern, all faults at once); pure-Python set propagation,
  kept as a second independent fault-simulation oracle.
* :mod:`repro.sim.deductive_numpy` (:func:`deductive_fault_lists_numpy`,
  :func:`deductive_detected_numpy`, :func:`deductive_coverage_numpy`) —
  the vectorized port of the deductive engine: fault lists are uint64
  bitset matrices and whole pattern blocks propagate in one netlist
  pass.  The engine of choice when per-signal fault *lists* (not just
  output detections) are needed at ATPG scale; ≥5× the pure-Python
  propagator on the 600-gate workload
  (``benchmarks/bench_faultsim_engines.py`` records the factor).
  Single-pattern calls (the ATPG drop query: one vector × many faults)
  dispatch to a dedicated 1-lane big-int path, so the drop loop no
  longer falls back to the pure-Python propagator for that shape.
* :class:`EventSimulator` — incremental re-evaluation for long sequences
  of small changes (interactive what-if analysis, one pattern at a time).
* :class:`BatchEventSimulator` (:func:`event_detected`,
  :func:`event_fault_coverage`) — the lane port of the event engine:
  force/unforce whole uint64 pattern words at once, re-evaluating only
  the fanout cone.  Backs the what-if loop of
  :mod:`repro.diagnosis.advanced_sim` and the ``engine="event"``
  candidate screen of :mod:`repro.diagnosis.validity`.
* :mod:`repro.sim.codegen` (:func:`compile_kernel`,
  :func:`codegen_detected`, :func:`codegen_fault_coverage`,
  :func:`exact_match_faults_codegen`) — the compiled floor of the
  batchfault sweep: one generated straight-line numpy kernel per
  circuit (levelized fused ops, liveness-based slot reuse, grouped
  fault forcing), cached on the circuit and invalidated with its
  compiled form.  Pays one kernel build (~tens of ms) on first use,
  then sweeps ~2× faster than ``batchfault``
  (``benchmarks/bench_faultsim_engines.py`` gates the ratio).  The
  engine of choice when many sweeps hit the *same* circuit —
  ``FaultDictionary(engine="codegen")`` / ATPG ``sim_engine="codegen"``
  opt in; bit-identical to every interpreted engine.  Pure numpy: no
  optional dependency.

Picking an engine: scalar/ternary for single oracles, ``simulate_words``
(or its numpy twin) for many patterns on a *fixed* circuit configuration,
batchfault when many faults must be swept anyway, codegen when those
sweeps repeat on one circuit (dictionary builds, ATPG drop loops),
deductive/-numpy when the per-signal fault lists themselves matter, and
the event engines when changes arrive one at a time and fanout cones are
small.  All fault engines are bit-identical —
``tests/sim/test_cross_engine.py`` holds the full differential matrix —
and :mod:`repro.sim.engines` lists them with availability (the
simulation twin of ``python -m repro backends``).
"""

from .compiled import CompiledCircuit, compile_circuit
from .logicsim import simulate, output_values, simulate_sequence
from .parallel import (
    pack_patterns,
    pack_patterns_numpy,
    unpack_word,
    simulate_words,
    simulate_patterns,
    simulate_words_numpy,
)
from .threevalued import simulate_ternary, x_reaches, x_propagation_set
from .event import EventSimulator
from .faultsim import (
    response,
    failing_outputs,
    fault_table,
    detects,
    stuck_at_response,
)
from .deductive import (
    deductive_fault_lists,
    deductive_detected,
    FaultCoverage,
    deductive_coverage,
)
from .deductive_numpy import (
    deductive_fault_lists_numpy,
    deductive_detected_numpy,
    deductive_detected_many,
    deductive_coverage_numpy,
)
from .batchevent import (
    BatchEventSimulator,
    event_detected,
    event_fault_coverage,
)
from .batchfault import (
    fault_signatures_batch,
    lanes_to_words,
    pack_responses,
    popcount,
    batch_output_lanes,
    batch_detected,
    batch_fault_coverage,
    exact_match_faults,
)
from .codegen import (
    CodegenKernel,
    compile_kernel,
    codegen_source,
    codegen_output_lanes,
    fault_signatures_codegen,
    codegen_detected,
    codegen_fault_coverage,
    exact_match_faults_codegen,
)
from .engines import (
    SIM_ENGINES,
    available_engines,
    unavailable_engines,
    engine_summary,
    resolve_engine,
)

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "simulate",
    "output_values",
    "simulate_sequence",
    "pack_patterns",
    "pack_patterns_numpy",
    "unpack_word",
    "simulate_words",
    "simulate_patterns",
    "simulate_words_numpy",
    "simulate_ternary",
    "x_reaches",
    "x_propagation_set",
    "EventSimulator",
    "response",
    "failing_outputs",
    "fault_table",
    "detects",
    "stuck_at_response",
    "deductive_fault_lists",
    "deductive_detected",
    "FaultCoverage",
    "deductive_coverage",
    "deductive_fault_lists_numpy",
    "deductive_detected_numpy",
    "deductive_detected_many",
    "deductive_coverage_numpy",
    "BatchEventSimulator",
    "event_detected",
    "event_fault_coverage",
    "fault_signatures_batch",
    "lanes_to_words",
    "pack_responses",
    "popcount",
    "batch_output_lanes",
    "batch_detected",
    "batch_fault_coverage",
    "exact_match_faults",
    "CodegenKernel",
    "compile_kernel",
    "codegen_source",
    "codegen_output_lanes",
    "fault_signatures_codegen",
    "codegen_detected",
    "codegen_fault_coverage",
    "exact_match_faults_codegen",
    "SIM_ENGINES",
    "available_engines",
    "unavailable_engines",
    "engine_summary",
    "resolve_engine",
]
