"""Bit-parallel pattern simulation.

The paper emphasizes that simulation-based diagnosis can use "efficient
parallel simulation techniques with linear runtimes".  This engine packs an
arbitrary number of patterns into Python's unbounded integers — bit ``j`` of
every signal word is the signal's value under pattern ``j`` — so a single
pass over the netlist evaluates all patterns at once.  For the circuit
sizes of the reproduction this outperforms the single-pattern loop by
roughly the pattern count.

Words are plain ``int``; there is no 64-pattern limit.  A numpy variant
(:func:`simulate_words_numpy`) is provided for very large pattern counts
where fixed-width vectorization wins.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit
from .compiled import compile_circuit

__all__ = [
    "pack_patterns",
    "pack_patterns_numpy",
    "unpack_word",
    "simulate_words",
    "simulate_patterns",
    "simulate_words_numpy",
]


def pack_patterns(
    patterns: Sequence[Mapping[str, int]], inputs: Sequence[str]
) -> dict[str, int]:
    """Pack per-pattern input assignments into one word per input.

    Inputs a pattern omits default to 0, matching the convention of
    :func:`simulate_words` (``input_words.get(name, 0)``); a pattern
    assigning a name *not* in ``inputs`` raises ``ValueError`` — a
    silently dropped assignment is almost always a typo'd input name.
    Both behaviours are shared with :func:`pack_patterns_numpy`.

    >>> pack_patterns([{"a": 1}, {"a": 0}, {"a": 1}], ["a"])
    {'a': 5}
    """
    known = frozenset(inputs)
    words = {name: 0 for name in inputs}
    for j, pattern in enumerate(patterns):
        for name in pattern:
            if name not in known:
                raise ValueError(
                    f"pattern {j} assigns unknown input {name!r}"
                )
        for name in inputs:
            if pattern.get(name, 0) & 1:
                words[name] |= 1 << j
    return words


def pack_patterns_numpy(
    patterns: Sequence[Mapping[str, int]], inputs: Sequence[str]
) -> tuple[dict[str, np.ndarray], int]:
    """Pack patterns into fixed-width uint64 lane arrays.

    Returns ``(words, lanes)`` where ``words[name]`` is a uint64 array of
    ``lanes`` elements; bit ``b`` of lane ``l`` is the input's value under
    pattern ``64*l + b``.  Same conventions as :func:`pack_patterns`
    (which does the packing): missing inputs default to 0, unknown input
    names raise ``ValueError``.  This is the input format of
    :func:`simulate_words_numpy` and the batched fault engines
    (:mod:`repro.sim.batchfault`, :mod:`repro.sim.batchevent`).
    """
    n = len(patterns)
    lanes = max(1, -(-n // 64))
    nbytes = lanes * 8
    words = pack_patterns(patterns, inputs)
    return {
        name: np.frombuffer(
            word.to_bytes(nbytes, "little"), dtype="<u8"
        ).astype(np.uint64)
        for name, word in words.items()
    }, lanes


def unpack_word(word: int, n_patterns: int) -> list[int]:
    """Explode ``word`` into a list of ``n_patterns`` bits (LSB = pattern 0)."""
    return [(word >> j) & 1 for j in range(n_patterns)]


def simulate_words(
    circuit: Circuit,
    input_words: Mapping[str, int],
    n_patterns: int,
    forced_words: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Bit-parallel simulation with one integer word per signal.

    ``forced_words`` overrides whole signal words (all patterns at once),
    mirroring the ``forced`` parameter of the scalar simulator.  DFFs are
    treated as constant-0 present state; diagnosis always runs on the
    full-scan view where no DFFs remain.
    """
    comp = compile_circuit(circuit)
    mask = (1 << n_patterns) - 1
    forced_words = forced_words or {}
    values: list[int] = [0] * comp.n
    for name in circuit.inputs:
        idx = comp.index[name]
        if name in forced_words:
            values[idx] = forced_words[name] & mask
        else:
            values[idx] = input_words.get(name, 0) & mask
    forced_idx = {
        comp.index[name]: val & mask
        for name, val in forced_words.items()
        if not circuit.node(name).is_input
    }
    for idx in comp.eval_order:
        gtype = comp.gtypes[idx]
        fin = comp.fanins[idx]
        if gtype is GateType.DFF:
            v = 0
        elif gtype is GateType.CONST0:
            v = 0
        elif gtype is GateType.CONST1:
            v = mask
        elif gtype is GateType.AND:
            v = mask
            for f in fin:
                v &= values[f]
        elif gtype is GateType.NAND:
            v = mask
            for f in fin:
                v &= values[f]
            v = ~v & mask
        elif gtype is GateType.OR:
            v = 0
            for f in fin:
                v |= values[f]
        elif gtype is GateType.NOR:
            v = 0
            for f in fin:
                v |= values[f]
            v = ~v & mask
        elif gtype is GateType.XOR:
            v = 0
            for f in fin:
                v ^= values[f]
        elif gtype is GateType.XNOR:
            v = 0
            for f in fin:
                v ^= values[f]
            v = ~v & mask
        elif gtype is GateType.NOT:
            v = ~values[fin[0]] & mask
        else:  # BUF
            v = values[fin[0]]
        values[idx] = forced_idx.get(idx, v)
    return {name: values[comp.index[name]] for name in comp.names}


def simulate_patterns(
    circuit: Circuit, patterns: Sequence[Mapping[str, int]]
) -> list[dict[str, int]]:
    """Simulate a batch of input assignments; returns one valuation per pattern.

    Semantically identical to calling the scalar simulator per pattern (the
    test-suite asserts this equivalence) but with a single netlist pass.
    """
    n = len(patterns)
    if n == 0:
        return []
    words = pack_patterns(patterns, circuit.inputs)
    word_values = simulate_words(circuit, words, n)
    result: list[dict[str, int]] = [{} for _ in range(n)]
    for name, word in word_values.items():
        for j in range(n):
            result[j][name] = (word >> j) & 1
    return result


def simulate_words_numpy(
    circuit: Circuit,
    input_words: Mapping[str, np.ndarray],
    forced_words: Mapping[str, np.ndarray] | None = None,
) -> dict[str, np.ndarray]:
    """Fixed-width (uint64 lanes) vectorized variant.

    Every signal is a numpy ``uint64`` array of lanes; lane ``l`` bit ``b``
    is pattern ``64*l + b``.  All input arrays must share a common lane
    count.  Useful when simulating thousands of random patterns for test
    generation.
    """
    comp = compile_circuit(circuit)
    forced_words = forced_words or {}
    lanes = None
    for label, mapping in (("input", input_words), ("forced", forced_words)):
        for name, arr in mapping.items():
            n = len(np.atleast_1d(np.asarray(arr)))
            if lanes is None:
                lanes = n
            elif n != lanes:
                raise ValueError(
                    f"lane count mismatch: {label} word {name!r} has "
                    f"{n} lanes, expected {lanes}"
                )
    if not input_words:
        raise ValueError("input_words must not be empty")
    assert lanes is not None
    ones = np.full(lanes, np.uint64(0xFFFFFFFFFFFFFFFF))
    zeros = np.zeros(lanes, dtype=np.uint64)
    values: list[np.ndarray] = [zeros] * comp.n
    for name in circuit.inputs:
        idx = comp.index[name]
        source = forced_words.get(name, input_words.get(name))
        values[idx] = (
            zeros if source is None else np.asarray(source, dtype=np.uint64)
        )
    forced_idx = {
        comp.index[name]: np.asarray(arr, dtype=np.uint64)
        for name, arr in forced_words.items()
        if not circuit.node(name).is_input
    }
    for idx in comp.eval_order:
        gtype = comp.gtypes[idx]
        fin = comp.fanins[idx]
        if gtype in (GateType.DFF, GateType.CONST0):
            v = zeros
        elif gtype is GateType.CONST1:
            v = ones
        elif gtype in (GateType.AND, GateType.NAND):
            v = values[fin[0]].copy()
            for f in fin[1:]:
                v &= values[f]
            if gtype is GateType.NAND:
                v = ~v
        elif gtype in (GateType.OR, GateType.NOR):
            v = values[fin[0]].copy()
            for f in fin[1:]:
                v |= values[f]
            if gtype is GateType.NOR:
                v = ~v
        elif gtype in (GateType.XOR, GateType.XNOR):
            v = values[fin[0]].copy()
            for f in fin[1:]:
                v ^= values[f]
            if gtype is GateType.XNOR:
                v = ~v
        elif gtype is GateType.NOT:
            v = ~values[fin[0]]
        else:  # BUF
            v = values[fin[0]]
        values[idx] = forced_idx.get(idx, v)
    return {name: values[comp.index[name]] for name in comp.names}
