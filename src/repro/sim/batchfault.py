"""Fault-parallel × pattern-parallel stuck-at simulation on numpy lanes.

The serial engines in this package simulate one fault per netlist pass
(:func:`repro.diagnosis.stuckat.fault_signature`,
:func:`repro.sim.faultsim.stuck_at_response`), which makes the dominant
diagnosis/ATPG loop O(faults × gates × patterns) in pure Python.  This
module batches the *fault* axis on top of the uint64 *pattern* lanes of
:func:`repro.sim.parallel.simulate_words_numpy`:

* every signal is a ``(rows, lanes)`` uint64 array — row ``k`` is the
  circuit with fault ``k`` active, bit ``b`` of lane ``l`` is pattern
  ``64*l + b``;
* one extra trailing row carries the fault-free circuit, so the good
  response falls out of the same sweep;
* fault ``k``'s forced value is applied only in row ``k``, at the fault
  site, as the site's value is assigned — exactly where the serial engine
  applies its ``forced`` override, so results are bit-identical (the
  cross-engine property suite asserts this).

A full sweep is a handful of vectorized numpy passes instead of one
Python netlist walk per fault.  On the 600-gate / 1382-fault /
256-pattern production-test workload this is >10× faster than the serial
path (``benchmarks/bench_stuckat.py`` records the factor).

*Fault dropping* is supported at pattern-block granularity: the
pattern set is processed in blocks of lanes, and faults whose output
words are already resolved — detected (:func:`batch_fault_coverage`) or
mismatching the observed responses (:func:`exact_match_faults`) — are
masked out of the batch for all subsequent blocks, shrinking the row
count as the sweep progresses.

Within the vectorized lineup this engine owns the *sweep-everything*
workload.  When only per-change increments are needed, the batched event
engine (:mod:`repro.sim.batchevent`) re-evaluates fanout cones instead;
when per-signal fault lists are needed, the bitset deductive engine
(:mod:`repro.sim.deductive_numpy`) propagates them directly.  All three
are bit-identical on shared queries (``tests/sim/test_cross_engine.py``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit
from ..faults.collapse import full_stuck_at_universe
from ..faults.models import StuckAtFault
from .compiled import CompiledCircuit, compile_circuit
from .deductive import FaultCoverage
from .parallel import pack_patterns_numpy

__all__ = [
    "fault_signatures_batch",
    "lanes_to_words",
    "pack_responses",
    "first_set_bit",
    "batch_output_lanes",
    "batch_detected",
    "batch_fault_coverage",
    "exact_match_faults",
]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Soft cap on the sweep buffer (bytes); longer pattern sets are swept in
#: lane-aligned blocks and concatenated.
_SWEEP_BUDGET = 256 << 20


def _popcount_fallback(a: np.ndarray) -> np.ndarray:
    """Per-element popcount for numpy < 2.0 (no ``np.bitwise_count``)."""
    b = np.ascontiguousarray(a)
    u8 = b.view(np.uint8).reshape(b.shape + (8,))
    return np.unpackbits(u8, axis=-1).sum(axis=-1, dtype=np.uint64)


popcount = getattr(np, "bitwise_count", _popcount_fallback)


def first_set_bit(words: np.ndarray) -> int | None:
    """Pattern index of the lowest set bit of a lane array, or ``None``.

    The shared first-detection scan of the batched coverage engines: bit
    ``b`` of lane ``l`` is pattern ``64*l + b``.
    """
    for lane, word in enumerate(words):
        w = int(word)
        if w:
            return 64 * lane + (w & -w).bit_length() - 1
    return None


def _fault_rows(
    comp: CompiledCircuit, faults: Sequence[StuckAtFault]
) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
    """Map signal index -> batch rows forced to 0 / forced to 1."""
    rows0: dict[int, list[int]] = {}
    rows1: dict[int, list[int]] = {}
    for row, fault in enumerate(faults):
        idx = comp.index.get(fault.signal)
        if idx is None:
            raise ValueError(
                f"fault site {fault.signal!r} is not a signal of "
                f"circuit {comp.circuit.name!r}"
            )
        (rows1 if fault.value else rows0).setdefault(idx, []).append(row)
    return rows0, rows1


_GATE_OPS = {
    GateType.AND: (np.bitwise_and, False),
    GateType.NAND: (np.bitwise_and, True),
    GateType.OR: (np.bitwise_or, False),
    GateType.NOR: (np.bitwise_or, True),
    GateType.XOR: (np.bitwise_xor, False),
    GateType.XNOR: (np.bitwise_xor, True),
}


def _sweep(
    comp: CompiledCircuit,
    faults: Sequence[StuckAtFault],
    input_lanes: Mapping[str, np.ndarray],
    lanes: int,
) -> np.ndarray:
    """One batched netlist pass.

    Returns a ``(n_signals, rows, lanes)`` uint64 array; row ``k <
    len(faults)`` has fault ``k`` forced, the final row is fault-free.
    All gate evaluations write in place into the one preallocated buffer —
    no per-gate allocation, which keeps the cold-cache sweep as fast as a
    warm one.
    """
    rows = len(faults) + 1
    rows0, rows1 = _fault_rows(comp, faults)
    buf = np.empty((comp.n, rows, lanes), dtype=np.uint64)

    def place(idx: int) -> None:
        r0 = rows0.get(idx)
        r1 = rows1.get(idx)
        if r0:
            buf[idx, r0] = 0
        if r1:
            buf[idx, r1] = _ALL_ONES

    for name in comp.circuit.inputs:
        idx = comp.index[name]
        buf[idx] = input_lanes[name]  # broadcast over the fault rows
        place(idx)
    for idx in comp.eval_order:
        gtype = comp.gtypes[idx]
        fin = comp.fanins[idx]
        v = buf[idx]
        op_invert = _GATE_OPS.get(gtype)
        if op_invert is not None:
            op, invert = op_invert
            if len(fin) == 1:
                np.copyto(v, buf[fin[0]])
            else:
                op(buf[fin[0]], buf[fin[1]], out=v)
                for f in fin[2:]:
                    op(v, buf[f], out=v)
            if invert:
                np.invert(v, out=v)
        elif gtype in (GateType.DFF, GateType.CONST0):
            v[...] = 0
        elif gtype is GateType.CONST1:
            v[...] = _ALL_ONES
        elif gtype is GateType.NOT:
            np.invert(buf[fin[0]], out=v)
        elif gtype is GateType.INPUT:
            # Defensive only: eval_order excludes INPUT nodes (they are
            # assigned, and fault-forced, in the inputs loop above).
            continue
        else:  # BUF
            np.copyto(v, buf[fin[0]])
        place(idx)
    return buf


def _lane_mask(n_patterns: int, lanes: int) -> np.ndarray:
    """Per-lane mask clearing the padding bits above ``n_patterns``."""
    mask = np.full(lanes, _ALL_ONES)
    rem = n_patterns % 64
    if rem:
        mask[-1] = np.uint64((1 << rem) - 1)
    return mask


def _output_stack(comp: CompiledCircuit, buf: np.ndarray) -> np.ndarray:
    """Extract outputs into a ``(rows, n_outputs, lanes)`` array.

    The fancy index copies (so the full sweep buffer is not kept alive);
    the transpose stays a view — downstream XOR/popcount reductions handle
    the strides.
    """
    return buf[list(comp.output_indices)].transpose(1, 0, 2)


def batch_output_lanes(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    patterns: Sequence[Mapping[str, int]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Low-level batched sweep: output words for all faults at once.

    Returns ``(fault_lanes, good_lanes, lane_mask)`` where ``fault_lanes``
    has shape ``(len(faults), n_outputs, lanes)`` (outputs in circuit
    output order), ``good_lanes`` is the fault-free response
    ``(n_outputs, lanes)``, and ``lane_mask`` clears the padding bits of
    the last lane.  Padding bits are *not* pre-masked in the value arrays.

    Pattern sets too wide for the ~256 MB sweep-buffer budget are swept in
    lane-aligned blocks and concatenated, so memory stays bounded by the
    circuit/fault dimensions, never by the pattern count.
    """
    if not patterns:
        raise ValueError("need at least one pattern")
    comp = compile_circuit(circuit)
    rows = len(faults) + 1
    per_lane = comp.n * rows * 8
    block_lanes = max(1, _SWEEP_BUDGET // max(per_lane, 1))
    block = 64 * block_lanes  # lane-aligned: blocks pack without padding
    stacks = []
    for start in range(0, len(patterns), block):
        chunk = patterns[start : start + block]
        input_lanes, lanes = pack_patterns_numpy(chunk, circuit.inputs)
        buf = _sweep(comp, faults, input_lanes, lanes)
        stacks.append(_output_stack(comp, buf))
    stack = stacks[0] if len(stacks) == 1 else np.concatenate(stacks, axis=2)
    lanes = stack.shape[2]
    return stack[:-1], stack[-1], _lane_mask(len(patterns), lanes)


def fault_signatures_batch(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    patterns: Sequence[Mapping[str, int]],
) -> list[dict[str, int]]:
    """Output signature of every fault in one fault-parallel sweep.

    Drop-in batched replacement for calling
    :func:`repro.diagnosis.stuckat.fault_signature` per fault: returns, in
    fault order, ``{output: word}`` dictionaries whose bit ``j`` is the
    output's value under pattern ``j`` with the fault active — bit-exact
    against the serial engine.

    >>> from repro.circuits.library import majority
    >>> from repro.faults.models import StuckAtFault
    >>> sigs = fault_signatures_batch(
    ...     majority(), [StuckAtFault("ab", 1)], [{"a": 0, "b": 0, "c": 0}]
    ... )
    >>> sigs[0]["out"]
    1
    """
    faults = list(faults)
    if not faults:
        if not patterns:
            raise ValueError("need at least one pattern")
        return []
    fault_lanes, _, _ = batch_output_lanes(circuit, faults, patterns)
    return lanes_to_words(fault_lanes, circuit.outputs, len(patterns))


def lanes_to_words(
    fault_lanes: np.ndarray, outputs: Sequence[str], n_patterns: int
) -> list[dict[str, int]]:
    """Convert a ``(rows, n_outputs, lanes)`` lane array to per-row
    ``{output: word}`` dictionaries (the serial engines' signature format)."""
    rows, n_out, lanes = fault_lanes.shape
    mask = (1 << n_patterns) - 1
    stride = lanes * 8
    raw = np.ascontiguousarray(fault_lanes).astype("<u8", copy=False).tobytes()
    view = memoryview(raw)
    words: list[dict[str, int]] = []
    pos = 0
    for _ in range(rows):
        sig: dict[str, int] = {}
        for out in outputs:
            sig[out] = int.from_bytes(view[pos : pos + stride], "little") & mask
            pos += stride
        words.append(sig)
    return words


def pack_responses(
    outputs: Sequence[str], observed: Sequence[Mapping[str, int]]
) -> np.ndarray:
    """Pack per-pattern output responses into an ``(n_outputs, lanes)``
    uint64 array, in ``outputs`` order.

    Unlike input packing, a response missing an output is an error (a
    tester log always carries every output) — raises ``KeyError`` like the
    serial matching path, rather than silently defaulting to 0.
    """
    n = len(observed)
    lanes = max(1, -(-n // 64))
    words = {out: 0 for out in outputs}
    for j, response in enumerate(observed):
        for out in outputs:
            if response[out] & 1:
                words[out] |= 1 << j
    nbytes = lanes * 8
    return np.stack(
        [
            np.frombuffer(words[out].to_bytes(nbytes, "little"), dtype="<u8")
            for out in outputs
        ]
    ).astype(np.uint64)


def batch_detected(
    circuit: Circuit,
    vector: Mapping[str, int],
    faults: Sequence[StuckAtFault] | None = None,
) -> frozenset[StuckAtFault]:
    """Faults that ``vector`` detects at some primary output.

    Batched drop-in for :func:`repro.sim.deductive.deductive_detected`:
    one fault-parallel sweep instead of one fault-list propagation pass,
    with identical results on complete vectors (differential tests assert
    this).  One convention difference: inputs missing from ``vector``
    default to 0 here (the :func:`repro.sim.parallel.pack_patterns` /
    ``simulate_words`` convention), where the deductive engine raises.
    """
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    faults = list(faults)
    if not faults:
        return frozenset()
    fault_lanes, good, mask = batch_output_lanes(circuit, faults, [vector])
    diff = (fault_lanes ^ good) & mask
    hit = diff.reshape(len(faults), -1).any(axis=1)
    return frozenset(f for f, h in zip(faults, hit) if h)


def batch_fault_coverage(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
    drop_detected: bool = True,
    block_patterns: int = 256,
) -> FaultCoverage:
    """Fault coverage of a pattern set, batched with fault dropping.

    Batched drop-in for :func:`repro.sim.deductive.deductive_coverage`:
    patterns are processed in blocks of ``block_patterns``; with
    ``drop_detected`` (default) faults detected in one block leave the
    batch for all later blocks — the classic dropping that keeps the batch
    narrow as coverage climbs.  Dropping never changes the result, only
    the cost.  ``first_detection`` indices are exact (per pattern, not per
    block).
    """
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    faults = list(faults)
    patterns = list(patterns)
    first_detection: dict[StuckAtFault, int] = {}
    if faults and patterns:
        block_patterns = max(64, block_patterns)
        active = faults
        for start in range(0, len(patterns), block_patterns):
            if not active:
                break
            block = patterns[start : start + block_patterns]
            fault_lanes, good, mask = batch_output_lanes(
                circuit, active, block
            )
            # One word per (fault, lane): a set bit means some output
            # differs from fault-free under that pattern.
            diff = np.bitwise_or.reduce((fault_lanes ^ good) & mask, axis=1)
            hit = diff.any(axis=1)
            survivors: list[StuckAtFault] = []
            for row, fault in enumerate(active):
                if not hit[row]:
                    survivors.append(fault)
                    continue
                if fault in first_detection:  # without dropping, re-hits
                    continue
                first = first_set_bit(diff[row])
                assert first is not None  # hit[row] guarantees a set bit
                first_detection[fault] = start + first
            if drop_detected:
                active = survivors
    return FaultCoverage(
        faults=tuple(faults),
        first_detection=first_detection,
        n_patterns=len(patterns),
    )


def exact_match_faults(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    observed: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
    block_patterns: int = 256,
) -> list[StuckAtFault]:
    """Faults whose full signature equals the observed responses.

    The fault-dropping flavour of exact-match diagnosis: candidates whose
    output words mismatch the observation in one pattern block are masked
    out of all subsequent blocks, so the batch narrows rapidly toward the
    perfect explanations.  Equivalent to keeping the ``mismatch_bits == 0``
    faults of :func:`repro.diagnosis.stuckat.diagnose_stuck_at` over the
    *same* candidate list, but without paying for the full ranking.  Note
    the *default* lists differ: ``None`` means
    :func:`~repro.faults.collapse.full_stuck_at_universe` here (which
    omits the tied polarity of constant gates), while ``diagnose_stuck_at``
    defaults to :func:`~repro.diagnosis.stuckat.full_fault_list` (which
    keeps it); on circuits without constant gates the two coincide.
    """
    if len(patterns) != len(observed):
        raise ValueError("patterns and observed responses must align")
    if not patterns:
        raise ValueError("need at least one pattern")
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    active = list(faults)
    block_patterns = max(64, block_patterns)
    for start in range(0, len(patterns), block_patterns):
        if not active:
            break
        block = patterns[start : start + block_patterns]
        fault_lanes, _, mask = batch_output_lanes(circuit, active, block)
        obs = pack_responses(
            circuit.outputs, observed[start : start + block_patterns]
        )
        diff = (fault_lanes ^ obs) & mask
        clean = ~diff.reshape(len(active), -1).any(axis=1)
        active = [f for f, ok in zip(active, clean) if ok]
    return active
