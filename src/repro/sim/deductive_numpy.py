"""Vectorized (bitset-matrix) deductive fault simulation.

This is the numpy lane port of :mod:`repro.sim.deductive`: the same
Armstrong single-fault propagation rules, but fault lists are *bitsets* —
``(patterns, fault_lanes)`` uint64 matrices, one per signal, where bit
``k`` of the fault-lane axis marks fault ``k`` as flipping the signal —
instead of Python ``set`` objects.  Set union/intersection/difference
become ``|``/``&``/``& ~`` on uint64 words and the engine propagates *all
patterns of a block at once*: the per-gate branch on controlling inputs is
resolved with boolean pattern masks (``np.where``), so one pass over the
netlist replaces one Python pass per pattern.

The propagation rules are identical to the serial engine (see the
:mod:`repro.sim.deductive` module docstring for their statement) and
exact for single faults, including the hard cases — reconvergent fanout
and XOR/XNOR parity cancellation — which the regression suite pins for
both implementations and the cross-engine matrix checks differentially.

On the ~600-gate × ~1400-fault × 256-pattern ATPG workload this engine is
far more than the required 5× faster than the pure-Python propagator
(``benchmarks/bench_faultsim_engines.py`` records the factor); it is the
engine of choice when full per-signal fault lists (not just output
detections) are needed at scale, and a third independent implementation
for the differential matrix.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..circuits.gates import CONTROLLING_VALUE, GateType
from ..circuits.netlist import Circuit
from ..faults.collapse import full_stuck_at_universe
from ..faults.models import StuckAtFault
from .batchfault import _ALL_ONES, _sweep
from .compiled import CompiledCircuit, compile_circuit
from .deductive import FaultCoverage
from .parallel import pack_patterns_numpy

__all__ = [
    "deductive_fault_lists_numpy",
    "deductive_detected_numpy",
    "deductive_detected_many",
    "deductive_output_fault_lists",
    "deductive_coverage_numpy",
]

_ONE = np.uint64(1)


def _check_vectors(
    circuit: Circuit, patterns: Sequence[Mapping[str, int]]
) -> None:
    """Serial-engine input convention: every PI must be assigned.

    The serial deductive engine simulates with :func:`repro.sim.logicsim.
    simulate`, which raises ``KeyError`` on a missing primary input; the
    numpy engine keeps that contract instead of the pack-to-0 convention
    of :func:`repro.sim.parallel.pack_patterns`.
    """
    for vector in patterns:
        for pi in circuit.inputs:
            if pi not in vector:
                raise KeyError(f"no value for primary input {pi!r}")


def _fault_id_tables(
    comp: CompiledCircuit, faults: Sequence[StuckAtFault]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-signal fault ids: ``(sa0_ids, sa1_ids)``, -1 where absent.

    Duplicate faults map to their first id (like the serial engine's
    ``dict``-based table); faults at names that are not signals of the
    circuit simply never fire, again matching the serial engine.
    """
    sa0 = np.full(comp.n, -1, dtype=np.int64)
    sa1 = np.full(comp.n, -1, dtype=np.int64)
    for fid, fault in enumerate(faults):
        idx = comp.index.get(fault.signal)
        if idx is None:
            continue
        table = sa1 if fault.value else sa0
        if table[idx] < 0:
            table[idx] = fid
    return sa0, sa1


def _good_bits(
    comp: CompiledCircuit, patterns: Sequence[Mapping[str, int]]
) -> np.ndarray:
    """Fault-free value of every signal: bool matrix ``(n_signals, P)``."""
    input_lanes, lanes = pack_patterns_numpy(patterns, comp.circuit.inputs)
    buf = _sweep(comp, [], input_lanes, lanes)  # rows == 1: fault-free only
    words = np.ascontiguousarray(buf[:, 0, :])
    bits = np.unpackbits(
        words.view(np.uint8), axis=-1, bitorder="little"
    )
    return bits[:, : len(patterns)].astype(bool)


def _propagate_single(
    comp: CompiledCircuit,
    vector: Mapping[str, int],
    faults: Sequence[StuckAtFault],
) -> tuple[list[np.ndarray], np.ndarray]:
    """Dedicated 1-lane fast path (ATPG drop queries: one vector × many
    faults).

    Same propagation rules as :func:`_propagate_block`, but each fault
    list is one Python big-int bitset: with a single pattern the per-gate
    controlling-input branch is a scalar comparison and set algebra is
    one CPython limb-vector op per fanin — no ``np.where``, no
    per-pattern masks, no small-array numpy dispatch overhead.  This is
    what closes the ROADMAP single-vector gap: the pure-Python deductive
    pass (set objects) used to win this shape.

    Returns ``(lists, good)`` shaped like ``_propagate_block`` with
    ``P == 1``.
    """
    fl = max(1, -(-len(faults) // 64))
    sa0: dict[int, int] = {}
    sa1: dict[int, int] = {}
    for fid, fault in enumerate(faults):
        idx = comp.index.get(fault.signal)
        if idx is None:
            continue
        table = sa1 if fault.value else sa0
        table.setdefault(idx, fid)
    good: list[int] = [0] * comp.n
    lists: list[int] = [0] * comp.n
    for idx in range(comp.n):
        gtype = comp.gtypes[idx]
        fin = comp.fanins[idx]
        if gtype is GateType.INPUT:
            g = int(vector[comp.names[idx]]) & 1
            result = 0
        elif gtype in (GateType.DFF, GateType.CONST0):
            g = 0
            result = 0
        elif gtype is GateType.CONST1:
            g = 1
            result = 0
        elif gtype in (GateType.BUF, GateType.NOT):
            g = good[fin[0]] ^ (1 if gtype is GateType.NOT else 0)
            result = lists[fin[0]]
        elif gtype in (GateType.XOR, GateType.XNOR):
            g = 1 if gtype is GateType.XNOR else 0
            result = 0
            for f in fin:
                g ^= good[f]
                result ^= lists[f]
        else:
            control = CONTROLLING_VALUE[gtype]
            inverted = gtype in (GateType.NAND, GateType.NOR)
            ctrl = [f for f in fin if good[f] == control]
            if not ctrl:
                g = (control ^ 1) ^ (1 if inverted else 0)
                result = 0
                for f in fin:
                    result |= lists[f]
            else:
                g = control ^ (1 if inverted else 0)
                result = lists[ctrl[0]]
                for f in ctrl[1:]:
                    result &= lists[f]
                for f in fin:
                    if good[f] != control:
                        result &= ~lists[f]
        own = sa0.get(idx) if g else sa1.get(idx)
        if own is not None:
            result |= 1 << own
        good[idx] = g
        lists[idx] = result
    n_bytes = fl * 8
    packed = b"".join(r.to_bytes(n_bytes, "little") for r in lists)
    rows = np.frombuffer(packed, dtype="<u8").astype(np.uint64).reshape(
        comp.n, 1, fl
    )
    good_arr = np.array(good, dtype=bool).reshape(-1, 1)
    return [rows[idx] for idx in range(comp.n)], good_arr


def _propagate_block(
    comp: CompiledCircuit,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault],
) -> tuple[list[np.ndarray], np.ndarray]:
    """One vectorized deductive pass over a pattern block.

    Returns ``(lists, good)`` where ``lists[idx]`` is the ``(P, FL)``
    uint64 fault-list bitset of signal ``idx`` (bit ``k`` of the fault
    axis set iff fault ``k`` flips the signal under that pattern) and
    ``good`` is the fault-free bool value matrix ``(n_signals, P)``.
    Single-pattern blocks dispatch to the flat 1-lane fast path.
    """
    n_p = len(patterns)
    if n_p == 1:
        return _propagate_single(comp, patterns[0], faults)
    fl = max(1, -(-len(faults) // 64))
    sa0, sa1 = _fault_id_tables(comp, faults)
    good = _good_bits(comp, patterns)
    ones = np.full((n_p, fl), _ALL_ONES)
    lists: list[np.ndarray] = [None] * comp.n  # type: ignore[list-item]
    for idx in range(comp.n):
        gtype = comp.gtypes[idx]
        fin = comp.fanins[idx]
        if gtype in (
            GateType.INPUT,
            GateType.DFF,
            GateType.CONST0,
            GateType.CONST1,
        ):
            result = np.zeros((n_p, fl), dtype=np.uint64)
        elif gtype in (GateType.BUF, GateType.NOT):
            result = lists[fin[0]].copy()
        elif gtype in (GateType.XOR, GateType.XNOR):
            # Parity rule: a fault flips the output iff it flips an odd
            # number of fanins — symmetric difference is bitwise XOR.
            result = lists[fin[0]].copy()
            for f in fin[1:]:
                result ^= lists[f]
        else:
            control = CONTROLLING_VALUE[gtype]
            # ctrl[i] marks, per pattern, fanin i at the controlling value.
            ctrl = [good[f] == control for f in fin]
            any_ctrl = ctrl[0].copy()
            for c in ctrl[1:]:
                any_ctrl |= c
            union = lists[fin[0]].copy()
            for f in fin[1:]:
                union |= lists[f]
            inter = ones.copy()
            nonctrl = np.zeros((n_p, fl), dtype=np.uint64)
            zero = np.zeros((n_p, fl), dtype=np.uint64)
            for f, c in zip(fin, ctrl):
                cm = c[:, None]
                inter &= np.where(cm, lists[f], ones)
                nonctrl |= np.where(cm, zero, lists[f])
            result = np.where(
                any_ctrl[:, None], inter & ~nonctrl, union
            )
        # The signal's own stuck-at-(1-v) fault joins its list.
        g = good[idx]
        own1 = sa1[idx]  # s-a-1 flips patterns where the good value is 0
        if own1 >= 0:
            result[~g, own1 >> 6] |= _ONE << np.uint64(own1 & 63)
        own0 = sa0[idx]
        if own0 >= 0:
            result[g, own0 >> 6] |= _ONE << np.uint64(own0 & 63)
        lists[idx] = result
    return lists, good


def _detected_matrix(
    comp: CompiledCircuit, lists: list[np.ndarray]
) -> np.ndarray:
    """Union of the primary-output fault lists: ``(P, FL)`` bitsets."""
    detected = lists[comp.output_indices[0]].copy()
    for idx in comp.output_indices[1:]:
        detected |= lists[idx]
    return detected


def _bitset_rows_to_sets(
    rows: np.ndarray, faults: Sequence[StuckAtFault]
) -> list[frozenset[StuckAtFault]]:
    """Explode ``(P, FL)`` bitset rows into per-pattern fault frozensets."""
    n_faults = len(faults)
    bits = np.unpackbits(
        np.ascontiguousarray(rows).view(np.uint8), axis=-1, bitorder="little"
    )[:, :n_faults]
    return [
        frozenset(faults[k] for k in np.nonzero(row)[0]) for row in bits
    ]


def deductive_fault_lists_numpy(
    circuit: Circuit,
    vector: Mapping[str, int],
    faults: Sequence[StuckAtFault] | None = None,
) -> dict[str, frozenset[StuckAtFault]]:
    """Vectorized drop-in for :func:`repro.sim.deductive.deductive_fault_lists`.

    Same signature, same result (the differential suite asserts set
    equality per signal); the propagation runs on uint64 bitsets.

    >>> from repro.circuits.library import majority
    >>> from repro.faults.models import StuckAtFault
    >>> lists = deductive_fault_lists_numpy(majority(), {"a": 1, "b": 1, "c": 0})
    >>> StuckAtFault("ab", 0) in lists["out"]
    True
    """
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    faults = list(faults)
    comp = compile_circuit(circuit)
    _check_vectors(circuit, [vector])
    lists, _ = _propagate_block(comp, [vector], faults)
    out: dict[str, frozenset[StuckAtFault]] = {}
    for idx, name in enumerate(comp.names):
        out[name] = _bitset_rows_to_sets(lists[idx], faults)[0]
    return out


def deductive_detected_numpy(
    circuit: Circuit,
    vector: Mapping[str, int],
    faults: Sequence[StuckAtFault] | None = None,
) -> frozenset[StuckAtFault]:
    """Vectorized drop-in for :func:`repro.sim.deductive.deductive_detected`.

    >>> from repro.circuits.library import c17
    >>> from repro.faults.models import StuckAtFault
    >>> vec = {"G1": 1, "G2": 1, "G3": 1, "G6": 1, "G7": 1}
    >>> StuckAtFault("G16", 0) in deductive_detected_numpy(c17(), vec)
    True
    """
    return deductive_detected_many(circuit, [vector], faults)[0]


def deductive_detected_many(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
) -> list[frozenset[StuckAtFault]]:
    """Detected-fault set of every pattern, one vectorized pass for all.

    Equivalent to ``[deductive_detected(circuit, p, faults) for p in
    patterns]`` but the whole block is propagated at once.
    """
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    faults = list(faults)
    if not patterns:
        return []
    comp = compile_circuit(circuit)
    _check_vectors(circuit, patterns)
    lists, _ = _propagate_block(comp, patterns, faults)
    return _bitset_rows_to_sets(_detected_matrix(comp, lists), faults)


def deductive_output_fault_lists(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
) -> list[dict[str, frozenset[StuckAtFault]]]:
    """Primary-output fault lists of every pattern, one block pass.

    Equivalent to ``[{o: deductive_fault_lists_numpy(circuit, p,
    faults)[o] for o in circuit.outputs} for p in patterns]`` but the
    whole pattern block propagates in one vectorized pass and only the
    output rows are exploded into sets.  This is the per-observation
    candidate extraction of the diagnosis candidate space
    (:meth:`repro.diagnosis.core.CandidateSpace.fault_list_candidates`).
    """
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    faults = list(faults)
    patterns = list(patterns)
    if not patterns:
        return []
    comp = compile_circuit(circuit)
    _check_vectors(circuit, patterns)
    lists, _ = _propagate_block(comp, patterns, faults)
    per_output = {
        name: _bitset_rows_to_sets(lists[comp.index[name]], faults)
        for name in circuit.outputs
    }
    return [
        {out: per_output[out][j] for out in circuit.outputs}
        for j in range(len(patterns))
    ]


def deductive_coverage_numpy(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault] | None = None,
    drop_detected: bool = True,
    block_patterns: int = 128,
) -> FaultCoverage:
    """Vectorized drop-in for :func:`repro.sim.deductive.deductive_coverage`.

    Patterns are propagated in blocks of ``block_patterns``; with
    ``drop_detected`` (default) faults detected in one block leave the
    simulated universe for all later blocks, shrinking the fault-lane
    axis as coverage climbs.  Dropping never changes the result, only the
    cost; ``first_detection`` indices are exact (per pattern, not per
    block) — bit-identical to the serial engine and to
    :func:`repro.sim.batchfault.batch_fault_coverage`.
    """
    if faults is None:
        faults = full_stuck_at_universe(circuit)
    faults = list(faults)
    patterns = list(patterns)
    comp = compile_circuit(circuit)
    _check_vectors(circuit, patterns)
    first_detection: dict[StuckAtFault, int] = {}
    if faults and patterns:
        block_patterns = max(1, block_patterns)
        active = faults
        for start in range(0, len(patterns), block_patterns):
            if not active:
                break
            block = patterns[start : start + block_patterns]
            lists, _ = _propagate_block(comp, block, active)
            det = _detected_matrix(comp, lists)
            bits = np.unpackbits(
                np.ascontiguousarray(det).view(np.uint8),
                axis=-1,
                bitorder="little",
            )[:, : len(active)]
            hit = bits.any(axis=0)
            first = bits.argmax(axis=0)
            survivors: list[StuckAtFault] = []
            for k, fault in enumerate(active):
                if not hit[k]:
                    survivors.append(fault)
                    continue
                if fault in first_detection:  # without dropping, re-hits
                    continue
                first_detection[fault] = start + int(first[k])
            if drop_detected:
                active = survivors
    return FaultCoverage(
        faults=tuple(faults),
        first_detection=first_detection,
        n_patterns=len(patterns),
    )
