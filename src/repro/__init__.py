"""repro — reproduction of Fey, Safarpour, Veneris, Drechsler:
"On the Relation Between Simulation-based and SAT-based Diagnosis"
(DATE 2006).

The package is organized as the paper's stack:

* :mod:`repro.circuits` — gate-level netlists, ``.bench``/Verilog I/O,
  structure, generators, synthesis-like rewrites.
* :mod:`repro.sim` — scalar / bit-parallel / ternary / event-driven /
  deductive-fault simulation.
* :mod:`repro.sat` — from-scratch incremental CDCL solver, encodings,
  DRAT proofs with an independent checker.
* :mod:`repro.bdd` — ROBDD engine and the intro's BDD diagnosis baseline.
* :mod:`repro.faults` — error models (gate-change, stuck-at, wire),
  injection, fault collapsing.
* :mod:`repro.testgen` — failing-test generation (random and SAT/miter),
  SCOAP, PODEM and the production-test ATPG flow.
* :mod:`repro.diagnosis` — BSIM, COV, BSAT, advanced and hybrid approaches,
  validity checking, quality metrics, structural baseline, certified
  verdicts.
* :mod:`repro.verify` — equivalence checking and bounded model checking.
* :mod:`repro.experiments` — the Table 2 / Table 3 / Figure 6 harness.

Quickstart::

    from repro.experiments import make_workload, run_cell, format_cell_summary
    w = make_workload("sim1423", p=2, m_max=8, seed=1)
    print(format_cell_summary(run_cell(w, m=8)))
"""

from . import (
    bdd,
    circuits,
    diagnosis,
    experiments,
    faults,
    sat,
    sim,
    testgen,
    verify,
)

__version__ = "1.1.0"

__all__ = [
    "circuits",
    "sim",
    "sat",
    "bdd",
    "faults",
    "testgen",
    "diagnosis",
    "experiments",
    "verify",
    "__version__",
]
