"""Test and test-set types (Definition 1 of the paper).

A :class:`Test` is the triple ``(t, o, v)``: an input vector ``t`` that
causes an erroneous value at primary output ``o`` whose correct value is
``v``.  A :class:`TestSet` is an ordered collection of tests; the paper's
experiments slice one test-set into prefixes of 4, 8, 16 and 32 tests,
which :meth:`TestSet.prefix` supports directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterator, Mapping, Sequence

__all__ = ["Test", "TestSet"]


@dataclass(frozen=True)
class Test:
    """One diagnosis test triple ``(t, o, v)``.

    ``vector`` maps every primary input to its value; ``output`` names the
    primary output observed to be erroneous; ``value`` is the *correct*
    value of that output.  ``expected_outputs`` optionally carries golden
    values for *all* outputs, enabling the stricter all-outputs-constrained
    formulation used by the advanced debug approaches (refs [17, 4]).
    """

    vector: Mapping[str, int]
    output: str
    value: int
    expected_outputs: Mapping[str, int] | None = None

    #: Tell pytest this is not a test-case class.
    __test__ = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "vector", MappingProxyType(dict(self.vector)))
        if self.value not in (0, 1):
            raise ValueError("correct value must be 0 or 1")
        if self.expected_outputs is not None:
            object.__setattr__(
                self,
                "expected_outputs",
                MappingProxyType(dict(self.expected_outputs)),
            )
            if self.expected_outputs.get(self.output) != self.value:
                raise ValueError(
                    "expected_outputs must agree with (output, value)"
                )

    @property
    def wrong_value(self) -> int:
        """The erroneous value the implementation produces at ``output``."""
        return self.value ^ 1

    def key(self) -> tuple:
        """Hashable identity (vectors are mappings, so Tests need help)."""
        return (tuple(sorted(self.vector.items())), self.output, self.value)


@dataclass(frozen=True)
class TestSet:
    """An ordered set of tests (the paper's ``T``, ``m = len(T)``)."""

    tests: tuple[Test, ...] = field(default_factory=tuple)

    #: Tell pytest this is not a test-case class.
    __test__ = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "tests", tuple(self.tests))

    def __len__(self) -> int:
        return len(self.tests)

    def __iter__(self) -> Iterator[Test]:
        return iter(self.tests)

    def __getitem__(self, idx: int) -> Test:
        return self.tests[idx]

    @property
    def m(self) -> int:
        """Number of tests (paper notation)."""
        return len(self.tests)

    def prefix(self, m: int) -> "TestSet":
        """First ``m`` tests — "a part of the same test-set has been used"
        (paper §5)."""
        if m > len(self.tests):
            raise ValueError(f"test-set has only {len(self.tests)} tests")
        return TestSet(self.tests[:m])

    def partition(self, chunk: int) -> list["TestSet"]:
        """Split into chunks of at most ``chunk`` tests (advanced SAT
        heuristic: test-set partitioning)."""
        if chunk < 1:
            raise ValueError("chunk must be positive")
        return [
            TestSet(self.tests[i : i + chunk])
            for i in range(0, len(self.tests), chunk)
        ]

    def outputs(self) -> set[str]:
        """All erroneous outputs referenced by the tests."""
        return {t.output for t in self.tests}

    def vectors(self) -> list[dict[str, int]]:
        """Input vectors of all tests, in order.

        The pattern-list form the batched simulation engines
        (:mod:`repro.sim.parallel`, :mod:`repro.sim.batchfault`) consume.
        """
        return [dict(t.vector) for t in self.tests]

    @staticmethod
    def from_triples(
        triples: Sequence[tuple[Mapping[str, int], str, int]]
    ) -> "TestSet":
        """Build a test-set from raw ``(vector, output, value)`` triples."""
        return TestSet(tuple(Test(v, o, val) for v, o, val in triples))
