"""Random generation of failing tests.

Draws random input vectors, simulates golden and faulty circuits
bit-parallel, and keeps vectors whose responses differ — each becomes one
or more ``(t, o, v)`` triples.  This is how test-bench simulation or
post-production test would surface failing tests in the paper's setting.

For hard-to-excite errors the SAT-based generator
(:mod:`repro.testgen.satgen`) completes the test-set.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..circuits.netlist import Circuit
from ..sim.faultsim import fault_table
from ..sim.logicsim import output_values
from .testset import Test, TestSet

__all__ = ["random_failing_tests", "tests_from_vectors"]


def tests_from_vectors(
    golden: Circuit,
    faulty: Circuit,
    vectors: Iterable[dict[str, int]],
    per_vector_outputs: int = 1,
    attach_expected: bool = False,
) -> list[Test]:
    """Turn failing vectors into test triples.

    ``per_vector_outputs`` bounds how many erroneous outputs of one vector
    become separate triples (the paper's Definition 1 ties each test to a
    single output ``o``).
    """
    vec_list = list(vectors)
    table = fault_table(golden, faulty, vec_list)
    tests: list[Test] = []
    for vector, failing in zip(vec_list, table):
        if not failing:
            continue
        expected = output_values(golden, vector) if attach_expected else None
        for out in failing[:per_vector_outputs]:
            tests.append(
                Test(
                    vector=vector,
                    output=out,
                    value=expected[out]
                    if expected is not None
                    else output_values(golden, vector)[out],
                    expected_outputs=expected,
                )
            )
    return tests


def random_failing_tests(
    golden: Circuit,
    faulty: Circuit,
    m: int,
    seed: int = 0,
    batch: int = 128,
    max_batches: int = 200,
    per_vector_outputs: int = 1,
    attach_expected: bool = False,
    unique_vectors: bool = True,
) -> TestSet:
    """Collect ``m`` failing tests from random vectors.

    Vectors are drawn uniformly; each batch is simulated bit-parallel on
    both circuits.  Raises RuntimeError when ``max_batches`` batches do not
    yield enough failing tests (callers then fall back to SAT-based
    generation).
    """
    rng = random.Random(seed)
    collected: list[Test] = []
    seen_vectors: set[tuple[int, ...]] = set()
    inputs = golden.inputs
    for _ in range(max_batches):
        batch_vectors: list[dict[str, int]] = []
        for _ in range(batch):
            bits = tuple(rng.getrandbits(1) for _ in inputs)
            if unique_vectors:
                if bits in seen_vectors:
                    continue
                seen_vectors.add(bits)
            batch_vectors.append(dict(zip(inputs, bits)))
        collected.extend(
            tests_from_vectors(
                golden,
                faulty,
                batch_vectors,
                per_vector_outputs=per_vector_outputs,
                attach_expected=attach_expected,
            )
        )
        if len(collected) >= m:
            return TestSet(tuple(collected[:m]))
    raise RuntimeError(
        f"only {len(collected)} of {m} failing tests found after "
        f"{max_batches} batches; use satgen.distinguishing_tests to complete"
    )
