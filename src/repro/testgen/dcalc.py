"""Composite good/faulty (D-calculus) circuit simulation.

Structural ATPG reasons in Roth's five-valued algebra: 0, 1, X plus the
composite values D (good 1 / faulty 0) and D̄ (good 0 / faulty 1).  This
module represents a composite value explicitly as the pair
``(good, faulty)`` with each component in the three-valued domain of
:mod:`repro.circuits.gates` — evaluation is then simply two ternary
evaluations, which makes every entry of the five-valued operation
tables correct by construction instead of hand-transcribed.

:func:`simulate_composite` performs the one topological pass PODEM needs:
good values follow the circuit, faulty values follow the circuit with the
fault site pinned to its stuck value.
"""

from __future__ import annotations

from typing import Mapping

from ..circuits.gates import GateType, X, eval_gate_ternary
from ..circuits.netlist import Circuit
from ..faults.models import StuckAtFault

__all__ = [
    "Composite",
    "D",
    "DBAR",
    "is_error",
    "is_unknown",
    "simulate_composite",
    "d_frontier",
    "error_at_output",
]

#: A composite value: (good value, faulty value), each in {0, 1, X}.
Composite = tuple[int, int]

#: Roth's D — good circuit computes 1, faulty circuit computes 0.
D: Composite = (1, 0)
#: Roth's D̄ — good circuit computes 0, faulty circuit computes 1.
DBAR: Composite = (0, 1)


def is_error(value: Composite) -> bool:
    """True for D or D̄: a definite good/faulty discrepancy.

    >>> is_error(D), is_error((1, 1)), is_error((1, X))
    (True, False, False)
    """
    good, faulty = value
    return good != X and faulty != X and good != faulty


def is_unknown(value: Composite) -> bool:
    """True when either component is still X."""
    return value[0] == X or value[1] == X


def simulate_composite(
    circuit: Circuit,
    assignment: Mapping[str, int],
    fault: StuckAtFault,
) -> dict[str, Composite]:
    """Composite values of every signal under a partial PI ``assignment``.

    ``assignment`` maps primary inputs to 0/1; unassigned inputs are X.
    The faulty component of the fault site is pinned to the stuck value —
    note the site's *good* component still follows the circuit, so the
    site carries D/D̄ exactly when the fault is activated.

    >>> from repro.circuits.library import c17
    >>> values = simulate_composite(c17(), {"G1": 0, "G3": 1}, StuckAtFault("G10", 0))
    >>> values["G10"]
    (1, 0)
    """
    values: dict[str, Composite] = {}
    for name in circuit.topological_order():
        gate = circuit.node(name)
        gtype = gate.gtype
        if gtype is GateType.INPUT:
            v = assignment.get(name, X)
            good = faulty = v if v == X else v & 1
        elif gtype is GateType.DFF:
            good = faulty = 0  # full-scan view: present state is a PPI
        else:
            fins = [values[f] for f in gate.fanins]
            good = eval_gate_ternary(gtype, [f[0] for f in fins])
            faulty = eval_gate_ternary(gtype, [f[1] for f in fins])
        if name == fault.signal:
            faulty = fault.value
        values[name] = (good, faulty)
    return values


def d_frontier(
    circuit: Circuit, values: Mapping[str, Composite]
) -> list[str]:
    """Gates whose output is still unknown but that have a D/D̄ input.

    These are the gates through which the fault effect can still be
    propagated — PODEM's propagation objectives come from here.
    """
    frontier = []
    for gate in circuit.gates:
        if not is_unknown(values[gate.name]):
            continue
        if any(is_error(values[f]) for f in gate.fanins):
            frontier.append(gate.name)
    return frontier


def error_at_output(circuit: Circuit, values: Mapping[str, Composite]) -> str | None:
    """First primary output carrying D/D̄, or None."""
    for out in circuit.outputs:
        if is_error(values[out]):
            return out
    return None
