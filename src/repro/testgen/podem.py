"""PODEM — path-oriented structural test generation for stuck-at faults.

The classic complete ATPG algorithm (Goel 1981): decisions are made only on
primary inputs, chosen by backtracing an *objective* through the circuit;
each decision is followed by composite good/faulty implication
(:mod:`repro.testgen.dcalc`); exhausting both values of every decided input
proves the fault untestable (redundant).

The search is guided by SCOAP testability measures: backtrace picks the
cheapest-to-control input, and propagation picks the D-frontier gate that
is cheapest to observe.  Guidance affects only speed — completeness follows
from the PI decision tree.

This complements the SAT-based generation of :mod:`repro.testgen.satgen`
(Larrabee's formulation, paper ref [11]); the ATPG flow in
:mod:`repro.testgen.atpg` can run either engine and the test-suite checks
they agree on detectability.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Mapping

from ..circuits.gates import CONTROLLING_VALUE, INVERTING, GateType, X
from ..circuits.netlist import Circuit
from ..faults.models import StuckAtFault
from .dcalc import (
    Composite,
    d_frontier,
    error_at_output,
    is_error,
    is_unknown,
    simulate_composite,
)
from .scoap import Testability, analyze_testability

__all__ = ["PodemStatus", "PodemOutcome", "podem"]


class PodemStatus(enum.Enum):
    """Outcome of a PODEM run."""

    FOUND = "found"
    UNDETECTABLE = "undetectable"
    ABORTED = "aborted"


@dataclass(frozen=True)
class PodemOutcome:
    """Result of :func:`podem`.

    ``vector`` is a complete primary-input assignment when ``status`` is
    FOUND (don't-care positions filled per the ``fill`` policy), otherwise
    None.  ``backtracks`` and ``decisions`` expose search effort for the
    benchmark harness.
    """

    status: PodemStatus
    vector: dict[str, int] | None
    decisions: int
    backtracks: int

    @property
    def found(self) -> bool:
        return self.status is PodemStatus.FOUND


def podem(
    circuit: Circuit,
    fault: StuckAtFault,
    backtrack_limit: int = 20_000,
    fill: str = "random",
    seed: int = 0,
    testability: Testability | None = None,
) -> PodemOutcome:
    """Generate a test vector for ``fault`` in combinational ``circuit``.

    Returns FOUND with a vector, UNDETECTABLE when the complete decision
    tree is exhausted (the fault is redundant), or ABORTED past
    ``backtrack_limit`` backtracks.

    ``fill`` controls don't-care inputs of a found vector: ``"random"``
    (seeded), ``"zero"`` or ``"one"``.  Pass a precomputed ``testability``
    when generating many tests for the same circuit.

    >>> from repro.circuits.library import c17
    >>> outcome = podem(c17(), StuckAtFault("G16", 0))
    >>> outcome.found
    True
    """
    if fault.signal not in circuit:
        raise ValueError(f"unknown fault site {fault.signal!r}")
    if fill not in ("random", "zero", "one"):
        raise ValueError(f"unknown fill policy {fill!r}")
    measures = testability if testability is not None else analyze_testability(circuit)
    assignment: dict[str, int] = {}
    # Decision stack: (pi, value, both_tried).
    stack: list[tuple[str, int, bool]] = []
    decisions = 0
    backtracks = 0
    values = simulate_composite(circuit, assignment, fault)
    while True:
        if error_at_output(circuit, values) is not None:
            return PodemOutcome(
                status=PodemStatus.FOUND,
                vector=_filled(circuit, assignment, fill, seed),
                decisions=decisions,
                backtracks=backtracks,
            )
        objective = _objective(circuit, values, fault, measures)
        if objective is not None:
            pi, value = _backtrace(circuit, values, objective, measures)
            assignment[pi] = value
            stack.append((pi, value, False))
            decisions += 1
            values = simulate_composite(circuit, assignment, fault)
            continue
        # Dead end: flip the most recent decision whose alternative is untried.
        backtracks += 1
        if backtracks > backtrack_limit:
            return PodemOutcome(
                status=PodemStatus.ABORTED,
                vector=None,
                decisions=decisions,
                backtracks=backtracks,
            )
        while stack:
            pi, value, both_tried = stack.pop()
            del assignment[pi]
            if not both_tried:
                assignment[pi] = value ^ 1
                stack.append((pi, value ^ 1, True))
                break
        else:
            return PodemOutcome(
                status=PodemStatus.UNDETECTABLE,
                vector=None,
                decisions=decisions,
                backtracks=backtracks,
            )
        values = simulate_composite(circuit, assignment, fault)


def _filled(
    circuit: Circuit, assignment: Mapping[str, int], fill: str, seed: int
) -> dict[str, int]:
    """Complete ``assignment`` over all primary inputs per the fill policy."""
    rng = random.Random(seed)
    vector = {}
    for pi in circuit.inputs:
        if pi in assignment:
            vector[pi] = assignment[pi]
        elif fill == "zero":
            vector[pi] = 0
        elif fill == "one":
            vector[pi] = 1
        else:
            vector[pi] = rng.getrandbits(1)
    return vector


def _objective(
    circuit: Circuit,
    values: Mapping[str, Composite],
    fault: StuckAtFault,
    measures: Testability,
) -> tuple[str, int] | None:
    """Next (signal, value) goal, or None when this branch is a dead end.

    Activation first: the fault site's good value must become the
    complement of the stuck value.  Then propagation: drive an unknown
    input of the most observable D-frontier gate to its non-controlling
    value.  The X-path check prunes branches whose fault effect cannot
    reach an output anymore.
    """
    site = values[fault.signal]
    if site[0] == X:
        return fault.signal, fault.value ^ 1
    if not is_error(site):
        return None  # good value equals the stuck value: not activatable
    frontier = d_frontier(circuit, values)
    if not frontier:
        return None  # effect masked everywhere
    if not _x_path_exists(circuit, values):
        return None
    frontier.sort(key=lambda g: (measures.co.get(g, 0), g))
    for gate_name in frontier:
        gate = circuit.node(gate_name)
        control = CONTROLLING_VALUE.get(gate.gtype)
        target = 0 if control is None else control ^ 1
        for fin in gate.fanins:
            if values[fin][0] == X:
                return fin, target
    return None  # frontier inputs all bound: implication will resolve it


def _x_path_exists(circuit: Circuit, values: Mapping[str, Composite]) -> bool:
    """True when some D/D̄ signal reaches a primary output through
    unknown-valued signals (the classic X-path check)."""
    fanouts = circuit.fanouts()
    outputs = set(circuit.outputs)
    seeds = [name for name, v in values.items() if is_error(v)]
    seen: set[str] = set()
    stack = list(seeds)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        ok = is_error(values[name]) or is_unknown(values[name])
        if not ok:
            continue
        if name in outputs:
            return True
        stack.extend(fanouts[name])
    return False


def _backtrace(
    circuit: Circuit,
    values: Mapping[str, Composite],
    objective: tuple[str, int],
    measures: Testability,
) -> tuple[str, int]:
    """Walk the objective back to an unassigned primary input.

    At each gate the unknown input with the lowest controllability cost for
    the required value is chosen; inversions flip the target value.  The
    walk always terminates at a PI with an unknown good value (a gate with
    unknown output has at least one unknown input).
    """
    signal, value = objective
    while True:
        gate = circuit.node(signal)
        if gate.is_input:
            return signal, value
        if gate.gtype is GateType.DFF:  # pragma: no cover - scan view only
            raise ValueError("PODEM requires a combinational (full-scan) circuit")
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            # Constants cannot be driven; pick any unknown PI to split on.
            for pi in circuit.inputs:
                if values[pi][0] == X:
                    return pi, value
            raise AssertionError("backtrace reached a constant with no free PI")
        inverting = INVERTING.get(gate.gtype, False)
        unknown = [f for f in gate.fanins if values[f][0] == X]
        if not unknown:  # pragma: no cover - defensive
            raise AssertionError("backtrace invariant violated: no X input")
        next_value = value ^ 1 if inverting else value
        cost = measures.cc1 if next_value == 1 else measures.cc0
        signal = min(unknown, key=lambda f: (cost.get(f, 0), f))
        value = next_value
