"""SCOAP testability measures (controllability and observability).

The Sandia Controllability/Observability Analysis Program metrics guide the
structural ATPG in :mod:`repro.testgen.podem`: backtrace prefers the input
that is cheapest to set (controllability) and the D-frontier gate whose
output is cheapest to observe (observability).  They are classic linear-time
structural estimates — no simulation involved.

Definitions (combinational SCOAP):

* ``CC0(s)`` / ``CC1(s)`` — the number of signal assignments needed to set
  ``s`` to 0 / 1.  Primary inputs cost 1; every gate adds 1 to the cost of
  its cheapest way of producing the value.
* ``CO(s)`` — the number of assignments needed to propagate a change on
  ``s`` to a primary output.  Primary outputs cost 0; driving a gate adds
  the cost of setting its other inputs to non-controlling values plus 1.

>>> from repro.circuits.library import c17
>>> cc0, cc1 = controllability(c17())
>>> cc0["G1"], cc1["G1"]
(1, 1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit

__all__ = ["controllability", "observability", "Testability", "analyze_testability"]

#: Effectively-infinite cost for unreachable values (e.g. CC1 of CONST0).
INFINITE_COST = 10**9


def _xor_costs(in_costs: list[tuple[int, int]]) -> tuple[int, int]:
    """Min cost of parity 0 / parity 1 over the inputs (DP over parity)."""
    even, odd = 0, INFINITE_COST
    for c0, c1 in in_costs:
        new_even = min(even + c0, odd + c1)
        new_odd = min(even + c1, odd + c0)
        even, odd = min(new_even, INFINITE_COST), min(new_odd, INFINITE_COST)
    return even, odd


def controllability(circuit: Circuit) -> tuple[dict[str, int], dict[str, int]]:
    """SCOAP combinational controllabilities ``(CC0, CC1)`` per signal.

    DFF outputs are treated as pseudo-primary inputs (cost 1), matching the
    full-scan view every ATPG flow here operates on.
    """
    cc0: dict[str, int] = {}
    cc1: dict[str, int] = {}
    for name in circuit.topological_order():
        gate = circuit.node(name)
        gtype = gate.gtype
        if gtype in (GateType.INPUT, GateType.DFF):
            cc0[name], cc1[name] = 1, 1
            continue
        if gtype is GateType.CONST0:
            cc0[name], cc1[name] = 0, INFINITE_COST
            continue
        if gtype is GateType.CONST1:
            cc0[name], cc1[name] = INFINITE_COST, 0
            continue
        costs = [(cc0[f], cc1[f]) for f in gate.fanins]
        if gtype is GateType.BUF:
            c0, c1 = costs[0]
        elif gtype is GateType.NOT:
            c1, c0 = costs[0]
        elif gtype in (GateType.AND, GateType.NAND):
            all1 = sum(c[1] for c in costs)
            any0 = min(c[0] for c in costs)
            c0, c1 = any0, all1
            if gtype is GateType.NAND:
                c0, c1 = c1, c0
        elif gtype in (GateType.OR, GateType.NOR):
            all0 = sum(c[0] for c in costs)
            any1 = min(c[1] for c in costs)
            c0, c1 = all0, any1
            if gtype is GateType.NOR:
                c0, c1 = c1, c0
        elif gtype in (GateType.XOR, GateType.XNOR):
            even, odd = _xor_costs(costs)
            c0, c1 = (even, odd) if gtype is GateType.XOR else (odd, even)
        else:  # pragma: no cover - defensive
            raise ValueError(f"no SCOAP rule for {gtype}")
        cc0[name] = min(c0 + 1, INFINITE_COST)
        cc1[name] = min(c1 + 1, INFINITE_COST)
    return cc0, cc1


def observability(
    circuit: Circuit,
    cc: tuple[Mapping[str, int], Mapping[str, int]] | None = None,
) -> dict[str, int]:
    """SCOAP combinational observability ``CO`` per signal.

    A fanout stem takes the minimum over its branches; primary outputs have
    observability 0.  Signals that cannot reach an output get
    :data:`INFINITE_COST`.
    """
    cc0, cc1 = cc if cc is not None else controllability(circuit)
    co: dict[str, int] = {name: INFINITE_COST for name in circuit.nodes}
    for out in circuit.outputs:
        co[out] = 0
    for name in reversed(circuit.topological_order()):
        gate = circuit.node(name)
        if gate.is_input or gate.gtype is GateType.DFF:
            continue
        gtype = gate.gtype
        out_cost = co[name]
        if out_cost >= INFINITE_COST:
            continue
        for fin in gate.fanins:
            if gtype in (GateType.BUF, GateType.NOT):
                side = 0
            elif gtype in (GateType.AND, GateType.NAND):
                side = sum(cc1[o] for o in gate.fanins if o != fin)
            elif gtype in (GateType.OR, GateType.NOR):
                side = sum(cc0[o] for o in gate.fanins if o != fin)
            elif gtype in (GateType.XOR, GateType.XNOR):
                side = sum(min(cc0[o], cc1[o]) for o in gate.fanins if o != fin)
            else:  # pragma: no cover - constants have no fanins
                continue
            candidate = min(out_cost + side + 1, INFINITE_COST)
            if candidate < co[fin]:
                co[fin] = candidate
    return co


@dataclass(frozen=True)
class Testability:
    """Bundle of SCOAP measures for a circuit."""

    __test__ = False  # not a pytest class despite the name

    cc0: Mapping[str, int]
    cc1: Mapping[str, int]
    co: Mapping[str, int]

    def hardest_signals(self, n: int = 10) -> list[tuple[str, int]]:
        """Signals ranked by combined testability cost (hardest first).

        The cost of signal ``s`` is ``min(CC0, CC1) + CO`` — a cheap proxy
        for how hard the stuck-at faults at ``s`` are to test.
        """
        scored = [
            (name, min(self.cc0[name], self.cc1[name]) + self.co[name])
            for name in self.cc0
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:n]


def analyze_testability(circuit: Circuit) -> Testability:
    """Compute all SCOAP measures for ``circuit`` in two linear passes."""
    cc = controllability(circuit)
    return Testability(cc0=cc[0], cc1=cc[1], co=observability(circuit, cc))
