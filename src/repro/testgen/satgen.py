"""SAT-based distinguishing-test generation (miter construction).

When random search cannot excite an error, a *miter* — golden and faulty
copies sharing primary inputs, with the requirement that some output pair
differs — turns test generation into a SAT query, exactly the ATPG-via-SAT
idea of Larrabee (paper ref [11]).  Blocking clauses over the input
variables enumerate *distinct* distinguishing vectors.
"""

from __future__ import annotations

from ..circuits.netlist import Circuit
from ..sat.cnf import CNF
from ..sat.solver import Solver
from ..sat.tseitin import encode_circuit
from ..sim.logicsim import output_values
from .testset import Test, TestSet

__all__ = ["MiterGenerator", "distinguishing_tests", "are_equivalent"]


class MiterGenerator:
    """Incremental enumerator of distinguishing input vectors.

    Builds the miter once; every :meth:`next_test` call returns a fresh
    failing test and blocks its input vector.

    >>> # doctest setup omitted; see tests/testgen/test_satgen.py
    """

    def __init__(self, golden: Circuit, faulty: Circuit) -> None:
        if golden.inputs != faulty.inputs:
            raise ValueError("golden and faulty must share primary inputs")
        if set(golden.outputs) != set(faulty.outputs):
            raise ValueError("golden and faulty must share primary outputs")
        self._golden = golden
        self._faulty = faulty
        cnf = CNF()
        self._gold_vars = encode_circuit(cnf, golden, prefix="g:")
        self._fault_vars = encode_circuit(
            cnf,
            faulty,
            prefix="f:",
            input_vars={pi: self._gold_vars[pi] for pi in golden.inputs},
        )
        # One difference indicator per output; at least one must be set.
        diff_vars = []
        for out in golden.outputs:
            d = cnf.new_var(f"diff:{out}")
            a, b = self._gold_vars[out], self._fault_vars[out]
            # d -> (a xor b)
            cnf.add_clause([-d, a, b])
            cnf.add_clause([-d, -a, -b])
            diff_vars.append(d)
        cnf.add_clause(diff_vars)
        self._diff_of = dict(zip(golden.outputs, diff_vars))
        self._cnf = cnf
        self._solver: Solver = cnf.to_solver()

    def next_test(
        self, output: str | None = None, attach_expected: bool = False
    ) -> Test | None:
        """Return a fresh failing test (None when none remains).

        ``output`` restricts the search to vectors that fail at that
        specific primary output.
        """
        assumptions = [self._diff_of[output]] if output is not None else []
        if not self._solver.solve(assumptions):
            return None
        vector = {
            pi: int(bool(self._solver.value(self._gold_vars[pi])))
            for pi in self._golden.inputs
        }
        expected = output_values(self._golden, vector)
        observed = output_values(self._faulty, vector)
        failing = [o for o in self._golden.outputs if expected[o] != observed[o]]
        chosen = output if output is not None else failing[0]
        # Block this exact input vector.
        self._solver.add_clause(
            [
                (-self._gold_vars[pi] if vector[pi] else self._gold_vars[pi])
                for pi in self._golden.inputs
            ]
        )
        return Test(
            vector=vector,
            output=chosen,
            value=expected[chosen],
            expected_outputs=expected if attach_expected else None,
        )


def distinguishing_tests(
    golden: Circuit,
    faulty: Circuit,
    m: int,
    attach_expected: bool = False,
) -> TestSet:
    """Enumerate up to ``m`` distinct failing tests via the miter."""
    gen = MiterGenerator(golden, faulty)
    tests: list[Test] = []
    while len(tests) < m:
        test = gen.next_test(attach_expected=attach_expected)
        if test is None:
            break
        tests.append(test)
    return TestSet(tuple(tests))


def are_equivalent(golden: Circuit, faulty: Circuit) -> bool:
    """Combinational equivalence check (the miter is UNSAT)."""
    return MiterGenerator(golden, faulty).next_test() is None
