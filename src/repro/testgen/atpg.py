"""Production-test ATPG flow: collapsed fault list → compact pattern set.

This is the §1 "post-production test" motivation of the paper made
concrete: the flow takes a circuit, collapses its stuck-at universe
(:mod:`repro.faults.collapse`), generates a test per remaining fault with
either the structural PODEM engine or Larrabee-style SAT (paper ref [11]),
drops additionally-detected faults by deductive fault simulation, and
finally compacts the pattern set in reverse order.  The resulting patterns
are exactly what the stuck-at diagnosis flow
(:mod:`repro.diagnosis.stuckat`) consumes as its test set.

Both engines are *complete*: a fault reported undetectable is provably
redundant.  The test-suite cross-checks the two backends against each
other and against exhaustive simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..circuits.netlist import Circuit
from ..circuits.structure import fanout_cone
from ..faults.collapse import collapse_faults
from ..faults.models import StuckAtFault
from ..sat.cnf import CNF
from ..sim.batchevent import event_detected, event_fault_coverage
from ..sim.batchfault import batch_detected, batch_fault_coverage
from ..sim.codegen import codegen_detected, codegen_fault_coverage
from ..sim.deductive import FaultCoverage, deductive_coverage, deductive_detected
from ..sim.deductive_numpy import (
    deductive_coverage_numpy,
    deductive_detected_numpy,
)
from ..sat.tseitin import encode_circuit, encode_gate
from .podem import PodemStatus, podem
from .scoap import analyze_testability

__all__ = [
    "AtpgResult",
    "generate_tests",
    "sat_stuck_at_test",
    "compact_patterns",
]

#: Fault-simulation engines available for coverage/dropping, as
#: ``(detect, coverage)`` pairs.  ``"batch"`` (default) is the
#: fault-parallel numpy engine of :mod:`repro.sim.batchfault` — fastest
#: on the drop-and-compact workload, where every fault is swept anyway;
#: ``"deductive"`` is the classic pure-Python one-pass fault-list
#: propagator kept as the equivalence oracle; ``"deductive-numpy"`` is
#: its bitset-matrix vectorization (:mod:`repro.sim.deductive_numpy`);
#: ``"event"`` rides the batched event simulator
#: (:mod:`repro.sim.batchevent`), re-evaluating only fanout cones;
#: ``"codegen"`` runs the batch sweep through the per-circuit generated
#: straight-line kernel (:mod:`repro.sim.codegen`) — the opt-in fast
#: path when many sweeps hit the same circuit.  All engines produce
#: identical coverage — the cross-engine differential matrix
#: (``tests/sim/test_cross_engine.py``) pins this.
_SIM_ENGINES = {
    "batch": (batch_detected, batch_fault_coverage),
    "codegen": (codegen_detected, codegen_fault_coverage),
    "deductive": (deductive_detected, deductive_coverage),
    "deductive-numpy": (deductive_detected_numpy, deductive_coverage_numpy),
    "event": (event_detected, event_fault_coverage),
}


def _sim_engine(name: str):
    if name not in _SIM_ENGINES:
        # optional engines degrade to their interpreted twin instead of
        # raising (mirrors repro.sat.backends.BACKEND_FALLBACKS)
        from ..sim.engines import ENGINE_FALLBACKS

        fallback = ENGINE_FALLBACKS.get(name)
        if fallback in _SIM_ENGINES:
            name = fallback
        else:
            raise ValueError(
                f"unknown sim_engine {name!r}; choose from "
                f"{sorted(_SIM_ENGINES)}"
            )
    return _SIM_ENGINES[name]


@dataclass(frozen=True)
class AtpgResult:
    """Outcome of a :func:`generate_tests` run.

    ``coverage`` is measured over ``target_faults`` with the final pattern
    set; ``undetectable`` faults are proven redundant; ``aborted`` faults
    hit the search limit (so detectability is unresolved).
    """

    circuit_name: str
    backend: str
    patterns: tuple[dict[str, int], ...]
    coverage: FaultCoverage
    target_faults: tuple[StuckAtFault, ...]
    undetectable: tuple[StuckAtFault, ...]
    aborted: tuple[StuckAtFault, ...]

    @property
    def test_count(self) -> int:
        return len(self.patterns)

    @property
    def fault_coverage(self) -> float:
        """Detected / targeted (the manufacturing-test headline number)."""
        return self.coverage.coverage

    @property
    def fault_efficiency(self) -> float:
        """(detected + proven-redundant) / targeted — 1.0 means every
        fault was resolved one way or the other."""
        if not self.target_faults:
            return 1.0
        resolved = len(self.coverage.detected) + len(self.undetectable)
        return resolved / len(self.target_faults)

    def summary(self) -> str:
        """One-line report used by the CLI and the benchmark harness."""
        return (
            f"{self.circuit_name}: {self.test_count} patterns, "
            f"{len(self.target_faults)} target faults, "
            f"coverage {100 * self.fault_coverage:.1f}%, "
            f"efficiency {100 * self.fault_efficiency:.1f}%, "
            f"{len(self.undetectable)} redundant, {len(self.aborted)} aborted"
        )


def sat_stuck_at_test(
    circuit: Circuit, fault: StuckAtFault
) -> dict[str, int] | None:
    """SAT-based test generation for one stuck-at fault (Larrabee).

    Encodes the good circuit plus a faulty *cone* copy (only signals in the
    fanout cone of the fault site are duplicated, with the site pinned to
    its stuck value) and asks for an input assignment under which some
    output in the cone differs.  Returns a complete input vector, or None
    when the fault is provably undetectable.
    """
    cone = fanout_cone(circuit, fault.signal, include_self=True)
    cone_outputs = [o for o in circuit.outputs if o in cone]
    if not cone_outputs:
        return None
    cnf = CNF()
    gold = encode_circuit(cnf, circuit, prefix="g:")
    fvar: dict[str, int] = {}
    site_var = cnf.new_var(f"f:{fault.signal}")
    cnf.add_clause([site_var if fault.value else -site_var])
    fvar[fault.signal] = site_var
    for name in circuit.topological_order():
        if name not in cone or name == fault.signal:
            continue
        gate = circuit.node(name)
        out = cnf.new_var(f"f:{name}")
        fvar[name] = out
        ins = [fvar.get(f, gold[f]) for f in gate.fanins]
        encode_gate(cnf, gate.gtype, out, ins)
    diff_vars = []
    for out in cone_outputs:
        d = cnf.new_var(f"diff:{out}")
        a, b = gold[out], fvar[out]
        cnf.add_clause([-d, a, b])
        cnf.add_clause([-d, -a, -b])
        diff_vars.append(d)
    cnf.add_clause(diff_vars)
    solver = cnf.to_solver()
    if not solver.solve():
        return None
    return {
        pi: int(bool(solver.value(gold[pi]))) for pi in circuit.inputs
    }


def compact_patterns(
    circuit: Circuit,
    patterns: Sequence[Mapping[str, int]],
    faults: Sequence[StuckAtFault],
    sim_engine: str = "batch",
) -> list[dict[str, int]]:
    """Reverse-order static compaction.

    Walks the patterns last-to-first, keeping only those that detect a
    fault not covered by later (kept) patterns.  Later ATPG patterns tend
    to target the hard faults while detecting many easy ones by accident,
    so reverse order discards many early patterns.  Coverage over
    ``faults`` is preserved exactly; ``sim_engine`` selects the
    fault-simulation backend (identical results either way).
    """
    detect, coverage = _sim_engine(sim_engine)
    still_needed = set(
        coverage(circuit, list(patterns), faults=faults).detected
    )
    kept: list[dict[str, int]] = []
    for pattern in reversed(list(patterns)):
        if not still_needed:
            break
        detected = detect(
            circuit, pattern, faults=sorted(still_needed, key=lambda f: (f.signal, f.value))
        )
        if detected:
            kept.append(dict(pattern))
            still_needed -= detected
    kept.reverse()
    return kept


def generate_tests(
    circuit: Circuit,
    faults: Sequence[StuckAtFault] | None = None,
    backend: str = "podem",
    collapse: bool = True,
    backtrack_limit: int = 20_000,
    fill: str = "random",
    seed: int = 0,
    compact: bool = True,
    sim_engine: str = "batch",
) -> AtpgResult:
    """Run the full ATPG flow on a combinational ``circuit``.

    ``faults`` defaults to the full stuck-at universe, collapsed when
    ``collapse`` is set.  ``backend`` selects ``"podem"`` or ``"sat"``.
    Detected faults are dropped from the target list by fault simulation
    after every generated pattern; ``sim_engine`` picks the simulator —
    ``"batch"`` (fault-parallel numpy, default), ``"deductive"`` (the
    pure-Python fault-list oracle), ``"deductive-numpy"`` (bitset-matrix
    deductive) or ``"event"`` (batched event-driven) — with identical
    coverage any way.

    >>> from repro.circuits.library import c17
    >>> result = generate_tests(c17(), seed=1)
    >>> result.fault_coverage
    1.0
    """
    if backend not in ("podem", "sat"):
        raise ValueError(f"unknown ATPG backend {backend!r}")
    detect, coverage_fn = _sim_engine(sim_engine)
    if faults is None:
        if collapse:
            target = collapse_faults(circuit).representatives
        else:
            from ..faults.collapse import full_stuck_at_universe

            target = full_stuck_at_universe(circuit)
    else:
        target = tuple(faults)
    testability = analyze_testability(circuit) if backend == "podem" else None
    remaining = list(target)
    patterns: list[dict[str, int]] = []
    undetectable: list[StuckAtFault] = []
    aborted: list[StuckAtFault] = []
    while remaining:
        fault = remaining.pop(0)
        vector: dict[str, int] | None = None
        if backend == "podem":
            outcome = podem(
                circuit,
                fault,
                backtrack_limit=backtrack_limit,
                fill=fill,
                seed=seed + len(patterns),
                testability=testability,
            )
            if outcome.status is PodemStatus.UNDETECTABLE:
                undetectable.append(fault)
                continue
            if outcome.status is PodemStatus.ABORTED:
                aborted.append(fault)
                continue
            vector = outcome.vector
        else:
            vector = sat_stuck_at_test(circuit, fault)
            if vector is None:
                undetectable.append(fault)
                continue
        assert vector is not None
        patterns.append(vector)
        detected = detect(circuit, vector, faults=[fault] + remaining)
        if fault not in detected:  # pragma: no cover - engines guarantee this
            raise AssertionError(
                f"generated vector does not detect {fault.describe()}"
            )
        remaining = [f for f in remaining if f not in detected]
    if compact and patterns:
        patterns = compact_patterns(
            circuit, patterns, target, sim_engine=sim_engine
        )
    coverage = coverage_fn(circuit, patterns, faults=target)
    return AtpgResult(
        circuit_name=circuit.name,
        backend=backend,
        patterns=tuple(patterns),
        coverage=coverage,
        target_faults=tuple(target),
        undetectable=tuple(undetectable),
        aborted=tuple(aborted),
    )
