"""Test generation: test triples, random failing vectors, and ATPG.

Three generations of test generation live here:

* random vectors filtered against a golden model
  (:mod:`~repro.testgen.random_gen`);
* SAT-based distinguishing tests via the miter construction
  (:mod:`~repro.testgen.satgen`, Larrabee — paper ref [11]);
* structural stuck-at ATPG: SCOAP testability, the D-calculus, PODEM and
  the full production-test flow with fault dropping and compaction
  (:mod:`~repro.testgen.scoap`, :mod:`~repro.testgen.dcalc`,
  :mod:`~repro.testgen.podem`, :mod:`~repro.testgen.atpg`).
"""

from .testset import Test, TestSet
from .random_gen import random_failing_tests, tests_from_vectors
from .satgen import MiterGenerator, distinguishing_tests, are_equivalent
from .scoap import Testability, analyze_testability, controllability, observability
from .dcalc import (
    Composite,
    D,
    DBAR,
    simulate_composite,
    d_frontier,
    error_at_output,
)
from .podem import PodemOutcome, PodemStatus, podem
from .atpg import AtpgResult, generate_tests, sat_stuck_at_test, compact_patterns

__all__ = [
    "Test",
    "TestSet",
    "random_failing_tests",
    "tests_from_vectors",
    "MiterGenerator",
    "distinguishing_tests",
    "are_equivalent",
    "Testability",
    "analyze_testability",
    "controllability",
    "observability",
    "Composite",
    "D",
    "DBAR",
    "simulate_composite",
    "d_frontier",
    "error_at_output",
    "PodemOutcome",
    "PodemStatus",
    "podem",
    "AtpgResult",
    "generate_tests",
    "sat_stuck_at_test",
    "compact_patterns",
]
