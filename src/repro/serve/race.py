"""First-valid-answer-wins strategy races with cooperative cancellation.

One device, one shared :class:`~repro.diagnosis.core.DiagnosisSession`,
several strategy *legs* running concurrently: the SAFARI greedy climbs
(fast approximate first answer), the implicit-hitting-set loop (minimum
cardinality without full enumeration) and the complete BSAT enumeration
(incremental auto-``k``).  The first leg to produce a solution wins —
every leg only ever reports *verified valid* corrections, so the winner
needs no post-hoc validation — and the losers are cancelled through the
``should_stop`` callback each strategy polls at its check interval (one
retraction attempt / hitting-set round / solver call).  This turns the
20–800× first-answer gaps ``bench_candidate_search.py`` measures into
reclaimed throughput: the complete-enumeration tail is simply not run
once a valid answer exists.

Legs are *threads*, matching the service's thread-per-shard design (see
``serve.service``).  In the hedged configuration (``stagger > 0``, the
service default) each delayed leg runs on its **own session** cloned
from the caller's — same circuit, tests, seed and master skeleton — so
concurrent legs share no mutable state and the first leg starts cold
immediately, building only the substrate it actually needs.  In the
unhedged all-at-once race the legs share the caller's session, so the
common substrate (rect words, responses, observation candidates) is
pre-materialized here before the threads start and the race only
reads it; each leg then builds its own solver state under distinct
session cache keys (master view for BSAT, hitting-set state for IHS,
the stateless bit-parallel oracle for greedy).

With ``strategies=("bsat",)`` the race degenerates to one inline
complete enumeration — the reference mode whose answers are
bit-identical to the sequential baseline (used by the parity gate of
``bench_serve.py``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..diagnosis.base import Correction, SolutionSetResult
from ..diagnosis.core import DiagnosisSession, diagnose
from ..sat.budget import Budget

__all__ = ["RaceOutcome", "race_device", "DEFAULT_STRATEGIES"]

DEFAULT_STRATEGIES = ("greedy-stochastic", "ihs", "bsat")

#: auto-k cap for the BSAT leg when the device carries no ``k`` hint.
_DEFAULT_K_MAX = 4


@dataclass
class RaceOutcome:
    """What one device's race produced."""

    winner: str | None = None
    result: SolutionSetResult | None = None
    #: The winning leg's minimum-size solution, sorted (None: no leg
    #: produced a solution before cancellation/timeout).
    answer: tuple[str, ...] | None = None
    solutions: tuple[Correction, ...] = ()
    elapsed: float = 0.0
    timed_out: bool = False
    cancelled: bool = False
    #: Legs that reported a cancelled (raced-and-lost) run.
    cancelled_legs: int = 0
    #: Hedged legs that never started because a winner emerged inside
    #: their stagger delay (cancelled work avoided entirely).
    skipped_legs: int = 0
    #: Leg name -> summary dict (for observability counters).
    legs: dict = field(default_factory=dict)


def _pick_answer(
    solutions: tuple[Correction, ...]
) -> tuple[str, ...] | None:
    if not solutions:
        return None
    return tuple(sorted(min(solutions, key=lambda s: (len(s), sorted(s)))))


def run_leg(
    session: DiagnosisSession,
    strategy: str,
    k: int | None,
    first_only: bool,
    should_stop,
    solver_backend: str | None = None,
    budget: Budget | None = None,
) -> SolutionSetResult:
    """One strategy leg with race-appropriate limits.

    ``first_only`` runs each leg to its *first* solution (the racing
    mode); otherwise the leg runs to completion (the reference mode).
    ``budget`` (one per leg — budgets are not thread-safe) threads
    solver-level cancellation into the leg: the SAT search itself polls
    every ``budget.conflict_poll_interval`` conflicts, so a cancelled
    or past-deadline leg stops mid-solve instead of at the next
    solver-call boundary.
    """
    options: dict = {"should_stop": should_stop}
    if budget is not None:
        options["budget"] = budget
    if solver_backend is not None:
        options["solver_backend"] = solver_backend
    if strategy == "greedy-stochastic":
        if first_only:
            options["max_solutions"] = 1
        return diagnose(
            session, k=None, strategy="greedy-stochastic", **options
        )
    if strategy == "ihs":
        if first_only:
            options["solution_limit"] = 1
        return diagnose(session, k=k, strategy="ihs", **options)
    if strategy == "bsat":
        if first_only:
            options["solution_limit"] = 1
        return diagnose(
            session,
            k=k if k is not None else _DEFAULT_K_MAX,
            strategy="bsat-auto-k",
            **options,
        )
    raise ValueError(
        f"unknown race strategy {strategy!r} "
        "(expected greedy-stochastic, ihs or bsat)"
    )


def _prematerialize(session: DiagnosisSession) -> None:
    """Build every substrate the legs share *before* they run.

    The legs then only read these memoized structures; the remaining
    shared mutations (per-strategy solver states) live under distinct
    session cache keys, one per leg.  Only the *unhedged* race pays
    this upfront cost — hedged delayed legs get private sessions
    instead (see :func:`_leg_session`).
    """
    space = session.space()
    space.singleton_rect_words()
    session.failing_word()
    for j in range(session.m):
        space.observation_candidates(j)


def _leg_session(session: DiagnosisSession) -> DiagnosisSession:
    """A private session for one hedged leg: same circuit, tests, seed
    and master skeleton as the caller's, but no shared mutable caches —
    concurrent legs cannot corrupt each other's memoization, and no
    substrate needs pre-materializing before the race starts."""
    clone = DiagnosisSession(
        session.circuit,
        session.tests,
        constrain_all_outputs=session.constrain_all_outputs,
        solver_backend=session.solver_backend,
        seed=session.seed,
    )
    skeleton = getattr(session, "master_skeleton", None)
    if skeleton is not None:
        clone.master_skeleton = skeleton
    return clone


def race_device(
    session: DiagnosisSession,
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    k: int | None = None,
    first_only: bool = True,
    cancel: threading.Event | None = None,
    deadline: float | None = None,
    solver_backend: str | None = None,
    stagger: float = 0.0,
    conflict_poll_interval: int = 64,
) -> RaceOutcome:
    """Race ``strategies`` on one prepared session, first valid answer
    wins.

    ``cancel`` is the shard watchdog's plug: once set, every leg stops
    at its next check interval and the race returns with
    ``cancelled=True``.  ``deadline`` (``time.monotonic()`` timestamp)
    bounds how long the race *waits* for its legs; legs still running
    at the deadline are cancelled and abandoned (they stop at their
    next poll) and the outcome reports ``timed_out=True``.

    ``stagger`` hedges the race: leg ``i`` starts ``i * stagger``
    seconds after the first, so when the fast approximate leg answers
    inside the delay the heavier legs are *skipped* rather than
    cancelled (their work never starts — the big lever under the GIL,
    where concurrent CPU-bound legs otherwise slow each other down).
    A slow first leg degrades gracefully into the full concurrent race,
    with each delayed leg on a private cloned session so the overlap
    shares no mutable state.

    Every leg carries its own :class:`~repro.sat.budget.Budget`
    (deadline + the race's stop signals, polled in the SAT search every
    ``conflict_poll_interval`` conflicts), so cancellation lands
    mid-solve within a bounded number of conflicts — an abandoned leg
    does not burn CPU until its next solver-call boundary.
    """
    if not strategies:
        raise ValueError("the race needs at least one strategy")
    outcome = RaceOutcome()
    start = time.monotonic()

    def external_stop() -> bool:
        if cancel is not None and cancel.is_set():
            return True
        return deadline is not None and time.monotonic() >= deadline

    def leg_budget(stop_check) -> Budget:
        # One Budget per leg: the counters are mutated by the leg's own
        # thread only.  The deadline is enforced inside the solver; the
        # stop_check picks up race-level cancellation.
        return Budget(
            should_stop=stop_check,
            deadline=deadline,
            conflict_poll_interval=conflict_poll_interval,
        )

    if len(strategies) == 1:
        external = (
            external_stop if (cancel or deadline) else None
        )
        result = run_leg(
            session, strategies[0], k, first_only,
            should_stop=external,
            solver_backend=solver_backend,
            budget=(
                leg_budget(
                    (lambda: cancel.is_set()) if cancel is not None
                    else None
                )
                if (cancel is not None or deadline is not None)
                else None
            ),
        )
        outcome.legs[strategies[0]] = _leg_summary(result)
        if result.extras.get("cancelled"):
            outcome.cancelled = True
            outcome.cancelled_legs = 1
        if result.solutions and not outcome.cancelled:
            outcome.winner = strategies[0]
            outcome.result = result
            outcome.solutions = tuple(result.solutions)
            outcome.answer = _pick_answer(outcome.solutions)
        outcome.elapsed = time.monotonic() - start
        return outcome

    # Hedged circuit races isolate the delayed legs on private cloned
    # sessions, so nothing is shared and the first leg starts cold with
    # zero upfront cost.  Unhedged (or system-description) races share
    # the caller's session and must pre-materialize the read-only
    # substrate before any thread runs.
    shared = stagger <= 0.0 or getattr(session, "circuit", None) is None
    if shared:
        _prematerialize(session)
    stop = threading.Event()
    lock = threading.Lock()

    def should_stop() -> bool:
        return stop.is_set() or external_stop()

    def leg(name: str, delay: float) -> None:
        if delay > 0.0 and stop.wait(delay):
            # A winner emerged before this hedged leg started: skip it.
            with lock:
                outcome.legs[name] = {"skipped": True}
                outcome.skipped_legs += 1
            return
        leg_session = (
            session if shared or delay <= 0.0 else _leg_session(session)
        )
        try:
            result = run_leg(
                leg_session, name, k, first_only, should_stop,
                solver_backend=solver_backend,
                budget=leg_budget(should_stop),
            )
        except Exception as exc:  # a dead leg must not kill the race
            with lock:
                outcome.legs[name] = {"error": repr(exc)}
            return
        with lock:
            outcome.legs[name] = _leg_summary(result)
            if result.extras.get("cancelled"):
                outcome.cancelled_legs += 1
            elif result.solutions and outcome.winner is None:
                if not external_stop():
                    outcome.winner = name
                    outcome.result = result
                    outcome.solutions = tuple(result.solutions)
                    outcome.answer = _pick_answer(outcome.solutions)
                    stop.set()

    threads = [
        threading.Thread(target=leg, args=(name, i * stagger), daemon=True)
        for i, name in enumerate(strategies)
    ]
    for t in threads:
        t.start()
    for t in threads:
        remaining = (
            None if deadline is None else max(0.0, deadline - time.monotonic())
        )
        t.join(timeout=remaining)
        if t.is_alive():
            # Past the deadline: tell every leg to stop and hand the
            # device back to the service (the thread exits at its next
            # poll; the shard does not wait for it).
            stop.set()
            outcome.timed_out = True
            break
    if cancel is not None and cancel.is_set():
        outcome.cancelled = True
    outcome.elapsed = time.monotonic() - start
    return outcome


def _leg_summary(result: SolutionSetResult) -> dict:
    return {
        "approach": result.approach,
        "solutions": len(result.solutions),
        "complete": result.complete,
        "cancelled": bool(result.extras.get("cancelled")),
        "t_first": result.t_first,
        "t_all": result.t_all,
    }
