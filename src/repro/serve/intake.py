"""Device intake: the failing-device reports a diagnosis service consumes.

A *device* is one failing unit on the test floor: an instance of a known
circuit *design* plus the failing responses the tester observed.  The
service diagnoses the **design netlist** against those observations —
each test constrains one output to the value the tester observed (which
the design netlist does not produce), so the reported corrections are
the defect-site candidates that explain the device's behavior.

The JSON shape (one object per device, JSON-lines on the wire)::

    {"id": "lot3-die41", "design": "c17", "k": 1,
     "tests": [{"vector": {"a": 0, "b": 1, ...},
                "output": "o1", "value": 0}, ...]}

``tests[j].vector`` may be replaced by ``tests[j].bits``, a 0/1 string
in the design's primary-input order (the tester-log shape); parsing
``bits`` needs the design's input order, supplied by the caller as
``inputs_of``.  ``k`` optionally bounds the error cardinality for the
complete-enumeration legs (default: incremental auto-``k``).

All parsing raises :class:`ValueError` naming the offending field
(``devices[3].tests[1].output`` style) — never a bare ``KeyError`` /
``IndexError`` — matching the malformed-GCNF errors of
:mod:`repro.sat.dimacs`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..testgen.testset import Test, TestSet

__all__ = [
    "DeviceReport",
    "device_to_wire",
    "parse_device",
    "parse_device_line",
    "read_device_stream",
    "signature_seed",
]


@dataclass(frozen=True)
class DeviceReport:
    """One failing device: identity, design, observed failing tests."""

    device_id: str
    design: str
    tests: TestSet
    #: Error-cardinality bound for the enumeration legs (None: auto-k).
    k: int | None = None
    _signature: tuple = field(default=None, compare=False, repr=False)

    def signature(self) -> tuple:
        """Canonical failure signature.

        Devices of one design with equal signatures are *identical
        workloads* — the service collapses them onto one diagnosis (the
        batching path), so the signature must capture everything that
        influences the answer: every test's input vector, observed
        output and value, plus the cardinality bound.
        """
        sig = self._signature
        if sig is None:
            sig = (
                self.design,
                self.k,
                tuple(
                    (
                        tuple(sorted(t.vector.items())),
                        t.output,
                        t.value,
                    )
                    for t in self.tests
                ),
            )
            object.__setattr__(self, "_signature", sig)
        return sig


def signature_seed(signature: tuple) -> int:
    """Deterministic session seed for one failure signature.

    Derived from the signature (not the device id) so that every device
    carrying the same signature — and the sequential baseline replaying
    it — draws the identical stochastic-search stream.
    """
    return zlib.crc32(repr(signature).encode("utf-8")) & 0x7FFFFFFF


def device_to_wire(device: DeviceReport) -> dict:
    """The intake-JSON dict for ``device`` — the process-mode wire form.

    The exact inverse of :func:`parse_device` (in ``vector`` shape):
    only plain ``str``/``int`` containers, so the dict crosses a spawned
    ``multiprocessing`` queue without pickling any repro object, and
    re-parsing it yields a report with an identical failure signature
    (hence identical seeds, memo keys and journal keys).
    """
    wire: dict = {
        "id": device.device_id,
        "design": device.design,
        "tests": [
            {
                "vector": {k: int(v) for k, v in t.vector.items()},
                "output": t.output,
                "value": int(t.value),
            }
            for t in device.tests
        ],
    }
    if device.k is not None:
        wire["k"] = device.k
    return wire


def _require(data: Mapping, key: str, where: str):
    try:
        return data[key]
    except KeyError:
        raise ValueError(f"{where} is missing the {key!r} field") from None


def _bit(value, where: str) -> int:
    if not isinstance(value, bool) and value not in (0, 1):
        raise ValueError(f"{where} must be 0/1 or a boolean, got {value!r}")
    return int(value)


def _parse_test(
    data: object,
    where: str,
    inputs: Sequence[str] | None,
) -> Test:
    if not isinstance(data, Mapping):
        raise ValueError(f"{where} must be an object")
    output = _require(data, "output", where)
    if not isinstance(output, str):
        raise ValueError(f"{where}.output must be an output name (string)")
    value = _bit(_require(data, "value", where), f"{where}.value")
    if "vector" in data:
        raw = data["vector"]
        if not isinstance(raw, Mapping):
            raise ValueError(
                f"{where}.vector must map input names to 0/1"
            )
        vector = {}
        for name, bit in raw.items():
            if not isinstance(name, str):
                raise ValueError(
                    f"{where}.vector keys must be input names (strings)"
                )
            vector[name] = _bit(bit, f"{where}.vector[{name!r}]")
    elif "bits" in data:
        bits = data["bits"]
        if not isinstance(bits, str) or set(bits) - {"0", "1"}:
            raise ValueError(f"{where}.bits must be a 0/1 string")
        if inputs is None:
            raise ValueError(
                f"{where}.bits needs the design's input order; pass "
                "'vector' instead or supply inputs_of"
            )
        if len(bits) != len(inputs):
            raise ValueError(
                f"{where}.bits has {len(bits)} bits for "
                f"{len(inputs)} primary inputs"
            )
        vector = {name: int(b) for name, b in zip(inputs, bits)}
    else:
        raise ValueError(
            f"{where} needs a 'vector' (or 'bits') input assignment"
        )
    return Test(vector=vector, output=output, value=value)


def parse_device(
    data: object,
    where: str = "device",
    inputs_of: Callable[[str], Sequence[str]] | None = None,
) -> DeviceReport:
    """Validate one device object into a :class:`DeviceReport`."""
    if not isinstance(data, Mapping):
        raise ValueError(f"{where} must be a JSON object")
    device_id = _require(data, "id", where)
    if not isinstance(device_id, str) or not device_id:
        raise ValueError(f"{where}.id must be a non-empty string")
    design = _require(data, "design", where)
    if not isinstance(design, str) or not design:
        raise ValueError(f"{where}.design must be a non-empty string")
    k = data.get("k")
    if k is not None:
        if isinstance(k, bool) or not isinstance(k, int) or k < 1:
            raise ValueError(
                f"{where}.k must be a positive integer, got {k!r}"
            )
    raw_tests = _require(data, "tests", where)
    if isinstance(raw_tests, (str, bytes)) or not isinstance(
        raw_tests, Sequence
    ):
        raise ValueError(f"{where}.tests must be a list of test objects")
    if not raw_tests:
        raise ValueError(f"{where}.tests must not be empty")
    inputs = None
    if inputs_of is not None and any(
        isinstance(t, Mapping) and "bits" in t for t in raw_tests
    ):
        inputs = inputs_of(design)
    tests = TestSet(
        tuple(
            _parse_test(t, f"{where}.tests[{j}]", inputs)
            for j, t in enumerate(raw_tests)
        )
    )
    return DeviceReport(
        device_id=device_id, design=design, tests=tests, k=k
    )


def parse_device_line(
    line: str,
    lineno: int,
    inputs_of: Callable[[str], Sequence[str]] | None = None,
) -> DeviceReport:
    """Parse one JSON-lines record (1-based ``lineno`` for messages)."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"line {lineno}: invalid JSON ({exc})") from None
    return parse_device(
        data, where=f"line {lineno}: device", inputs_of=inputs_of
    )


def read_device_stream(
    lines: Iterable[str],
    inputs_of: Callable[[str], Sequence[str]] | None = None,
    on_error: Callable[[int, str], None] | None = None,
) -> Iterator[DeviceReport]:
    """Devices from a JSON-lines stream (blank / ``#`` lines skipped).

    By default a malformed line raises :class:`ValueError` (naming the
    line).  Pass ``on_error`` to run in skip-and-count mode instead:
    each bad line is reported as ``on_error(lineno, message)`` and the
    stream continues — one corrupt record cannot poison the devices
    behind it in the queue.
    """
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            yield parse_device_line(stripped, lineno, inputs_of=inputs_of)
        except ValueError as exc:
            if on_error is None:
                raise
            on_error(lineno, str(exc))
