"""Per-design artifact cache shared by every shard of the service.

All devices of one circuit design share everything that does not depend
on the observed failures: the parsed netlist, its compiled levelized
form (:func:`repro.sim.compiled.compile_circuit` caches into the
circuit object, so keeping one ``Circuit`` per design keeps the lane
simulator warm), the topological order, and — the expensive one — the
:class:`~repro.diagnosis.satdiag.MasterEncodingSkeleton`: select-line
layout, per-output fan-in cones and pre-encoded cone clause templates.
A device's master SAT instance is then *stamped* from the skeleton
instead of re-walking the netlist (see ``satdiag``).

The cache also holds the per-design **result memo** keyed by failure
signature: devices carrying an identical signature are the same
diagnosis workload by construction, so the first one's uint64-lane
simulation and race answer serve all of them (the batching path).
The memo is an LRU bounded by ``memo_max_entries`` (per design) —
million-device traffic with ever-fresh signatures evicts the coldest
entries instead of growing without bound; evictions are counted.

``stats`` counts builds and hits; the serve benchmark asserts
``skeleton_builds[design] == 1`` however many devices of the design
flow through — the acceptance criterion that the observation-
independent half is built exactly once per design.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..circuits import bench, library
from ..circuits.netlist import Circuit
from ..diagnosis.satdiag import MasterEncodingSkeleton
from ..sim.compiled import compile_circuit

__all__ = [
    "DEFAULT_MEMO_MAX_ENTRIES",
    "DesignArtifacts",
    "DesignCache",
    "SignatureMemo",
    "load_design",
]

#: Default per-design LRU bound for the signature result memo.  Generous
#: on purpose: a memo entry is a few answer tuples, so even thousands
#: per design are cheap — the cap only exists so an endless stream of
#: unique signatures cannot grow the map without bound.
DEFAULT_MEMO_MAX_ENTRIES = 4096


class SignatureMemo:
    """Bounded LRU of failure signature -> resolved-answer memo.

    The drop-in replacement for the unbounded dict the memo used to be:
    ``get`` refreshes recency, ``store`` is first-writer-wins (the
    service's exactly-once memo semantics) and evicts the least
    recently used entries past ``max_entries``.  Not thread-safe on its
    own — the service serializes access under its memo lock.
    """

    def __init__(self, max_entries: int = DEFAULT_MEMO_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.evictions = 0
        self._entries: OrderedDict[tuple, dict] = OrderedDict()

    def get(self, signature: tuple) -> dict | None:
        memo = self._entries.get(signature)
        if memo is not None:
            self._entries.move_to_end(signature)
        return memo

    def store(self, signature: tuple, memo: dict) -> bool:
        """Insert unless present; True when this call stored the entry."""
        if signature in self._entries:
            self._entries.move_to_end(signature)
            return False
        self._entries[signature] = memo
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
        return True

    def __contains__(self, signature: tuple) -> bool:
        return signature in self._entries

    def __len__(self) -> int:
        return len(self._entries)


def load_design(spec: str) -> Circuit:
    """Default design loader: a library name or a ``.bench`` path."""
    if spec in library.available_circuits():
        return library.get_circuit(spec)
    path = Path(spec)
    if not path.exists():
        raise ValueError(
            f"design {spec!r} is neither a library circuit "
            f"({', '.join(library.available_circuits())}) nor a file"
        )
    return bench.load(path)


@dataclass
class DesignArtifacts:
    """Everything device-independent about one circuit design."""

    name: str
    circuit: Circuit
    skeleton: MasterEncodingSkeleton
    #: Failure-signature -> resolved answer (the service fills this; one
    #: entry serves every device carrying the signature).  LRU-bounded.
    result_memo: SignatureMemo = field(default_factory=SignatureMemo)


class DesignCache:
    """Thread-safe once-per-design artifact store."""

    def __init__(
        self,
        loader: Callable[[str], Circuit] | None = None,
        memo_max_entries: int = DEFAULT_MEMO_MAX_ENTRIES,
    ) -> None:
        if memo_max_entries < 1:
            raise ValueError("memo_max_entries must be at least 1")
        self._loader = loader if loader is not None else load_design
        self.memo_max_entries = memo_max_entries
        self._lock = threading.Lock()
        self._designs: dict[str, DesignArtifacts] = {}
        self.stats = {
            "designs_built": 0,
            "design_hits": 0,
            "skeleton_builds": {},
        }

    def get(self, name: str) -> DesignArtifacts:
        """Artifacts for ``name``, built exactly once per design."""
        with self._lock:
            artifacts = self._designs.get(name)
            if artifacts is not None:
                self.stats["design_hits"] += 1
                return artifacts
            circuit = self._loader(name)
            # Warm the circuit-attached caches every device will hit:
            # the compiled levelized form feeds the uint64-lane
            # simulator, the topological order feeds the encoders.
            compile_circuit(circuit)
            circuit.topological_order()
            skeleton = MasterEncodingSkeleton(circuit)
            artifacts = DesignArtifacts(
                name=name,
                circuit=circuit,
                skeleton=skeleton,
                result_memo=SignatureMemo(self.memo_max_entries),
            )
            self._designs[name] = artifacts
            self.stats["designs_built"] += 1
            builds = self.stats["skeleton_builds"]
            builds[name] = builds.get(name, 0) + 1
            return artifacts

    def inputs_of(self, name: str) -> tuple[str, ...]:
        """Primary-input order of ``name`` (for ``bits`` intake)."""
        return tuple(self.get(name).circuit.inputs)

    def memo_evictions(self) -> int:
        """Total LRU evictions across every design's result memo."""
        with self._lock:
            return sum(
                a.result_memo.evictions for a in self._designs.values()
            )

    def __len__(self) -> int:
        return len(self._designs)
