"""The sharded asynchronous diagnosis service.

Orchestration only — the diagnosis itself happens in the shards
(:mod:`repro.serve.shard`) and their strategy races
(:mod:`repro.serve.race`).  The service owns:

* **Routing**: each device goes to a shard chosen by a stable hash of
  its design, so all devices of one design share that shard's warm
  sessions and the global :class:`~repro.serve.design.DesignCache`
  artifacts; retries rotate to a *different* shard.
* **Deadline/retry**: a watchdog thread cancels attempts past their
  deadline (the race legs stop at their next ``should_stop`` poll) and
  re-queues the device elsewhere, up to ``max_attempts``; a shard that
  dies (:class:`~repro.serve.shard.ShardKilled`) has its in-flight
  device and queued backlog re-routed the same way.
* **Exactly-once**: every device resolves to exactly one
  :class:`DeviceResult` however many attempts raced for it — the first
  resolution wins under the service lock, late/duplicate attempt
  results are counted and dropped.
* **Batching**: resolved answers are memoized per (design, failure
  signature); identical-signature devices collapse onto the first
  one's uint64-lane simulation and race.
* **Degradation**: a device that exhausts every attempt does not
  produce an empty ``timeout`` — the degradation ladder
  (:mod:`repro.serve.degrade`) salvages a bounded approximate answer or
  simulation-based guidance, stamped ``status="degraded"`` with its
  validity class.
* **Durability**: with a :class:`~repro.serve.journal.ResultJournal`
  every accepted device and resolution is appended to a fsync-batched
  WAL; resuming from its replay skips already-resolved signatures —
  exactly-once across process death.
* **Observability**: per-shard and service-wide counters
  (:meth:`DiagnosisService.stats`).
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..diagnosis.core import DiagnosisSession
from ..sat.backends import resolve_backend
from .degrade import run_degradation_ladder
from .design import DesignArtifacts, DesignCache
from .intake import DeviceReport, signature_seed
from .journal import JournalReplay, ResultJournal, signature_key
from .race import DEFAULT_STRATEGIES, RaceOutcome
from .shard import ServiceShard

__all__ = ["DeviceResult", "DiagnosisService"]


def _eager_warm_up() -> None:
    """JIT-compile the arena-jit kernels now, off the device path."""
    from ..sat import compiled

    compiled.warm_up()


@dataclass
class DeviceResult:
    """Exactly-once outcome for one device."""

    device_id: str
    design: str
    status: str  # "ok" | "degraded" | "timeout" | "error"
    answer: tuple[str, ...] | None = None
    cardinality: int | None = None
    solutions: tuple = ()
    winner: str | None = None
    attempts: int = 1
    shard: int | None = None
    latency: float = 0.0
    cached: bool = False
    error: str | None = None
    #: Worker-process index in process mode (``serve --workers N``);
    #: None for the in-process thread service.
    worker: int | None = None
    #: Ladder rung that produced a ``"degraded"`` result
    #: ("approximate" | "guidance"), with its validity class
    #: ("valid-sampled" | "guidance") — see :mod:`repro.serve.degrade`.
    degraded_rung: str | None = None
    validity: str | None = None
    #: True when the answer was replayed from the durable journal on
    #: resume instead of being re-diagnosed.
    journal_replayed: bool = False

    def to_dict(self) -> dict:
        return {
            "id": self.device_id,
            "design": self.design,
            "status": self.status,
            "answer": list(self.answer) if self.answer is not None else None,
            "cardinality": self.cardinality,
            "n_solutions": len(self.solutions),
            "winner": self.winner,
            "attempts": self.attempts,
            "shard": self.shard,
            "latency": self.latency,
            "cached": self.cached,
            "error": self.error,
            "worker": self.worker,
            "degraded_rung": self.degraded_rung,
            "validity": self.validity,
            "journal_replayed": self.journal_replayed,
        }


class _LinkedCancel:
    """Event-shaped cancel flag linked to an externally owned event.

    Process mode hands the service one external cancel event per device
    (set by the parent's control message).  ``set()`` flips only the
    local per-attempt flag — a retry gets a fresh local flag and must
    not be pre-cancelled by its predecessor — while ``is_set()`` ORs in
    the external event, so a parent-sent cancel reaches the race legs'
    ``Budget.should_stop`` polls mid-solve exactly like a watchdog
    deadline does.
    """

    __slots__ = ("_local", "_external")

    def __init__(self, external: threading.Event) -> None:
        self._local = threading.Event()
        self._external = external

    def set(self) -> None:
        self._local.set()

    def is_set(self) -> bool:
        return self._local.is_set() or self._external.is_set()

    @property
    def external_set(self) -> bool:
        return self._external.is_set()


@dataclass(eq=False)
class _Attempt:
    device: DeviceReport
    state: "_DeviceState"
    number: int
    shard_index: int
    cancel: threading.Event = field(default_factory=threading.Event)
    deadline: float | None = None


@dataclass
class _DeviceState:
    device: DeviceReport
    order: int
    submitted_at: float = 0.0
    attempts: int = 0
    resolved: bool = False
    result: DeviceResult | None = None
    current_attempt: _Attempt | None = None


class DiagnosisService:
    """Sharded, racing, exactly-once diagnosis over a device stream.

    Parameters
    ----------
    n_shards:
        Worker threads (each with a bounded queue — the queue bound is
        the admission control that keeps reported latencies honest).
    strategies:
        Race legs per device (:data:`~repro.serve.race.
        DEFAULT_STRATEGIES`); ``("bsat",)`` gives the bit-reproducible
        reference mode.
    policy:
        ``"first"`` — first valid answer wins, losers cancelled;
        ``"complete"`` — every leg runs to completion (use with one
        strategy for reference answers).
    timeout:
        Per-attempt deadline in seconds (None: no watchdog).
    max_attempts:
        Total attempts per device (1 = no retry).
    stagger:
        Hedge delay between race legs (seconds): leg ``i`` starts
        ``i * stagger`` after the first, and is skipped outright when a
        winner emerges first (see :func:`~repro.serve.race.race_device`).
        0 disables hedging (all legs start together).
    conflict_poll_interval:
        Solver-level cancellation granularity: every race leg carries a
        :class:`~repro.sat.budget.Budget` polled at least this often
        (in conflicts), so a deadline or cancellation lands mid-solve
        within a bounded number of conflicts rather than at the next
        solver-call boundary.
    degrade:
        When a device exhausts every attempt, walk the degradation
        ladder (:mod:`repro.serve.degrade`) — a bounded approximate
        search, then simulation-based guidance — and resolve
        ``status="degraded"`` instead of an empty ``timeout``.
        ``degrade_budget`` bounds the ladder's approximate rung in
        seconds.
    journal:
        A :class:`~repro.serve.journal.ResultJournal`: every accepted
        device and every resolution is appended to the durable WAL.
        ``resume_from`` (a :class:`~repro.serve.journal.JournalReplay`,
        usually ``read_journal(path)`` of the same file) replays
        already-resolved signatures without re-diagnosing —
        exactly-once across process death.
    fault_hook:
        Chaos/test injection: ``hook(shard_index, attempt)`` called
        before each attempt is processed; may sleep (hang) or raise
        :class:`~repro.serve.shard.ShardKilled` (crash).  See
        :mod:`repro.serve.chaos`.
    external_cancels:
        Mutable mapping ``device_id -> threading.Event`` consulted at
        dispatch: when a device has an entry its attempts carry a
        cancel flag linked to that event, and setting the event (the
        process-mode parent does, on a cancel message) stops the
        in-flight race mid-solve and resolves the device as
        ``status="timeout"`` without retry or degradation — the parent
        asked the device to be abandoned, not salvaged.

    Constructing the service with an ``arena-jit`` backend eagerly
    JIT-compiles the kernels (``sat.compiled.warm_up()``) so the
    compile cost lands at construction time, never on the first
    device's latency.
    """

    def __init__(
        self,
        n_shards: int = 2,
        strategies: Sequence[str] = DEFAULT_STRATEGIES,
        policy: str = "first",
        timeout: float | None = None,
        max_attempts: int = 2,
        queue_size: int = 2,
        stagger: float = 0.02,
        conflict_poll_interval: int = 64,
        degrade: bool = True,
        degrade_budget: float = 0.25,
        journal: ResultJournal | None = None,
        resume_from: JournalReplay | None = None,
        design_cache: DesignCache | None = None,
        solver_backend: str | None = None,
        fault_hook=None,
        external_cancels: dict[str, threading.Event] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if policy not in ("first", "complete"):
            raise ValueError("policy must be 'first' or 'complete'")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.strategies = tuple(strategies)
        if not self.strategies:
            raise ValueError("at least one strategy is required")
        for name in self.strategies:
            if name not in DEFAULT_STRATEGIES:
                raise ValueError(
                    f"unknown strategy {name!r} (expected one of "
                    f"{', '.join(DEFAULT_STRATEGIES)})"
                )
        if conflict_poll_interval < 1:
            raise ValueError("conflict_poll_interval must be at least 1")
        self.policy = policy
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.queue_size = queue_size
        self.stagger = stagger
        self.conflict_poll_interval = conflict_poll_interval
        self.degrade = degrade
        self.degrade_budget = degrade_budget
        self.journal = journal
        self.resume_from = resume_from
        self.solver_backend = solver_backend
        self.design_cache = (
            design_cache if design_cache is not None else DesignCache()
        )
        self.fault_hook = fault_hook
        self.external_cancels = external_cancels
        if resolve_backend(solver_backend) == "arena-jit":
            # Pay the JIT compile now, off every device's latency path
            # (idempotent: a warm process returns immediately).
            _eager_warm_up()
        self._shards = [
            ServiceShard(i, self, queue_size=queue_size)
            for i in range(n_shards)
        ]
        self._lock = threading.Lock()
        self._memo_lock = threading.Lock()
        self._inflight: set[_Attempt] = set()
        self._states: dict[str, _DeviceState] = {}
        self._resolved_count = 0
        self._all_done = threading.Event()
        self._stopping = threading.Event()
        self._watchdog: threading.Thread | None = None
        self.counters = {
            "devices": 0,
            "timeouts": 0,
            "retries": 0,
            "shard_deaths": 0,
            "failures": 0,
            "duplicate_results_dropped": 0,
            "late_results_dropped": 0,
            "memo_stores": 0,
            "degraded": 0,
            "journal_replayed": 0,
            "race_winners": {},
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, devices: Iterable[DeviceReport]) -> list[DeviceResult]:
        """Diagnose every device; results in input order, exactly once."""
        device_list = list(devices)
        seen: set[str] = set()
        for d in device_list:
            if d.device_id in seen:
                raise ValueError(
                    f"duplicate device id {d.device_id!r} in the stream"
                )
            seen.add(d.device_id)
        if not device_list:
            return []
        with self._lock:
            self.counters["devices"] += len(device_list)
            for order, device in enumerate(device_list):
                self._states[device.device_id] = _DeviceState(
                    device=device, order=order
                )
        for i, shard in enumerate(self._shards):
            if shard.is_alive():
                continue
            if shard.ident is not None:
                # A previous run() finished (or killed) this worker;
                # threads are one-shot, so replace it, carrying the
                # cumulative counters over.
                fresh = ServiceShard(
                    shard.index, self, queue_size=self.queue_size
                )
                fresh.stats = shard.stats
                self._shards[i] = shard = fresh
            shard.start()
        if self.timeout is not None and self._watchdog is None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="repro-serve-watchdog",
                daemon=True,
            )
            self._watchdog.start()
        try:
            for device in device_list:
                state = self._states[device.device_id]
                state.submitted_at = time.monotonic()
                if self._replay_from_journal(state):
                    continue
                if self.journal is not None:
                    self.journal.accepted(
                        device.device_id,
                        device.design,
                        signature_key(device.signature()),
                    )
                self._dispatch(state)
            self._all_done.wait()
        finally:
            self._shutdown()
            if self.journal is not None:
                self.journal.flush()
        ordered = sorted(
            (s for s in self._states.values()), key=lambda s: s.order
        )
        results = [s.result for s in ordered]
        with self._lock:
            self._states.clear()
            self._resolved_count = 0
            self._all_done.clear()
        return results

    def stats(self) -> dict:
        """Service + shard + design-cache counters (JSON-friendly)."""
        shard_stats = {
            f"shard{s.index}": dict(s.stats) for s in self._shards
        }
        signature_hits = sum(
            s.stats["signature_hits"] for s in self._shards
        )
        cancelled_legs = sum(
            s.stats["cancelled_legs"] for s in self._shards
        )
        skipped_legs = sum(
            s.stats["skipped_legs"] for s in self._shards
        )
        return {
            **{k: v for k, v in self.counters.items()},
            "signature_hits": signature_hits,
            "cancelled_legs": cancelled_legs,
            "skipped_legs": skipped_legs,
            **(
                {"journal": dict(self.journal.stats)}
                if self.journal is not None
                else {}
            ),
            "design_cache": {
                "designs_built": self.design_cache.stats["designs_built"],
                "design_hits": self.design_cache.stats["design_hits"],
                "skeleton_builds": dict(
                    self.design_cache.stats["skeleton_builds"]
                ),
                "memo_evictions": self.design_cache.memo_evictions(),
            },
            "shards": shard_stats,
        }

    # ------------------------------------------------------------------
    # journal resume
    # ------------------------------------------------------------------
    def _replay_from_journal(self, state: _DeviceState) -> bool:
        """Resolve ``state`` from the resume journal when its signature
        already carries an answer-bearing resolution (exactly-once
        across process death); ``timeout``/``error`` records re-run."""
        if self.resume_from is None:
            return False
        device = state.device
        record = self.resume_from.replayable(
            signature_key(device.signature())
        )
        if record is None:
            return False
        from .journal import _decode_solutions

        with self._lock:
            self.counters["journal_replayed"] += 1
        self._resolve(
            state,
            DeviceResult(
                device_id=device.device_id,
                design=device.design,
                status=record["status"],
                answer=(
                    tuple(record["answer"])
                    if record["answer"] is not None
                    else None
                ),
                cardinality=record["cardinality"],
                solutions=_decode_solutions(record["solutions"]),
                winner=record["winner"],
                attempts=0,
                shard=None,
                latency=time.monotonic() - state.submitted_at,
                cached=True,
                degraded_rung=record.get("degraded_rung"),
                validity=record.get("validity"),
                journal_replayed=True,
            ),
        )
        return True

    # ------------------------------------------------------------------
    # routing and dispatch
    # ------------------------------------------------------------------
    def _route(
        self, design: str, attempt_number: int, exclude: int | None
    ) -> ServiceShard:
        alive = [s for s in self._shards if s.alive_for_routing]
        if not alive:
            raise RuntimeError("no live shards remain")
        pool = alive
        if exclude is not None and len(alive) > 1:
            pool = [s for s in alive if s.index != exclude] or alive
        idx = (
            zlib.crc32(design.encode("utf-8")) + (attempt_number - 1)
        ) % len(pool)
        return pool[idx]

    def _dispatch(
        self, state: _DeviceState, exclude: int | None = None
    ) -> None:
        with self._lock:
            if state.resolved:
                return
            state.attempts += 1
            number = state.attempts
        shard = self._route(state.device.design, number, exclude)
        deadline = (
            time.monotonic() + self.timeout
            if self.timeout is not None
            else None
        )
        attempt = _Attempt(
            device=state.device,
            state=state,
            number=number,
            shard_index=shard.index,
            deadline=deadline,
        )
        if self.external_cancels is not None:
            external = self.external_cancels.get(state.device.device_id)
            if external is not None:
                attempt.cancel = _LinkedCancel(external)
        with self._lock:
            state.current_attempt = attempt
            if deadline is not None:
                self._inflight.add(attempt)
        self._submit(shard, attempt)

    def _submit(self, shard: ServiceShard, attempt: _Attempt) -> None:
        # Bounded-queue backpressure with a liveness check: if the
        # target shard dies while we wait, re-route instead of blocking
        # forever.
        while True:
            try:
                shard.submit(attempt, timeout=0.05)
                return
            except Exception:
                if attempt.state.resolved or attempt.cancel.is_set():
                    return
                if not shard.alive_for_routing or not shard.is_alive():
                    shard = self._route(
                        attempt.device.design,
                        attempt.number + 1,
                        shard.index,
                    )
                    attempt.shard_index = shard.index

    # ------------------------------------------------------------------
    # shard callbacks
    # ------------------------------------------------------------------
    def _memo_lookup(
        self, artifacts: DesignArtifacts, signature: tuple
    ) -> dict | None:
        with self._memo_lock:
            return artifacts.result_memo.get(signature)

    def _memo_store(
        self, artifacts: DesignArtifacts, signature: tuple, memo: dict
    ) -> None:
        with self._memo_lock:
            if artifacts.result_memo.store(signature, memo):
                self.counters["memo_stores"] += 1

    def _attempt_finished(
        self,
        shard: ServiceShard,
        attempt: _Attempt,
        memo: dict | None,
        outcome: RaceOutcome | None,
    ) -> None:
        state = attempt.state
        with self._lock:
            self._inflight.discard(attempt)
        if memo is not None:
            self._resolve(state, self._result_from_memo(state, attempt, memo))
            return
        assert outcome is not None
        lost_race = outcome.answer is None and (
            outcome.cancelled or outcome.timed_out
        )
        if lost_race:
            with self._lock:
                stale = (
                    state.resolved or state.current_attempt is not attempt
                )
            if stale:
                # The watchdog already re-queued (or resolved) this
                # device; the cancelled attempt's empty outcome is late.
                with self._lock:
                    self.counters["late_results_dropped"] += 1
                return
            self._handle_timeout(state, attempt)
            return
        result = self._result_from_outcome(state, attempt, outcome)
        if self._resolve(state, result) and result.status == "ok":
            artifacts = self.design_cache.get(attempt.device.design)
            self._memo_store(
                artifacts,
                attempt.device.signature(),
                {
                    "answer": result.answer,
                    "cardinality": result.cardinality,
                    "solutions": result.solutions,
                    "winner": result.winner,
                },
            )

    def _attempt_error(
        self, shard: ServiceShard, attempt: _Attempt, exc: Exception
    ) -> None:
        # Deterministic processing error (unknown design, inconsistent
        # tests): retrying elsewhere cannot help — resolve as an error.
        state = attempt.state
        with self._lock:
            self._inflight.discard(attempt)
            self.counters["failures"] += 1
        self._resolve(
            state,
            DeviceResult(
                device_id=state.device.device_id,
                design=state.device.design,
                status="error",
                attempts=attempt.number,
                shard=shard.index,
                latency=time.monotonic() - state.submitted_at,
                error=f"{type(exc).__name__}: {exc}",
            ),
        )

    def _shard_died(
        self, shard: ServiceShard, attempt: _Attempt, exc: Exception
    ) -> None:
        shard.alive_for_routing = False
        with self._lock:
            self.counters["shard_deaths"] += 1
            self._inflight.discard(attempt)
        # The in-flight device retries elsewhere (its attempt died with
        # the shard)...
        self._retry_or_fail(
            attempt.state, attempt,
            error=f"shard {shard.index} died: {exc}",
        )
        # ...and the dead shard's queued backlog is re-routed wholesale
        # (those attempts never started; they keep their attempt number).
        while True:
            try:
                item = shard.queue.get_nowait()
            except Exception:
                break
            if item is None or not isinstance(item, _Attempt):
                continue
            target = self._route(
                item.device.design, item.number, shard.index
            )
            item.shard_index = target.index
            self._submit(target, item)

    # ------------------------------------------------------------------
    # watchdog / retry / exactly-once
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        interval = min(0.02, (self.timeout or 1.0) / 5)
        while not self._stopping.is_set():
            now = time.monotonic()
            with self._lock:
                expired = [
                    a
                    for a in self._inflight
                    if a.deadline is not None and now >= a.deadline
                ]
                for a in expired:
                    self._inflight.discard(a)
            for attempt in expired:
                attempt.cancel.set()
                state = attempt.state
                with self._lock:
                    if (
                        state.resolved
                        or state.current_attempt is not attempt
                    ):
                        continue
                    self.counters["timeouts"] += 1
                self._retry_or_fail(
                    state, attempt,
                    error=f"deadline exceeded on shard "
                    f"{attempt.shard_index}",
                )
            self._rescue_dead_shard_stragglers()
            self._stopping.wait(interval)

    def _rescue_dead_shard_stragglers(self) -> None:
        """Re-route attempts parked in a dead shard's queue.

        ``_shard_died`` drains the dead shard's backlog, but a submitter
        blocked on that queue's backpressure can still land an attempt
        *after* the drain (the death and the put race).  Whoever pops an
        item off the queue owns it, so draining again here is safe — and
        turns a straggler's worst case from its full attempt deadline
        into one watchdog tick.
        """
        for shard in self._shards:
            if shard.alive_for_routing:
                continue
            while True:
                try:
                    item = shard.queue.get_nowait()
                except Exception:
                    break
                if not isinstance(item, _Attempt) or item.state.resolved:
                    continue
                try:
                    target = self._route(
                        item.device.design, item.number, shard.index
                    )
                except RuntimeError:  # no live shards remain
                    self._retry_or_fail(
                        item.state, item,
                        error="no live shards remain",
                    )
                    continue
                item.shard_index = target.index
                self._submit(target, item)

    def _handle_timeout(self, state: _DeviceState, attempt: _Attempt) -> None:
        with self._lock:
            self.counters["timeouts"] += 1
        self._retry_or_fail(
            state, attempt,
            error=f"deadline exceeded on shard {attempt.shard_index}",
        )

    def _retry_or_fail(
        self, state: _DeviceState, attempt: _Attempt, error: str
    ) -> None:
        attempt.cancel.set()
        # An externally cancelled device is abandoned on request — no
        # retry (the next attempt would inherit the set external flag
        # and spin) and no degradation ladder (the canceller wants the
        # slot back now, not a salvaged answer later).
        abandoned = getattr(attempt.cancel, "external_set", False)
        with self._lock:
            if state.resolved or state.current_attempt is not attempt:
                return
            retry = not abandoned and state.attempts < self.max_attempts
            if retry:
                self.counters["retries"] += 1
        if abandoned:
            error = "externally cancelled"
        if retry:
            try:
                self._dispatch(state, exclude=attempt.shard_index)
                return
            except RuntimeError as exc:  # no live shards remain
                error = f"{error}; retry impossible ({exc})"
        if self.degrade and not abandoned:
            degraded = self._degrade(state, attempt, error)
            if degraded is not None:
                with self._lock:
                    self.counters["degraded"] += 1
                self._resolve(state, degraded)
                return
        with self._lock:
            self.counters["failures"] += 1
        self._resolve(
            state,
            DeviceResult(
                device_id=state.device.device_id,
                design=state.device.design,
                status="timeout",
                attempts=attempt.number,
                shard=attempt.shard_index,
                latency=time.monotonic() - state.submitted_at,
                error=error,
            ),
        )

    def _degrade(
        self, state: _DeviceState, attempt: _Attempt, error: str
    ) -> DeviceResult | None:
        """Walk the degradation ladder after the last exact attempt
        failed; None when the ladder also comes up empty.

        Runs on the caller's thread (watchdog or shard) but is bounded:
        the approximate rung carries its own ``degrade_budget`` deadline
        Budget and the guidance rung is one vectorized sweep.
        """
        device = state.device
        try:
            artifacts = self.design_cache.get(device.design)
            session = DiagnosisSession(
                artifacts.circuit,
                device.tests,
                solver_backend=self.solver_backend,
                seed=signature_seed(device.signature()),
            )
            session.master_skeleton = artifacts.skeleton
            found = run_degradation_ladder(
                session, k=device.k, budget_seconds=self.degrade_budget
            )
        except Exception:
            return None
        if found is None:
            return None
        return DeviceResult(
            device_id=device.device_id,
            design=device.design,
            status="degraded",
            answer=found.answer,
            cardinality=(
                len(found.answer) if found.answer is not None else None
            ),
            solutions=found.solutions,
            winner=None,
            attempts=attempt.number,
            shard=attempt.shard_index,
            latency=time.monotonic() - state.submitted_at,
            error=error,
            degraded_rung=found.rung,
            validity=found.validity,
        )

    def _resolve(self, state: _DeviceState, result: DeviceResult) -> bool:
        """Exactly-once: the first resolution wins, the rest are counted
        and dropped."""
        with self._lock:
            if state.resolved:
                self.counters["duplicate_results_dropped"] += 1
                return False
            state.resolved = True
            state.result = result
            if result.winner is not None:
                winners = self.counters["race_winners"]
                winners[result.winner] = winners.get(result.winner, 0) + 1
            self._resolved_count += 1
            if self._resolved_count >= len(self._states):
                self._all_done.set()
        # The winning resolution is journaled outside the service lock:
        # the append is a buffered write (the fsync batch happens on the
        # journal's flusher thread), so durability stays off the result
        # path.  Replayed results came *from* the journal — re-appending
        # them would grow the WAL on every resume.
        if self.journal is not None and not result.journal_replayed:
            self.journal.resolved(
                signature_key(state.device.signature()), result
            )
        return True

    # ------------------------------------------------------------------
    # result construction
    # ------------------------------------------------------------------
    def _result_from_outcome(
        self, state: _DeviceState, attempt: _Attempt, outcome: RaceOutcome
    ) -> DeviceResult:
        return DeviceResult(
            device_id=state.device.device_id,
            design=state.device.design,
            status="ok",
            answer=outcome.answer,
            cardinality=(
                len(outcome.answer) if outcome.answer is not None else None
            ),
            solutions=outcome.solutions,
            winner=outcome.winner,
            attempts=attempt.number,
            shard=attempt.shard_index,
            latency=time.monotonic() - state.submitted_at,
            cached=False,
        )

    def _result_from_memo(
        self, state: _DeviceState, attempt: _Attempt, memo: dict
    ) -> DeviceResult:
        return DeviceResult(
            device_id=state.device.device_id,
            design=state.device.design,
            status="ok",
            answer=memo["answer"],
            cardinality=memo["cardinality"],
            solutions=memo["solutions"],
            winner=memo["winner"],
            attempts=attempt.number,
            shard=attempt.shard_index,
            latency=time.monotonic() - state.submitted_at,
            cached=True,
        )

    # ------------------------------------------------------------------
    def _shutdown(self) -> None:
        self._stopping.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=1.0)
            self._watchdog = None
        for shard in self._shards:
            if shard.is_alive():
                shard.shutdown()
        for shard in self._shards:
            shard.join(timeout=1.0)
        self._stopping.clear()
