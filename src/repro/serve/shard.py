"""One service shard: a worker thread owning a bounded device queue.

Sharding within one process is **thread-based**, deliberately.  The
artifacts a shard needs — the design's compiled circuit, the
master-encoding skeleton, the per-signature result memo — are large
mutable object graphs living in the shared
:class:`~repro.serve.design.DesignCache`; sharing them across threads
keeps the build-once-per-design contract, and the cooperative
``should_stop`` cancellation the strategy legs poll only works with
shared memory.  The thread service's throughput win is algorithmic
(race cancellation of the complete-enumeration tail, signature
batching, skeleton reuse), not core-parallelism.  When the workload
*is* core-bound — many designs, compute-heavy legs — the scale-out
lever is one level up: :mod:`repro.serve.procpool` shards *designs*
(not devices) across worker processes, each worker running this
thread machinery over its design subset so every per-design contract
stays process-local (``serve --workers N``).

A shard dequeues one attempt at a time: memo lookup first (signature
batching), else a fresh session stamped from the design skeleton and a
strategy race (:func:`~repro.serve.race.race_device`).  Failures are
reported to the service, which owns retry/exactly-once; a
:class:`ShardKilled` escape (fault injection, tests) kills the worker
thread itself, and the service re-routes both the in-flight device and
the dead shard's queue.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING

from ..diagnosis.core import DiagnosisSession
from .intake import signature_seed
from .race import race_device

if TYPE_CHECKING:  # pragma: no cover
    from .service import DiagnosisService, _Attempt

__all__ = ["ServiceShard", "ShardKilled", "SHUTDOWN"]

#: Queue sentinel ending a shard's run loop.
SHUTDOWN = object()


class ShardKilled(RuntimeError):
    """Raised (by fault hooks) to kill a shard thread mid-device."""


class ServiceShard(threading.Thread):
    """Worker thread bound to one bounded attempt queue."""

    def __init__(
        self,
        index: int,
        service: "DiagnosisService",
        queue_size: int = 2,
    ) -> None:
        super().__init__(name=f"repro-shard-{index}", daemon=True)
        self.index = index
        self._service = service
        self.queue: queue.Queue = queue.Queue(maxsize=queue_size)
        #: False once the worker died (ShardKilled) — the service stops
        #: routing here and drains the queue.
        self.alive_for_routing = True
        self.stats = {
            "processed": 0,
            "signature_hits": 0,
            "races": 0,
            "cancelled_legs": 0,
            "skipped_legs": 0,
            "errors": 0,
            "queue_high_water": 0,
        }

    # ------------------------------------------------------------------
    def submit(self, attempt: "_Attempt", timeout: float | None = None):
        """Enqueue an attempt (blocking — the service's backpressure)."""
        if not self.alive_for_routing:
            # A dead worker never drains its queue; rejecting here makes
            # the submitter re-route instead of parking the attempt.
            raise RuntimeError(f"shard {self.index} is dead")
        self.queue.put(attempt, timeout=timeout)
        depth = self.queue.qsize()
        if depth > self.stats["queue_high_water"]:
            self.stats["queue_high_water"] = depth

    def shutdown(self) -> None:
        self.queue.put(SHUTDOWN)

    # ------------------------------------------------------------------
    def run(self) -> None:  # pragma: no cover - exercised via service
        while True:
            item = self.queue.get()
            if item is SHUTDOWN:
                return
            try:
                hook = self._service.fault_hook
                if hook is not None:
                    hook(self.index, item)
                self._process(item)
            except ShardKilled as exc:
                self.alive_for_routing = False
                self._service._shard_died(self, item, exc)
                return
            except Exception as exc:
                self.stats["errors"] += 1
                self._service._attempt_error(self, item, exc)

    def _process(self, attempt: "_Attempt") -> None:
        service = self._service
        device = attempt.device
        self.stats["processed"] += 1
        artifacts = service.design_cache.get(device.design)
        signature = device.signature()
        memo = service._memo_lookup(artifacts, signature)
        if memo is not None:
            self.stats["signature_hits"] += 1
            service._attempt_finished(
                self, attempt, memo=memo, outcome=None
            )
            return
        session = DiagnosisSession(
            artifacts.circuit,
            device.tests,
            solver_backend=service.solver_backend,
            seed=signature_seed(signature),
        )
        session.master_skeleton = artifacts.skeleton
        self.stats["races"] += 1
        outcome = race_device(
            session,
            strategies=service.strategies,
            k=device.k,
            first_only=service.policy == "first",
            cancel=attempt.cancel,
            deadline=attempt.deadline,
            stagger=service.stagger,
            conflict_poll_interval=service.conflict_poll_interval,
        )
        self.stats["cancelled_legs"] += outcome.cancelled_legs
        self.stats["skipped_legs"] += outcome.skipped_legs
        service._attempt_finished(self, attempt, memo=None, outcome=outcome)
