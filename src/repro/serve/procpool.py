"""Process-level scale-out: design-sharded worker processes.

The thread service (:mod:`repro.serve.service`) hedges its way to good
latency, but under the GIL its race legs share one core — the compute-
bound legs (pure-Python CDCL, the interpreted glue around the compiled
kernels) serialize however many shards run.  This module partitions
*designs* (not devices) across worker **processes**, each running the
existing thread-based :class:`~repro.serve.service.DiagnosisService`
over its design subset, so throughput scales with cores while every
per-design contract stays process-local:

* the :class:`~repro.serve.design.DesignCache` build-once-per-design
  guarantee holds *per owning worker* — a design's circuit, skeleton
  and signature memo live in exactly one process (until a death
  re-routes its devices), and nothing large ever crosses a process
  boundary;
* only plain dicts flow over the ``multiprocessing`` queues: intake
  wire dicts (:func:`~repro.serve.intake.device_to_wire`) down, result
  records (the journal's encoding) up — spawn-safe, no custom pickling.

Topology and protocol::

    parent                                  worker i (spawned)
    ------                                  ------------------
    router: crc32(design) % alive  ------>  task_q:   ("device", wire)
    bounded inflight / backpressure         ("shutdown",)
    watchdog: death detect, backstop ---->  ctrl_q:   ("cancel", id)
    reader thread per worker  <-----------  result_q: ("ready", i)
      -> in-process inbox ->                ("result", i, payload, stats)
    collector: exactly-once resolve         ("bye", i, stats)
    journal: the one WAL (parent)

Each worker gets its **own** result queue, drained by a dedicated
parent reader thread into one in-process inbox.  This is a survival
property, not a convenience: a SIGKILL can land mid-``put``, leaving a
truncated pickle in the pipe, and on a shared queue that torn tail
desynchronizes the stream for every surviving worker — per-worker
queues contain the damage to the process that died (its devices
re-route and re-diagnose; the parent's exactly-once resolution absorbs
the duplicate work).

Semantics carried over from the thread service, one level up:

* **Routing** — a stable hash of the design picks the owning worker;
  re-routes (death, explicit exclude) rotate deterministically, the
  same idiom as shard routing.
* **Lifecycle** — workers are spawned at construction and ``warm_up()``
  their compiled backend *before* the ready handshake, so JIT compile
  cost never lands on a device; shutdown drains cleanly (the shutdown
  sentinel queues FIFO behind remaining work).
* **Death** — the parent watchdog polls worker liveness; a dead
  worker's unacknowledged devices re-route to survivors (the PR-9
  dead-shard rescue, generalized to processes), bounded so a
  deterministic crasher cannot ping-pong forever.
* **Cancellation** — the parent sends ``("cancel", id)``; the worker's
  control listener sets the device's external cancel event, which the
  service links into every attempt's cancel flag — the race legs see it
  at their next ``Budget.should_stop`` poll, so cancellation still
  lands *mid-solve*.  A backstop deadline in the parent covers a
  worker too wedged to answer even that.
* **Durability** — exactly one WAL, owned by the parent: workers ship
  resolutions up and the parent appends them, so replay/resume
  (:func:`~repro.serve.journal.read_journal`) is byte-compatible with
  thread mode and resolution stays exactly-once across process death —
  the parent's, via resume, and a worker's, via re-route.
* **Observability** — :meth:`ProcessDiagnosisService.stats` merges the
  per-worker service snapshots (timeouts, retries, memo, race winners)
  with the parent's own routing/death/cancel counters and per-worker
  ``processed`` / ``queue_high_water``, so routing skew is visible.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from .design import DEFAULT_MEMO_MAX_ENTRIES, DesignCache
from .intake import DeviceReport, device_to_wire, parse_device
from .journal import (
    JournalReplay,
    ResultJournal,
    _decode_solutions,
    _encode_solutions,
    signature_key,
)
from .race import DEFAULT_STRATEGIES
from .service import DeviceResult, DiagnosisService

__all__ = ["ProcessDiagnosisService"]


# ----------------------------------------------------------------------
# wire encoding (plain JSON-shaped dicts only)
# ----------------------------------------------------------------------
def _result_to_wire(result: DeviceResult) -> dict:
    return {
        "id": result.device_id,
        "design": result.design,
        "status": result.status,
        "answer": (
            list(result.answer) if result.answer is not None else None
        ),
        "cardinality": result.cardinality,
        "solutions": _encode_solutions(result.solutions),
        "winner": result.winner,
        "attempts": result.attempts,
        "shard": result.shard,
        "latency": result.latency,
        "cached": result.cached,
        "error": result.error,
        "degraded_rung": result.degraded_rung,
        "validity": result.validity,
    }


def _result_from_wire(payload: dict, worker_index: int) -> DeviceResult:
    return DeviceResult(
        device_id=payload["id"],
        design=payload["design"],
        status=payload["status"],
        answer=(
            tuple(payload["answer"])
            if payload["answer"] is not None
            else None
        ),
        cardinality=payload["cardinality"],
        solutions=_decode_solutions(payload["solutions"]),
        winner=payload["winner"],
        attempts=payload["attempts"],
        shard=payload["shard"],
        latency=payload["latency"],
        cached=payload["cached"],
        error=payload["error"],
        worker=worker_index,
        degraded_rung=payload["degraded_rung"],
        validity=payload["validity"],
    )


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------
def _worker_main(
    worker_index: int,
    config: dict,
    task_q,
    ctrl_q,
    result_q,
) -> None:
    """Entry point of one spawned worker.

    Builds a worker-local :class:`DiagnosisService` (which eagerly
    ``warm_up()``s an arena-jit backend — that is why the ready
    handshake comes *after* construction), then serves devices one at a
    time: the bounded-inflight parent router is the admission control,
    the worker's own shards/watchdog/degradation handle everything
    within a device exactly as in thread mode.
    """
    cancels: dict[str, threading.Event] = {}
    cancels_lock = threading.Lock()
    service = DiagnosisService(
        n_shards=config["worker_shards"],
        strategies=config["strategies"],
        policy=config["policy"],
        timeout=config["timeout"],
        max_attempts=config["max_attempts"],
        queue_size=config["queue_size"],
        stagger=config["stagger"],
        conflict_poll_interval=config["conflict_poll_interval"],
        degrade=config["degrade"],
        degrade_budget=config["degrade_budget"],
        design_cache=DesignCache(
            memo_max_entries=config["memo_max_entries"]
        ),
        solver_backend=config["solver_backend"],
        external_cancels=cancels,
    )
    processed = 0

    def snapshot() -> dict:
        return {"processed": processed, **service.stats()}

    def control_loop() -> None:
        # Cancels ride a dedicated queue so they overtake queued tasks;
        # a cancel for a not-yet-seen device pre-creates its event, so
        # the cancel-before-dequeue race resolves instantly.
        while True:
            msg = ctrl_q.get()
            if msg[0] == "stop":
                return
            if msg[0] == "cancel":
                with cancels_lock:
                    event = cancels.get(msg[1])
                    if event is None:
                        event = threading.Event()
                        cancels[msg[1]] = event
                event.set()

    listener = threading.Thread(
        target=control_loop,
        name=f"repro-procpool-w{worker_index}-ctrl",
        daemon=True,
    )
    listener.start()
    result_q.put(("ready", worker_index))
    while True:
        msg = task_q.get()
        if msg[0] == "shutdown":
            result_q.put(("bye", worker_index, snapshot()))
            return
        data = msg[1]
        device_id = data.get("id") if isinstance(data, dict) else None
        try:
            device = parse_device(
                data, where=f"worker{worker_index}.device"
            )
            with cancels_lock:
                cancels.setdefault(device.device_id, threading.Event())
            result = service.run([device])[0]
            payload = _result_to_wire(result)
        except Exception as exc:  # never let one device kill the worker
            payload = {
                "id": device_id if device_id is not None else "?",
                "design": (
                    data.get("design", "?")
                    if isinstance(data, dict)
                    else "?"
                ),
                "status": "error",
                "answer": None,
                "cardinality": None,
                "solutions": [],
                "winner": None,
                "attempts": 0,
                "shard": None,
                "latency": 0.0,
                "cached": False,
                "error": f"{type(exc).__name__}: {exc}",
                "degraded_rung": None,
                "validity": None,
            }
        finally:
            if device_id is not None:
                with cancels_lock:
                    cancels.pop(device_id, None)
        processed += 1
        result_q.put(("result", worker_index, payload, snapshot()))


# ----------------------------------------------------------------------
# parent-side state
# ----------------------------------------------------------------------
@dataclass(eq=False)
class _WorkerHandle:
    index: int
    process: multiprocessing.process.BaseProcess
    task_q: object
    ctrl_q: object
    result_q: object
    alive: bool = True
    inflight: int = 0
    inflight_high_water: int = 0
    last_stats: dict = field(default_factory=dict)


@dataclass(eq=False)
class _ProcState:
    device: DeviceReport
    order: int
    submitted_at: float = 0.0
    routes: int = 0
    worker_index: int | None = None
    resolved: bool = False
    result: DeviceResult | None = None
    backstop_deadline: float | None = None
    cancel_sent_at: float | None = None


class ProcessDiagnosisService:
    """Design-sharded diagnosis over worker processes.

    ``DiagnosisService``-compatible ``run()``/``stats()``; construction
    spawns (and warms) the workers, so build it once and reuse it —
    ``close()`` (or the context manager) drains and reaps them.

    Parameters mirror :class:`~repro.serve.service.DiagnosisService`
    where they configure the per-worker services (``worker_shards`` is
    each worker's internal thread-shard count), plus:

    n_workers:
        Worker processes (the design partitions).
    inflight_per_worker:
        Unacknowledged devices a worker may hold (queued + running) —
        the parent blocks submission past it, the admission control of
        the bounded shard queues one level up.
    backstop_slack / cancel_grace:
        The parent-side last-resort deadline: a device is given
        ``inflight_per_worker * (timeout * max_attempts +
        degrade_budget) + backstop_slack`` seconds of wall time (its
        worker enforces the real per-attempt deadlines); past that the
        parent sends a cancel, and ``cancel_grace`` later resolves the
        device as ``timeout`` itself.  Only meaningful with a
        ``timeout``.
    worker_kill_hook:
        Chaos injection (``hook(worker_index, device_id) -> bool``,
        see :meth:`~repro.serve.chaos.ChaosInjector.worker_kill_hook`):
        consulted after every submit; True hard-kills the target worker.
    mp_context:
        ``multiprocessing`` start method; ``"spawn"`` (default) is the
        portable, no-inherited-locks choice the wire protocol assumes.
    """

    def __init__(
        self,
        n_workers: int = 2,
        worker_shards: int = 1,
        strategies: Sequence[str] = DEFAULT_STRATEGIES,
        policy: str = "first",
        timeout: float | None = None,
        max_attempts: int = 2,
        queue_size: int = 2,
        stagger: float = 0.02,
        conflict_poll_interval: int = 64,
        degrade: bool = True,
        degrade_budget: float = 0.25,
        journal: ResultJournal | None = None,
        resume_from: JournalReplay | None = None,
        solver_backend: str | None = None,
        memo_max_entries: int = DEFAULT_MEMO_MAX_ENTRIES,
        inflight_per_worker: int = 4,
        start_timeout: float = 120.0,
        backstop_slack: float = 2.0,
        cancel_grace: float = 5.0,
        worker_kill_hook: Callable[[int, str], bool] | None = None,
        mp_context: str = "spawn",
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if inflight_per_worker < 1:
            raise ValueError("inflight_per_worker must be at least 1")
        strategies = tuple(strategies)
        if not strategies:
            raise ValueError("at least one strategy is required")
        for name in strategies:
            if name not in DEFAULT_STRATEGIES:
                raise ValueError(
                    f"unknown strategy {name!r} (expected one of "
                    f"{', '.join(DEFAULT_STRATEGIES)})"
                )
        if policy not in ("first", "complete"):
            raise ValueError("policy must be 'first' or 'complete'")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.n_workers = n_workers
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.degrade = degrade
        self.degrade_budget = degrade_budget
        self.journal = journal
        self.resume_from = resume_from
        self.inflight_per_worker = inflight_per_worker
        self.backstop_slack = backstop_slack
        self.cancel_grace = cancel_grace
        self.worker_kill_hook = worker_kill_hook
        self._config = {
            "worker_shards": worker_shards,
            "strategies": strategies,
            "policy": policy,
            "timeout": timeout,
            "max_attempts": max_attempts,
            "queue_size": queue_size,
            "stagger": stagger,
            "conflict_poll_interval": conflict_poll_interval,
            "degrade": degrade,
            "degrade_budget": degrade_budget,
            "solver_backend": solver_backend,
            "memo_max_entries": memo_max_entries,
        }
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._states: dict[str, _ProcState] = {}
        self._resolved_count = 0
        self._all_done = threading.Event()
        self._run_stopping = threading.Event()
        self._closed = False
        self.counters = {
            "devices": 0,
            "journal_replayed": 0,
            "worker_deaths": 0,
            "reroutes": 0,
            "cancels_sent": 0,
            "backstop_timeouts": 0,
            "degraded": 0,
            "failures": 0,
            "duplicate_results_dropped": 0,
            "late_results_dropped": 0,
            "race_winners": {},
        }
        self._ctx = multiprocessing.get_context(mp_context)
        # In-process fan-in of the per-worker result queues: the reader
        # threads are the only consumers of the cross-process pipes, so
        # a worker killed mid-put can wedge at most its own reader.
        self._inbox: queue_mod.Queue = queue_mod.Queue()
        self._workers: list[_WorkerHandle] = []
        self._readers: list[threading.Thread] = []
        for i in range(n_workers):
            task_q = self._ctx.Queue()
            ctrl_q = self._ctx.Queue()
            result_q = self._ctx.Queue()
            process = self._ctx.Process(
                target=_worker_main,
                args=(i, self._config, task_q, ctrl_q, result_q),
                name=f"repro-procpool-w{i}",
                daemon=True,
            )
            process.start()
            worker = _WorkerHandle(
                index=i,
                process=process,
                task_q=task_q,
                ctrl_q=ctrl_q,
                result_q=result_q,
            )
            self._workers.append(worker)
            reader = threading.Thread(
                target=self._reader_loop,
                args=(worker,),
                name=f"repro-procpool-reader-{i}",
                daemon=True,
            )
            reader.start()
            self._readers.append(reader)
        self._await_ready(start_timeout)

    def _reader_loop(self, worker: _WorkerHandle) -> None:
        """Forward one worker's results into the in-process inbox.

        Exits on the worker's ``bye`` or on a broken/torn stream (the
        worker was killed mid-put) — never propagates the damage.
        """
        while True:
            try:
                msg = worker.result_q.get()
            except Exception:
                return
            self._inbox.put((worker, msg))
            if msg[0] == "bye":
                return

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _await_ready(self, start_timeout: float) -> None:
        pending = {w.index for w in self._workers}
        deadline = time.monotonic() + start_timeout
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RuntimeError(
                    f"workers {sorted(pending)} failed to start within "
                    f"{start_timeout}s"
                )
            try:
                _, msg = self._inbox.get(timeout=min(remaining, 0.2))
            except queue_mod.Empty:
                for w in self._workers:
                    if w.index in pending and not w.process.is_alive():
                        self.close()
                        raise RuntimeError(
                            f"worker {w.index} died during startup "
                            f"(exit code {w.process.exitcode})"
                        )
                continue
            if msg[0] == "ready":
                pending.discard(msg[1])

    def close(self, timeout: float = 10.0) -> None:
        """Drain and reap every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        expecting = set()
        for w in self._workers:
            if w.alive and w.process.is_alive():
                try:
                    w.task_q.put(("shutdown",))
                    expecting.add(w.index)
                except Exception:
                    pass
        deadline = time.monotonic() + timeout
        while expecting and time.monotonic() < deadline:
            try:
                worker, msg = self._inbox.get(timeout=0.2)
            except queue_mod.Empty:
                expecting = {
                    i
                    for i in expecting
                    if self._workers[i].process.is_alive()
                }
                continue
            if msg[0] == "bye":
                worker.last_stats = msg[2]
                expecting.discard(worker.index)
            elif msg[0] == "result":
                worker.last_stats = msg[3]
        for w in self._workers:
            w.alive = False
            w.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=1.0)
            for q in (w.task_q, w.ctrl_q, w.result_q):
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:
                    pass

    def __enter__(self) -> "ProcessDiagnosisService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, devices: Iterable[DeviceReport]) -> list[DeviceResult]:
        """Diagnose every device; results in input order, exactly once."""
        if self._closed:
            raise RuntimeError("service is closed")
        device_list = list(devices)
        seen: set[str] = set()
        for d in device_list:
            if d.device_id in seen:
                raise ValueError(
                    f"duplicate device id {d.device_id!r} in the stream"
                )
            seen.add(d.device_id)
        if not device_list:
            return []
        with self._lock:
            self.counters["devices"] += len(device_list)
            for order, device in enumerate(device_list):
                self._states[device.device_id] = _ProcState(
                    device=device, order=order
                )
        self._run_stopping.clear()
        collector = threading.Thread(
            target=self._collector_loop,
            name="repro-procpool-collector",
            daemon=True,
        )
        watchdog = threading.Thread(
            target=self._watchdog_loop,
            name="repro-procpool-watchdog",
            daemon=True,
        )
        collector.start()
        watchdog.start()
        try:
            for device in device_list:
                state = self._states[device.device_id]
                state.submitted_at = time.monotonic()
                if self.timeout is not None:
                    wall = self.inflight_per_worker * (
                        self.timeout * self.max_attempts
                        + (self.degrade_budget if self.degrade else 0.0)
                    )
                    state.backstop_deadline = (
                        state.submitted_at + wall + self.backstop_slack
                    )
                if self._replay_from_journal(state):
                    continue
                if self.journal is not None:
                    self.journal.accepted(
                        device.device_id,
                        device.design,
                        signature_key(device.signature()),
                    )
                self._submit_device(state)
            self._all_done.wait()
        finally:
            self._run_stopping.set()
            collector.join(timeout=2.0)
            watchdog.join(timeout=2.0)
            if self.journal is not None:
                self.journal.flush()
        ordered = sorted(
            self._states.values(), key=lambda s: s.order
        )
        results = [s.result for s in ordered]
        with self._lock:
            self._states.clear()
            self._resolved_count = 0
            self._all_done.clear()
        return results

    def cancel_device(self, device_id: str) -> bool:
        """Ask the owning worker to abandon ``device_id`` mid-solve.

        True when a cancel message went out (the device was known,
        unresolved and routed); the resolution then arrives through the
        normal result path as ``status="timeout"``.
        """
        with self._lock:
            state = self._states.get(device_id)
            if state is None or state.resolved:
                return False
            worker_index = state.worker_index
            state.cancel_sent_at = time.monotonic()
        if worker_index is None:
            return False
        worker = self._workers[worker_index]
        try:
            worker.ctrl_q.put(("cancel", device_id))
        except Exception:
            return False
        with self._lock:
            self.counters["cancels_sent"] += 1
        return True

    def stats(self) -> dict:
        """Parent counters + merged per-worker service snapshots."""
        merged = {
            "timeouts": 0,
            "retries": 0,
            "shard_deaths": 0,
            "memo_stores": 0,
            "memo_evictions": 0,
            "signature_hits": 0,
            "cancelled_legs": 0,
            "skipped_legs": 0,
        }
        worker_winners: dict[str, int] = {}
        workers_block = {}
        queue_high_water = {}
        for w in self._workers:
            snap = w.last_stats or {}
            for key in (
                "timeouts",
                "retries",
                "shard_deaths",
                "memo_stores",
                "signature_hits",
                "cancelled_legs",
                "skipped_legs",
            ):
                merged[key] += snap.get(key, 0)
            merged["memo_evictions"] += snap.get("design_cache", {}).get(
                "memo_evictions", 0
            )
            for name, count in snap.get("race_winners", {}).items():
                worker_winners[name] = worker_winners.get(name, 0) + count
            shard_qhw = max(
                (
                    s.get("queue_high_water", 0)
                    for s in snap.get("shards", {}).values()
                ),
                default=0,
            )
            queue_high_water[f"worker{w.index}"] = shard_qhw
            workers_block[f"worker{w.index}"] = {
                "alive": w.alive and w.process.is_alive(),
                "processed": snap.get("processed", 0),
                "inflight": w.inflight,
                "inflight_high_water": w.inflight_high_water,
                "queue_high_water": shard_qhw,
                "service": snap or None,
            }
        with self._lock:
            parent = {
                k: (dict(v) if isinstance(v, dict) else v)
                for k, v in self.counters.items()
            }
        return {
            **parent,
            # Worker-side timeouts plus the parent's backstop ones: the
            # total a thread-mode operator would read off "timeouts".
            "timeouts": parent["backstop_timeouts"] + merged["timeouts"],
            "retries": merged["retries"],
            "shard_deaths": merged["shard_deaths"],
            "memo_stores": merged["memo_stores"],
            "memo_evictions": merged["memo_evictions"],
            "signature_hits": merged["signature_hits"],
            "cancelled_legs": merged["cancelled_legs"],
            "skipped_legs": merged["skipped_legs"],
            "worker_race_winners": worker_winners,
            "queue_high_water": queue_high_water,
            **(
                {"journal": dict(self.journal.stats)}
                if self.journal is not None
                else {}
            ),
            "workers": workers_block,
        }

    # ------------------------------------------------------------------
    # journal resume (parent-side, byte-compatible with thread mode)
    # ------------------------------------------------------------------
    def _replay_from_journal(self, state: _ProcState) -> bool:
        if self.resume_from is None:
            return False
        device = state.device
        record = self.resume_from.replayable(
            signature_key(device.signature())
        )
        if record is None:
            return False
        with self._lock:
            self.counters["journal_replayed"] += 1
        self._resolve(
            state,
            DeviceResult(
                device_id=device.device_id,
                design=device.design,
                status=record["status"],
                answer=(
                    tuple(record["answer"])
                    if record["answer"] is not None
                    else None
                ),
                cardinality=record["cardinality"],
                solutions=_decode_solutions(record["solutions"]),
                winner=record["winner"],
                attempts=0,
                shard=None,
                latency=time.monotonic() - state.submitted_at,
                cached=True,
                degraded_rung=record.get("degraded_rung"),
                validity=record.get("validity"),
                journal_replayed=True,
            ),
        )
        return True

    # ------------------------------------------------------------------
    # routing / submission
    # ------------------------------------------------------------------
    def _route(
        self, design: str, route_number: int, exclude: int | None
    ) -> _WorkerHandle:
        alive = [w for w in self._workers if w.alive]
        if not alive:
            raise RuntimeError("no live workers remain")
        pool = alive
        if exclude is not None and len(alive) > 1:
            pool = [w for w in alive if w.index != exclude] or alive
        idx = (
            zlib.crc32(design.encode("utf-8")) + route_number
        ) % len(pool)
        return pool[idx]

    def _submit_device(
        self, state: _ProcState, exclude: int | None = None
    ) -> None:
        while True:
            with self._lock:
                if state.resolved:
                    return
                if state.routes > len(self._workers) + 1:
                    # A device that keeps landing on dying workers is
                    # not going to resolve by routing harder.
                    break
            try:
                worker = self._route(
                    state.device.design, state.routes, exclude
                )
            except RuntimeError:
                break
            with self._cond:
                while (
                    worker.alive
                    and worker.inflight >= self.inflight_per_worker
                    and not state.resolved
                ):
                    self._cond.wait(0.05)
                if state.resolved:
                    return
                if not worker.alive:
                    exclude = worker.index
                    continue
                worker.inflight += 1
                worker.inflight_high_water = max(
                    worker.inflight_high_water, worker.inflight
                )
                state.worker_index = worker.index
                state.routes += 1
            try:
                worker.task_q.put(
                    ("device", device_to_wire(state.device))
                )
            except Exception:
                with self._cond:
                    worker.inflight -= 1
                    self._cond.notify_all()
                exclude = worker.index
                continue
            if self.worker_kill_hook is not None and self.worker_kill_hook(
                worker.index, state.device.device_id
            ):
                self._kill_worker(worker)
            return
        with self._lock:
            self.counters["failures"] += 1
        self._resolve(
            state,
            DeviceResult(
                device_id=state.device.device_id,
                design=state.device.design,
                status="timeout",
                attempts=state.routes,
                latency=time.monotonic() - state.submitted_at,
                error="no live workers remain",
            ),
        )

    def _kill_worker(self, worker: _WorkerHandle) -> None:
        """Chaos surface: hard-kill (SIGKILL) — a real process death,
        detected and recovered exactly like an organic one."""
        try:
            worker.process.kill()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # collector: the one inbox consumer during a run
    # ------------------------------------------------------------------
    def _collector_loop(self) -> None:
        while True:
            try:
                worker, msg = self._inbox.get(timeout=0.05)
            except queue_mod.Empty:
                if self._run_stopping.is_set():
                    return
                continue
            kind = msg[0]
            if kind == "result":
                payload, snap = msg[2], msg[3]
                worker.last_stats = snap
                with self._cond:
                    if worker.inflight > 0:
                        worker.inflight -= 1
                    self._cond.notify_all()
                with self._lock:
                    state = self._states.get(payload["id"])
                if state is None:
                    with self._lock:
                        self.counters["late_results_dropped"] += 1
                    continue
                result = _result_from_wire(payload, worker.index)
                # End-to-end latency as the parent saw it (queueing
                # included) — the number an operator's SLO is about.
                result.latency = time.monotonic() - state.submitted_at
                self._resolve(state, result)
            elif kind == "bye":
                worker.last_stats = msg[2]

    # ------------------------------------------------------------------
    # watchdog: death detection + backstop deadlines
    # ------------------------------------------------------------------
    def _watchdog_loop(self) -> None:
        while not self._run_stopping.is_set():
            for worker in self._workers:
                if worker.alive and not worker.process.is_alive():
                    self._on_worker_death(worker)
            self._rescue_stranded()
            if self.timeout is not None:
                self._enforce_backstops()
            self._run_stopping.wait(0.05)

    def _on_worker_death(self, worker: _WorkerHandle) -> None:
        with self._cond:
            if not worker.alive:
                return
            worker.alive = False
            worker.inflight = 0
            self.counters["worker_deaths"] += 1
            self._cond.notify_all()

    def _rescue_stranded(self) -> None:
        """Re-route unresolved devices owned by a dead worker.

        A periodic sweep rather than a one-shot drain at death time
        (the process-level analog of the thread service's
        ``_rescue_dead_shard_stragglers``): a submit racing the death
        detection can land a device on the dead worker *after* any
        single drain ran, so ownership is re-checked every watchdog
        tick.  Claiming clears ``worker_index`` under the lock, so a
        device is re-routed by exactly one sweep.
        """
        dead = {w.index for w in self._workers if not w.alive}
        if not dead:
            return
        with self._lock:
            stranded = [
                s
                for s in self._states.values()
                if not s.resolved and s.worker_index in dead
            ]
            for state in stranded:
                state.worker_index = None
                self.counters["reroutes"] += 1
        for state in stranded:
            self._submit_device(state)

    def _enforce_backstops(self) -> None:
        now = time.monotonic()
        with self._lock:
            overdue = [
                s
                for s in self._states.values()
                if not s.resolved
                and s.backstop_deadline is not None
                and now >= s.backstop_deadline
            ]
        for state in overdue:
            if state.cancel_sent_at is None:
                self.cancel_device(state.device.device_id)
                with self._lock:
                    # cancel_device stamps cancel_sent_at only when a
                    # message went out; start the grace clock anyway so
                    # an unroutable device still times out.
                    if state.cancel_sent_at is None:
                        state.cancel_sent_at = now
            elif now >= state.cancel_sent_at + self.cancel_grace:
                with self._lock:
                    self.counters["backstop_timeouts"] += 1
                self._resolve(
                    state,
                    DeviceResult(
                        device_id=state.device.device_id,
                        design=state.device.design,
                        status="timeout",
                        attempts=state.routes,
                        worker=state.worker_index,
                        latency=now - state.submitted_at,
                        error="parent backstop deadline exceeded",
                    ),
                )

    # ------------------------------------------------------------------
    # exactly-once resolution (parent authority)
    # ------------------------------------------------------------------
    def _resolve(self, state: _ProcState, result: DeviceResult) -> bool:
        with self._lock:
            if state.resolved:
                self.counters["duplicate_results_dropped"] += 1
                return False
            state.resolved = True
            state.result = result
            if result.status == "degraded":
                self.counters["degraded"] += 1
            elif result.status in ("timeout", "error"):
                self.counters["failures"] += 1
            if result.winner is not None and not result.journal_replayed:
                winners = self.counters["race_winners"]
                winners[result.winner] = winners.get(result.winner, 0) + 1
            self._resolved_count += 1
            if self._resolved_count >= len(self._states):
                self._all_done.set()
        with self._cond:
            self._cond.notify_all()
        if self.journal is not None and not result.journal_replayed:
            self.journal.resolved(
                signature_key(state.device.signature()), result
            )
        return True
