"""Production diagnosis service: sharded, cached, racing (PR 7).

The paper's point — pick the right engine per situation — becomes the
*serving policy* here: every failing device races the fast approximate
engines against the complete one, first valid answer wins, losers are
cancelled.  The service layers:

``intake``
    :class:`DeviceReport` — one failing device (design + observed
    failing tests) — and hardened JSON-lines parsing.
``design``
    :class:`DesignCache` — per-design artifacts (compiled circuit,
    master-encoding skeleton, result memo) built once per design.
``race``
    :func:`race_device` — first-valid-answer-wins strategy races with
    cooperative ``should_stop`` cancellation.
``shard``
    :class:`ServiceShard` — worker threads with bounded queues.
``service``
    :class:`DiagnosisService` — routing, deadline/retry, exactly-once
    result stream, observability counters.
``procpool``
    :class:`ProcessDiagnosisService` — design-sharded worker
    *processes* (each running the thread service over its design
    subset) for core-bound workloads; ``serve --workers N``.
``journal``
    :class:`ResultJournal` — fsync-batched JSONL WAL of accepted and
    resolved devices; :func:`read_journal` replays it on resume for
    exactly-once across process death.
``degrade``
    :func:`run_degradation_ladder` — bounded exact→approximate→guidance
    fallbacks instead of empty timeouts.
``chaos``
    :class:`ChaosInjector` — seeded fault injection (shard kills, hung
    legs, torn intake lines, journal-commit crashes) plus
    :func:`check_invariants`.

See ``ROADMAP.md`` ("Serving guide") for the policy rationale and
``benchmarks/bench_serve.py`` for the gated throughput trajectory.
"""

from .chaos import ChaosInjector, JournalCrash, check_invariants
from .degrade import DegradedAnswer, run_degradation_ladder
from .design import DesignArtifacts, DesignCache, load_design
from .intake import (
    DeviceReport,
    device_to_wire,
    parse_device,
    parse_device_line,
    read_device_stream,
    signature_seed,
)
from .journal import (
    JournalReplay,
    ResultJournal,
    read_journal,
    signature_key,
)
from .procpool import ProcessDiagnosisService
from .race import DEFAULT_STRATEGIES, RaceOutcome, race_device
from .service import DeviceResult, DiagnosisService
from .shard import ServiceShard, ShardKilled

__all__ = [
    "DesignArtifacts",
    "DesignCache",
    "load_design",
    "DeviceReport",
    "device_to_wire",
    "parse_device",
    "parse_device_line",
    "read_device_stream",
    "signature_seed",
    "JournalReplay",
    "ResultJournal",
    "read_journal",
    "signature_key",
    "DegradedAnswer",
    "run_degradation_ladder",
    "ChaosInjector",
    "JournalCrash",
    "check_invariants",
    "DEFAULT_STRATEGIES",
    "RaceOutcome",
    "race_device",
    "DeviceResult",
    "DiagnosisService",
    "ProcessDiagnosisService",
    "ServiceShard",
    "ShardKilled",
]
