"""Degradation ladder: bounded fallbacks instead of empty timeouts.

When every exact attempt for a device exhausts its deadline or budget,
the service does not give up with an empty ``timeout`` result — it
walks a ladder of ever-cheaper answer classes, each bounded by its own
:class:`~repro.sat.budget.Budget`:

``exact``
    The normal strategy race (bsat/ihs enumeration legs).  Not run
    here — reaching the ladder *means* exact already failed.
``approximate``
    A short budget-bounded SAFARI run
    (:func:`~repro.diagnosis.greedy.greedy_stochastic_diagnose`):
    every solution it reports is still a **verified valid correction**,
    but the set is a sample, not an enumeration — validity class
    ``"valid-sampled"``.
``guidance``
    The BSIM-style per-gate mark counts read off the session's
    rectification words: gates ranked by how many failing observations
    a single forced value at the gate fixes.  Pure simulation, no
    solver.  These are ranked suspects, **not** verified corrections —
    validity class ``"guidance"`` (``answer`` stays ``None``; the
    ranked singletons land in ``solutions``).

A rung that produces nothing (or dies) falls through to the next; when
the whole ladder comes up empty the service reports the classic
``timeout``.  The service stamps ladder results ``status="degraded"``
with ``degraded_rung`` and ``validity`` so downstream consumers can
tell a sampled-but-valid answer from mere guidance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..diagnosis.core import DiagnosisSession
from ..diagnosis.greedy import greedy_stochastic_diagnose
from ..sat.budget import Budget

__all__ = ["DegradedAnswer", "LADDER_RUNGS", "run_degradation_ladder"]

#: Ladder order (exact is implicit — it already ran and failed).
LADDER_RUNGS = ("approximate", "guidance")

#: Guidance rung: at most this many ranked candidates are reported.
_GUIDANCE_TOP = 8

#: Approximate rung: independent SAFARI climbs attempted within budget.
_APPROX_RETRIES = 4


@dataclass
class DegradedAnswer:
    """What one ladder rung salvaged for a device."""

    rung: str
    #: ``"valid-sampled"`` (verified corrections, sampled) or
    #: ``"guidance"`` (ranked suspects, unverified).
    validity: str
    #: Minimum-size verified correction (approximate rung only).
    answer: tuple[str, ...] | None
    solutions: tuple = ()
    detail: dict = field(default_factory=dict)


def _approximate(
    session: DiagnosisSession, k: int | None, budget: Budget
) -> DegradedAnswer | None:
    result = greedy_stochastic_diagnose(
        session.circuit,
        session.tests,
        k=k,
        retries=_APPROX_RETRIES,
        max_solutions=1,
        session=session,
        budget=budget,
    )
    if not result.solutions:
        return None
    best = min(result.solutions, key=lambda s: (len(s), sorted(s)))
    return DegradedAnswer(
        rung="approximate",
        validity="valid-sampled",
        answer=tuple(sorted(best)),
        solutions=tuple(result.solutions),
        detail={
            "climbs": result.extras.get("climbs", 0),
            "interrupted": bool(result.extras.get("interrupted")),
        },
    )


def _guidance(session: DiagnosisSession) -> DegradedAnswer | None:
    space = session.space()
    marks = space.marks()
    ranked = sorted(
        (g for g, m in marks.items() if m > 0),
        key=lambda g: (-marks[g], g),
    )[:_GUIDANCE_TOP]
    if not ranked:
        return None
    return DegradedAnswer(
        rung="guidance",
        validity="guidance",
        answer=None,
        solutions=tuple(frozenset((g,)) for g in ranked),
        detail={"marks": {g: marks[g] for g in ranked}},
    )


def run_degradation_ladder(
    session: DiagnosisSession,
    k: int | None = None,
    budget_seconds: float = 0.25,
    rungs: tuple[str, ...] = LADDER_RUNGS,
) -> DegradedAnswer | None:
    """Walk the ladder on one prepared session, first rung to answer
    wins.

    ``budget_seconds`` bounds the *approximate* rung through a solver-
    level :class:`Budget` (deadline + conflict polling); the guidance
    rung is one vectorized sweep and needs no budget.  Rung failures
    (including unexpected exceptions) fall through — the ladder itself
    must never raise into the service's retry path.
    """
    for rung in rungs:
        if rung not in LADDER_RUNGS:
            raise ValueError(f"unknown ladder rung {rung!r}")
    for rung in rungs:
        try:
            if rung == "approximate":
                budget = Budget.from_deadline(budget_seconds)
                found = _approximate(session, k, budget)
            else:
                found = _guidance(session)
            if found is not None:
                return found
        except Exception:
            # A dying rung degrades to the next one, by design.
            continue
    return None
