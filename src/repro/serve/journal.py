"""Durable result journal: a fsync-batched JSONL write-ahead log.

Crash safety for the serving pipeline.  The journal records two event
types, one JSON object per line:

``accepted``
    A device entered the service (id, design, failure-signature hash) —
    written before any diagnosis work, so a crash can never lose track
    of what was admitted.
``resolved``
    A device's final :class:`~repro.serve.service.DeviceResult` — the
    answer-bearing fields keyed by the failure-signature hash, enough to
    replay the result **bit-identically** on restart.

Restart semantics (``--resume``): :func:`read_journal` returns the
resolved map; the service replays answer-bearing results (``status``
``"ok"`` or ``"degraded"``) for any device whose signature already
resolved, without re-diagnosing, and re-runs everything else (a restart
is a fresh chance for ``timeout``/``error`` devices).  Together with
the service's in-memory exactly-once guard this gives exactly-once
resolution *across process death*.

Durability/latency trade:

* ``append`` takes the journal lock, writes one line into the OS file
  buffer and returns — no fsync on the caller's (shard) thread, so
  journaling stays off the result latency path.
* A background flusher thread group-commits: every ``flush_interval``
  seconds (or as soon as ``batch_size`` records are pending) it does
  one ``flush`` + ``os.fsync`` covering every record appended since
  the last commit.  ``close()`` performs a final synchronous commit.
* A record is durable only after the batch commit; a crash inside the
  window loses at most the last batch — those devices simply re-run on
  resume (at-least-once work, exactly-once results).

Crash-mid-record tolerance: the reader accepts only complete,
well-formed lines.  A torn tail — the process died mid-``write`` — is
either a line without a trailing newline or invalid JSON; both are
counted (``truncated``/``bad_records``) and skipped, never fatal.
Each record also carries a CRC32 of its canonical payload so a
corrupted-but-parseable line is rejected rather than replayed.

``before_flush``/``after_flush`` hooks exist for the chaos harness
(:mod:`repro.serve.chaos`) to simulate a crash on either side of the
commit boundary.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

__all__ = [
    "JournalReplay",
    "ResultJournal",
    "read_journal",
    "signature_key",
]

#: DeviceResult statuses whose journal records are replayed on resume
#: (they carry answers); other statuses re-run.
REPLAYABLE_STATUSES = ("ok", "degraded")


def signature_key(signature: tuple) -> str:
    """Stable hex key for one failure signature.

    SHA-256 of the signature's ``repr`` — the same canonical form
    :func:`~repro.serve.intake.signature_seed` hashes, so equal
    signatures (and only those) collide across processes and runs.
    """
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()


def _payload_crc(record: dict) -> int:
    """CRC32 over the record's canonical JSON form, ``crc`` excluded."""
    body = {k: v for k, v in record.items() if k != "crc"}
    canon = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canon.encode("utf-8")) & 0xFFFFFFFF


def _encode_solutions(solutions) -> list[list[str]]:
    return [sorted(s) for s in solutions]


def _decode_solutions(raw) -> tuple:
    return tuple(frozenset(s) for s in raw)


@dataclass
class JournalReplay:
    """What a journal file held at read time."""

    #: signature key -> resolved record (answer-bearing fields).
    resolved: dict[str, dict] = field(default_factory=dict)
    #: signature keys with an ``accepted`` record.
    accepted: set[str] = field(default_factory=set)
    #: Well-formed records read.
    records: int = 0
    #: Parseable lines rejected (bad CRC, unknown type, missing fields).
    bad_records: int = 0
    #: True when the file ended in a torn (crash-mid-write) tail.
    truncated: bool = False

    def replayable(self, key: str) -> dict | None:
        """The resolved record for ``key`` iff its status replays."""
        record = self.resolved.get(key)
        if record is not None and record["status"] in REPLAYABLE_STATUSES:
            return record
        return None


def read_journal(path: str | Path) -> JournalReplay:
    """Parse a journal file, tolerating a torn tail.

    Reading is idempotent and convergent: re-reading the same file (or
    a file extended by a later run) yields a superset of the same
    resolved map — the chaos invariants assert this.
    """
    replay = JournalReplay()
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return replay
    if not data:
        return replay
    lines = data.split(b"\n")
    # A well-formed journal ends with a newline, so the final split
    # element is empty; anything else is a torn last record.
    tail = lines.pop()
    if tail:
        replay.truncated = True
    for raw in lines:
        if not raw.strip():
            continue
        try:
            record = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            replay.bad_records += 1
            continue
        if not isinstance(record, dict):
            replay.bad_records += 1
            continue
        crc = record.get("crc")
        if crc != _payload_crc(record):
            replay.bad_records += 1
            continue
        kind = record.get("type")
        key = record.get("sig")
        if not isinstance(key, str):
            replay.bad_records += 1
            continue
        if kind == "accepted":
            replay.accepted.add(key)
            replay.records += 1
        elif kind == "resolved":
            if "status" not in record:
                replay.bad_records += 1
                continue
            replay.resolved[key] = record
            replay.records += 1
        else:
            replay.bad_records += 1
    return replay


class ResultJournal:
    """Append-only JSONL WAL with background group-commit fsync.

    Parameters
    ----------
    path:
        Journal file, opened in append mode (resume keeps writing to
        the same file; the reader's last-write-wins handles re-resolved
        signatures).
    batch_size:
        Pending records that force an immediate commit wake-up.
    flush_interval:
        Group-commit period in seconds.  Both knobs only bound the
        durability window — appends never wait for the disk.
    before_flush / after_flush:
        Chaos hooks called around each fsync commit (see module
        docstring); exceptions propagate to the caller on the
        synchronous ``close``/``flush`` path, otherwise they stop the
        flusher thread (recorded as ``flusher_error`` — a simulated
        crash of the background commit).
    """

    def __init__(
        self,
        path: str | Path,
        batch_size: int = 32,
        flush_interval: float = 0.05,
        before_flush: Callable[[], None] | None = None,
        after_flush: Callable[[], None] | None = None,
    ) -> None:
        self.path = Path(path)
        self.batch_size = batch_size
        self.flush_interval = flush_interval
        self.before_flush = before_flush
        self.after_flush = after_flush
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False
        #: Exception that stopped the background flusher, if any.
        self.flusher_error: Exception | None = None
        self._stopping = threading.Event()
        self._kick = threading.Event()
        self.stats = {
            "appended": 0,
            "commits": 0,
            "synced_records": 0,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")
        self._flusher = threading.Thread(
            target=self._flush_loop,
            name="repro-journal-flusher",
            daemon=True,
        )
        self._flusher.start()

    # ------------------------------------------------------------------
    # append path (shard threads): buffer write only, no fsync
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        record["crc"] = _payload_crc(record)
        line = (
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")
        with self._lock:
            if self._closed:
                raise RuntimeError("journal is closed")
            self._fh.write(line)
            self._pending += 1
            self.stats["appended"] += 1
            kick = self._pending >= self.batch_size
        if kick:
            self._kick.set()

    def accepted(self, device_id: str, design: str, key: str) -> None:
        """Record that a device was admitted (before any work)."""
        self._append(
            {
                "type": "accepted",
                "sig": key,
                "id": device_id,
                "design": design,
            }
        )

    def resolved(self, key: str, result) -> None:
        """Record a final :class:`DeviceResult` under its signature key."""
        self._append(
            {
                "type": "resolved",
                "sig": key,
                "id": result.device_id,
                "design": result.design,
                "status": result.status,
                "answer": (
                    list(result.answer)
                    if result.answer is not None
                    else None
                ),
                "cardinality": result.cardinality,
                "solutions": _encode_solutions(result.solutions),
                "winner": result.winner,
                "degraded_rung": result.degraded_rung,
                "validity": result.validity,
                "error": result.error,
            }
        )

    # ------------------------------------------------------------------
    # commit path (background thread / explicit flush)
    # ------------------------------------------------------------------
    def _commit(self) -> None:
        """One group commit: flush + fsync everything appended so far."""
        if self.before_flush is not None:
            self.before_flush()
        with self._lock:
            if self._closed:
                return
            batch = self._pending
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._pending = 0
            if batch:
                self.stats["commits"] += 1
                self.stats["synced_records"] += batch
        if self.after_flush is not None:
            self.after_flush()

    def _flush_loop(self) -> None:
        while not self._stopping.is_set():
            self._kick.wait(self.flush_interval)
            self._kick.clear()
            if self._stopping.is_set():
                return
            with self._lock:
                dirty = self._pending > 0 and not self._closed
            if dirty:
                try:
                    self._commit()
                except Exception as exc:
                    # A failed background commit stops group-committing
                    # (the chaos harness's simulated crash lands here);
                    # appends keep buffering and close()'s synchronous
                    # commit still decides final durability.
                    self.flusher_error = exc
                    return

    def flush(self) -> None:
        """Synchronous commit — everything appended so far is durable."""
        self._commit()

    def close(self) -> None:
        """Final commit, stop the flusher, close the file."""
        self._stopping.set()
        self._kick.set()
        self._flusher.join(timeout=1.0)
        try:
            self._commit()
        finally:
            with self._lock:
                self._closed = True
                self._fh.close()

    def __enter__(self) -> "ResultJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
