"""Chaos-injection harness for the serving stack.

PR 7 introduced one ad-hoc fault hook (raise
:class:`~repro.serve.shard.ShardKilled` inside a shard); this module
generalizes it into a seeded injection registry covering every failure
surface the service claims to survive:

``kill_shard``
    The shard worker thread dies mid-device (the original hook) — the
    service must re-route the in-flight device and the dead shard's
    backlog.
``raise_in_solver``
    A deterministic exception out of attempt processing — the service
    must resolve the device as ``status="error"`` without retry loops.
``hang_leg``
    An attempt stalls — the watchdog must cancel it at the deadline and
    retry elsewhere (with budgets wired, the hung leg stops within one
    conflict-poll interval).
``corrupt_intake_line``
    A torn JSONL record in the device stream — skip-and-count intake
    (:func:`~repro.serve.intake.read_device_stream` with ``on_error``)
    must drop exactly that line and keep the queue moving.
``crash_before_flush`` / ``crash_after_flush``
    Simulated process death on either side of the journal's fsync
    group-commit boundary (:class:`JournalCrash` out of the journal's
    flush hooks) — replaying the journal must converge and resume must
    keep resolution exactly-once.
``kill_worker``
    Process mode only: a worker *process* is hard-killed (SIGKILL)
    right after a device is routed to it — the parent must detect the
    death, re-route the worker's unacknowledged devices to survivors,
    and keep resolution exactly-once with a convergent journal.  The
    :class:`~repro.serve.procpool.ProcessDiagnosisService` consults
    :meth:`ChaosInjector.worker_kill_hook` on every submit.

Injections fire on a **seeded schedule**: at construction the injector
draws, per enabled kind, which occurrence of that kind's site fires.
The same seed therefore produces the same injection *counts* however
threads interleave, and the chaos tests sweep seeds in CI.

:func:`check_invariants` asserts what must hold under any of this:
every submitted device resolves exactly once, statuses are legal,
service counters balance, and the journal replays convergently.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .intake import DeviceReport
from .journal import read_journal
from .shard import ShardKilled

__all__ = [
    "ALL_INJECTION_KINDS",
    "ChaosInjector",
    "InjectionEvent",
    "JournalCrash",
    "check_invariants",
]

ALL_INJECTION_KINDS = (
    "kill_shard",
    "raise_in_solver",
    "hang_leg",
    "corrupt_intake_line",
    "crash_before_flush",
    "crash_after_flush",
    "kill_worker",
)

#: Statuses a resolved device may legally carry.
_LEGAL_STATUSES = ("ok", "degraded", "timeout", "error")


class JournalCrash(RuntimeError):
    """Simulated process death at the journal commit boundary."""


@dataclass
class InjectionEvent:
    """One injection that actually fired (the injector's log entry)."""

    kind: str
    site: str
    occurrence: int
    detail: dict = field(default_factory=dict)


class ChaosInjector:
    """Seeded fault injection across the service's failure surfaces.

    Parameters
    ----------
    seed:
        Drives which occurrence of each site fires — same seed, same
        schedule.
    kinds:
        Enabled injection kinds (default: all).
    max_per_kind:
        Injections of each kind over the injector's lifetime.
    horizon:
        Occurrence window the schedule is drawn from: each firing index
        is uniform in ``[0, horizon)``.
    hang_s:
        Stall duration for ``hang_leg``.

    Wire it up with ``fault_hook`` (pass to
    :class:`~repro.serve.service.DiagnosisService`), ``wrap_lines``
    (around the intake lines) and ``before_flush``/``after_flush``
    (pass to :class:`~repro.serve.journal.ResultJournal`).
    """

    def __init__(
        self,
        seed: int = 0,
        kinds: Sequence[str] = ALL_INJECTION_KINDS,
        max_per_kind: int = 1,
        horizon: int = 8,
        hang_s: float = 0.05,
    ) -> None:
        for kind in kinds:
            if kind not in ALL_INJECTION_KINDS:
                raise ValueError(
                    f"unknown injection kind {kind!r} (expected one of "
                    f"{', '.join(ALL_INJECTION_KINDS)})"
                )
        self.kinds = tuple(kinds)
        self.hang_s = hang_s
        rng = random.Random(seed)
        # The schedule: kind -> sorted occurrence indices that fire.
        # Drawn up front so thread interleaving cannot change how many
        # injections a seed produces.
        self.schedule: dict[str, tuple[int, ...]] = {
            kind: tuple(
                sorted(
                    rng.sample(
                        range(horizon), min(max_per_kind, horizon)
                    )
                )
            )
            for kind in ALL_INJECTION_KINDS
        }
        self._seen: dict[str, int] = {k: 0 for k in ALL_INJECTION_KINDS}
        self.log: list[InjectionEvent] = []

    def _fire(self, kind: str, site: str, **detail) -> bool:
        if kind not in self.kinds:
            return False
        occurrence = self._seen[kind]
        self._seen[kind] += 1
        if occurrence not in self.schedule[kind]:
            return False
        self.log.append(
            InjectionEvent(
                kind=kind, site=site, occurrence=occurrence, detail=detail
            )
        )
        return True

    def fired(self, kind: str) -> int:
        """How many injections of ``kind`` actually fired."""
        return sum(1 for e in self.log if e.kind == kind)

    # ------------------------------------------------------------------
    # service surface
    # ------------------------------------------------------------------
    def fault_hook(self, shard_index: int, attempt) -> None:
        """Pass as ``DiagnosisService(fault_hook=...)``."""
        device_id = getattr(
            getattr(attempt, "device", None), "device_id", None
        )
        if self._fire(
            "kill_shard", f"shard{shard_index}", device=device_id
        ):
            raise ShardKilled(f"chaos: shard {shard_index} killed")
        if self._fire(
            "raise_in_solver", f"shard{shard_index}", device=device_id
        ):
            raise RuntimeError("chaos: solver raised mid-attempt")
        if self._fire(
            "hang_leg", f"shard{shard_index}", device=device_id
        ):
            time.sleep(self.hang_s)

    def worker_kill_hook(self, worker_index: int, device_id: str) -> bool:
        """Process-mode kill schedule: consulted by the parent on every
        device submit; True means "hard-kill worker ``worker_index``
        now" (the parent SIGKILLs the process, so the death is real —
        no cooperation from the worker)."""
        return self._fire(
            "kill_worker", f"worker{worker_index}", device=device_id
        )

    # ------------------------------------------------------------------
    # intake surface
    # ------------------------------------------------------------------
    def wrap_lines(self, lines: Iterable[str]) -> list[str]:
        """Corrupt scheduled non-comment lines (torn-record shape)."""
        wrapped: list[str] = []
        for line in lines:
            stripped = line.strip()
            if (
                stripped
                and not stripped.startswith("#")
                and self._fire("corrupt_intake_line", "intake")
            ):
                wrapped.append(line[: max(1, len(line) // 2)])
            else:
                wrapped.append(line)
        return wrapped

    # ------------------------------------------------------------------
    # journal surface
    # ------------------------------------------------------------------
    def before_flush(self) -> None:
        """Pass as ``ResultJournal(before_flush=...)``."""
        if self._fire("crash_before_flush", "journal"):
            raise JournalCrash("chaos: died before fsync commit")

    def after_flush(self) -> None:
        """Pass as ``ResultJournal(after_flush=...)``."""
        if self._fire("crash_after_flush", "journal"):
            raise JournalCrash("chaos: died after fsync commit")


def check_invariants(
    devices: Sequence[DeviceReport],
    results: Sequence,
    service=None,
    journal_path=None,
) -> list[str]:
    """Invariants that must hold under any injection schedule.

    Returns failure strings (empty = all good):

    * every submitted device resolved exactly once, legal status;
    * service counters balance (resolutions account for every device);
    * the journal replays convergently — two reads agree record for
      record, and re-reading is idempotent.
    """
    failures: list[str] = []
    want = [d.device_id for d in devices]
    got = [r.device_id for r in results if r is not None]
    if len(results) != len(want):
        failures.append(
            f"{len(results)} results for {len(want)} devices"
        )
    if len(got) != len(results):
        failures.append(
            f"{len(results) - len(got)} unresolved (None) results"
        )
    if sorted(got) != sorted(want):
        lost = set(want) - set(got)
        extra = set(got) - set(want)
        dup = {i for i in got if got.count(i) > 1}
        failures.append(
            f"device identity broken: lost={sorted(lost)} "
            f"extra={sorted(extra)} duplicated={sorted(dup)}"
        )
    for r in results:
        if r is None:
            continue
        if r.status not in _LEGAL_STATUSES:
            failures.append(
                f"{r.device_id}: illegal status {r.status!r}"
            )
        if r.status == "ok" and r.answer is None and not r.solutions:
            failures.append(f"{r.device_id}: ok with no answer")
        if r.status == "degraded" and r.degraded_rung is None:
            failures.append(
                f"{r.device_id}: degraded without a ladder rung"
            )
    if service is not None:
        stats = service.stats()
        n_ok = sum(
            1 for r in results if r is not None and r.status == "ok"
        )
        if stats["degraded"] != sum(
            1 for r in results if r is not None and r.status == "degraded"
        ):
            failures.append("degraded counter does not match results")
        if stats["journal_replayed"] < sum(
            1 for r in results if r is not None and r.journal_replayed
        ):
            failures.append(
                "journal_replayed counter below replayed results"
            )
        resolved = n_ok + sum(
            1
            for r in results
            if r is not None and r.status in ("degraded", "timeout", "error")
        )
        if resolved != len([r for r in results if r is not None]):
            failures.append("status accounting does not cover results")
    if journal_path is not None:
        first = read_journal(journal_path)
        second = read_journal(journal_path)
        if first.resolved != second.resolved:
            failures.append("journal replay is not idempotent")
        if first.bad_records != second.bad_records:
            failures.append("journal bad-record count is unstable")
        for key, record in first.resolved.items():
            if record["status"] not in _LEGAL_STATUSES:
                failures.append(
                    f"journal {key[:12]}: illegal status "
                    f"{record['status']!r}"
                )
    return failures
