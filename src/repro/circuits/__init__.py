"""Gate-level circuit substrate: netlists, parsing, structure, generation.

Public surface:

* :class:`~repro.circuits.netlist.Circuit`, :class:`~repro.circuits.netlist.Gate`
  — the netlist model.
* :class:`~repro.circuits.gates.GateType` and gate evaluation helpers.
* :mod:`~repro.circuits.bench` — ISCAS ``.bench`` I/O.
* :mod:`~repro.circuits.structure` — levels, cones, dominators, distances.
* :mod:`~repro.circuits.generator` — seeded synthetic netlists.
* :mod:`~repro.circuits.library` — embedded circuits incl. the paper's
  Figure 5 examples and the ISCAS89 stand-ins.
* :mod:`~repro.circuits.scan` — full-scan (DFF → PPI/PPO) conversion.
"""

from .gates import GateType, eval_gate, eval_gate_ternary, X
from .netlist import Circuit, CircuitError, Gate
from .bench import parse_bench, load, write_bench, dump, BenchFormatError
from .verilog import (
    parse_verilog,
    load_verilog,
    write_verilog,
    dump_verilog,
    VerilogFormatError,
)
from .generator import GeneratorConfig, random_circuit, random_sequential_circuit
from .scan import ScanResult, to_combinational
from .rewrite import de_morgan_rewrite, decompose_wide_gates
from . import library, structure

__all__ = [
    "GateType",
    "eval_gate",
    "eval_gate_ternary",
    "X",
    "Circuit",
    "CircuitError",
    "Gate",
    "parse_bench",
    "load",
    "write_bench",
    "dump",
    "BenchFormatError",
    "parse_verilog",
    "load_verilog",
    "write_verilog",
    "dump_verilog",
    "VerilogFormatError",
    "GeneratorConfig",
    "random_circuit",
    "random_sequential_circuit",
    "ScanResult",
    "de_morgan_rewrite",
    "decompose_wide_gates",
    "to_combinational",
    "library",
    "structure",
]
