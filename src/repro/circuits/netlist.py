"""Gate-level netlist representation.

:class:`Circuit` is the central data structure of the library: a named
directed acyclic graph of gates (plus ``DFF`` elements for sequential
designs).  It is deliberately simple — a dict of :class:`Gate` records keyed
by signal name — with derived structure (fanout lists, topological order,
levels) computed lazily and invalidated on mutation.

All diagnosis algorithms treat the circuit as the *implementation* ``I`` of
the paper; error injection (:mod:`repro.faults`) produces mutated copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from .gates import COMBINATIONAL_TYPES, FUNCTIONAL_TYPES, GateType

__all__ = ["Gate", "Circuit", "CircuitError"]


class CircuitError(ValueError):
    """Raised for structural problems: unknown fanins, cycles, bad arity."""


@dataclass(frozen=True)
class Gate:
    """One node of the netlist.

    ``name`` is the output signal name of the gate (signal names and gate
    names coincide, as in the ``.bench`` format).  ``fanins`` lists the
    driving signal names in order.
    """

    name: str
    gtype: GateType
    fanins: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.gtype in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            if self.fanins:
                raise CircuitError(f"{self.gtype} node {self.name!r} cannot have fanins")
        elif self.gtype in (GateType.BUF, GateType.NOT, GateType.DFF):
            if len(self.fanins) != 1:
                raise CircuitError(
                    f"{self.gtype} gate {self.name!r} requires exactly 1 fanin, "
                    f"got {len(self.fanins)}"
                )
        elif not self.fanins:
            raise CircuitError(f"{self.gtype} gate {self.name!r} requires fanins")

    @property
    def is_input(self) -> bool:
        return self.gtype is GateType.INPUT

    @property
    def is_dff(self) -> bool:
        return self.gtype is GateType.DFF

    @property
    def is_functional(self) -> bool:
        """True for gates computing a Boolean function (not inputs/DFFs/consts)."""
        return self.gtype in FUNCTIONAL_TYPES


class Circuit:
    """A gate-level netlist.

    Nodes are added with :meth:`add_input` / :meth:`add_gate`; primary
    outputs are declared with :meth:`add_output` and may name any node.
    Iteration order of :attr:`nodes` is insertion order; derived orders are
    cached and recomputed after mutation.

    Example
    -------
    >>> c = Circuit("half_adder")
    >>> c.add_input("a"); c.add_input("b")
    >>> c.add_gate("sum", GateType.XOR, ["a", "b"])
    >>> c.add_gate("carry", GateType.AND, ["a", "b"])
    >>> c.add_output("sum"); c.add_output("carry")
    >>> c.validate()
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._nodes: dict[str, Gate] = {}
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._cache: dict[str, object] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> None:
        """Declare a primary input signal."""
        self._insert(Gate(name, GateType.INPUT))
        self._inputs.append(name)

    def add_gate(
        self, name: str, gtype: GateType, fanins: Sequence[str] = ()
    ) -> None:
        """Add a gate driving signal ``name``.

        Fanins may be declared later (forward references are resolved at
        :meth:`validate` time), which makes netlist parsing single-pass.
        """
        if gtype is GateType.INPUT:
            raise CircuitError("use add_input() for primary inputs")
        self._insert(Gate(name, gtype, tuple(fanins)))

    def add_output(self, name: str) -> None:
        """Declare signal ``name`` as a primary output (node may not exist yet)."""
        if name in self._outputs:
            raise CircuitError(f"duplicate output declaration {name!r}")
        self._outputs.append(name)
        self._invalidate()

    def _insert(self, gate: Gate) -> None:
        if gate.name in self._nodes:
            raise CircuitError(f"duplicate signal name {gate.name!r}")
        self._nodes[gate.name] = gate
        self._invalidate()

    def _invalidate(self) -> None:
        self._cache.clear()

    # ------------------------------------------------------------------
    # mutation (used by error injection)
    # ------------------------------------------------------------------
    def replace_gate(
        self,
        name: str,
        gtype: GateType | None = None,
        fanins: Sequence[str] | None = None,
    ) -> None:
        """Replace the function and/or fanins of an existing gate in place.

        Primary inputs cannot be replaced.  The caller is responsible for
        keeping the circuit acyclic; :meth:`validate` re-checks.
        """
        old = self.node(name)
        if old.is_input:
            raise CircuitError(f"cannot replace primary input {name!r}")
        new_type = old.gtype if gtype is None else gtype
        new_fanins = old.fanins if fanins is None else tuple(fanins)
        self._nodes[name] = Gate(name, new_type, new_fanins)
        self._invalidate()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def node(self, name: str) -> Gate:
        try:
            return self._nodes[name]
        except KeyError:
            raise CircuitError(f"unknown signal {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._nodes.values())

    @property
    def nodes(self) -> Mapping[str, Gate]:
        return self._nodes

    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary inputs in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        """Primary outputs in declaration order."""
        return tuple(self._outputs)

    @property
    def gates(self) -> tuple[Gate, ...]:
        """All functional gates (excludes inputs, constants and DFFs)."""
        return tuple(g for g in self._nodes.values() if g.is_functional)

    @property
    def gate_names(self) -> tuple[str, ...]:
        return tuple(g.name for g in self.gates)

    @property
    def dffs(self) -> tuple[Gate, ...]:
        return tuple(g for g in self._nodes.values() if g.is_dff)

    @property
    def is_sequential(self) -> bool:
        return any(g.is_dff for g in self._nodes.values())

    @property
    def num_gates(self) -> int:
        """Size |I| of the circuit: the number of functional gates."""
        return len(self.gates)

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    def fanouts(self) -> Mapping[str, tuple[str, ...]]:
        """Map each signal to the names of gates it drives (cached)."""
        cached = self._cache.get("fanouts")
        if cached is None:
            result: dict[str, list[str]] = {name: [] for name in self._nodes}
            for gate in self._nodes.values():
                for fin in gate.fanins:
                    if fin not in result:
                        raise CircuitError(
                            f"gate {gate.name!r} references unknown signal {fin!r}"
                        )
                    result[fin].append(gate.name)
            cached = {k: tuple(v) for k, v in result.items()}
            self._cache["fanouts"] = cached
        return cached  # type: ignore[return-value]

    def topological_order(self) -> tuple[str, ...]:
        """Signal names in topological order (fanins before fanouts).

        DFF fanins are *not* treated as combinational dependencies: a DFF
        breaks the cycle, matching standard sequential-circuit semantics.
        Raises :class:`CircuitError` on a combinational cycle.
        """
        cached = self._cache.get("topo")
        if cached is None:
            indeg: dict[str, int] = {}
            dependents: dict[str, list[str]] = {name: [] for name in self._nodes}
            for gate in self._nodes.values():
                deps = () if gate.is_dff else gate.fanins
                indeg[gate.name] = len(deps)
                for fin in deps:
                    if fin not in dependents:
                        raise CircuitError(
                            f"gate {gate.name!r} references unknown signal {fin!r}"
                        )
                    dependents[fin].append(gate.name)
            # Kahn's algorithm, preserving insertion order among ready nodes
            # for deterministic output.
            ready = [n for n in self._nodes if indeg[n] == 0]
            order: list[str] = []
            head = 0
            while head < len(ready):
                node = ready[head]
                head += 1
                order.append(node)
                for dep in dependents[node]:
                    indeg[dep] -= 1
                    if indeg[dep] == 0:
                        ready.append(dep)
            if len(order) != len(self._nodes):
                cyclic = sorted(n for n, d in indeg.items() if d > 0)
                raise CircuitError(f"combinational cycle involving {cyclic[:10]}")
            cached = tuple(order)
            self._cache["topo"] = cached
        return cached  # type: ignore[return-value]

    def validate(self) -> None:
        """Check structural sanity; raises :class:`CircuitError` on problems."""
        for gate in self._nodes.values():
            for fin in gate.fanins:
                if fin not in self._nodes:
                    raise CircuitError(
                        f"gate {gate.name!r} references unknown signal {fin!r}"
                    )
        for out in self._outputs:
            if out not in self._nodes:
                raise CircuitError(f"undriven primary output {out!r}")
        self.topological_order()

    @property
    def is_combinational(self) -> bool:
        return all(g.gtype in COMBINATIONAL_TYPES for g in self._nodes.values())

    # ------------------------------------------------------------------
    # copying / equality
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Circuit":
        """Deep-enough copy: gates are immutable so sharing them is safe."""
        dup = Circuit(self.name if name is None else name)
        dup._nodes = dict(self._nodes)
        dup._inputs = list(self._inputs)
        dup._outputs = list(self._outputs)
        return dup

    def structurally_equal(self, other: "Circuit") -> bool:
        """True if both circuits have identical nodes, inputs and outputs."""
        return (
            self._nodes == other._nodes
            and self._inputs == other._inputs
            and self._outputs == other._outputs
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Summary counts used in experiment reports."""
        by_type: dict[str, int] = {}
        for gate in self._nodes.values():
            by_type[gate.gtype.value] = by_type.get(gate.gtype.value, 0) + 1
        return {
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "gates": self.num_gates,
            "dffs": len(self.dffs),
            "nodes": len(self._nodes),
            **{f"type_{k}": v for k, v in sorted(by_type.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)}, gates={self.num_gates}, "
            f"dffs={len(self.dffs)})"
        )


def subcircuit_names(circuit: Circuit, roots: Iterable[str]) -> set[str]:
    """Names of all nodes in the transitive fanin cone of ``roots`` (inclusive)."""
    seen: set[str] = set()
    stack = list(roots)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(circuit.node(name).fanins)
    return seen
