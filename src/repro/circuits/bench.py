"""Reader and writer for the ISCAS85/ISCAS89 ``.bench`` netlist format.

The format is line oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G14 = NOT(G0)
    G8  = AND(G14, G6)
    G5  = DFF(G10)

``BUFF`` is accepted as an alias for ``BUF``.  Parsing is forward-reference
tolerant (gates may use signals defined later); :func:`parse_bench` validates
the finished circuit.

This module lets real ISCAS89 benchmark files (s1423, s6669, s38417, ...)
drop straight into the experiment harness when available; the bundled
experiments use the synthetic stand-ins from :mod:`repro.circuits.generator`
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import TextIO

from .gates import GateType
from .netlist import Circuit, CircuitError

__all__ = ["parse_bench", "load", "write_bench", "dump", "BenchFormatError"]


class BenchFormatError(ValueError):
    """Raised on malformed ``.bench`` input, with the offending line number."""


_TYPE_ALIASES = {
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "DFF": GateType.DFF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^()\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z0-9_]+)\s*\(\s*([^()]*?)\s*\)$"
)


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source ``text`` into a validated :class:`Circuit`.

    >>> c = parse_bench("INPUT(a)\\nOUTPUT(y)\\ny = NOT(a)\\n")
    >>> c.num_gates
    1
    """
    circuit = Circuit(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, signal = io_match.group(1).upper(), io_match.group(2)
            try:
                if kind == "INPUT":
                    circuit.add_input(signal)
                else:
                    circuit.add_output(signal)
            except CircuitError as exc:
                raise BenchFormatError(f"line {lineno}: {exc}") from exc
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            out, type_name, arg_text = gate_match.groups()
            gtype = _TYPE_ALIASES.get(type_name.upper())
            if gtype is None:
                raise BenchFormatError(
                    f"line {lineno}: unknown gate type {type_name!r}"
                )
            fanins = [a.strip() for a in arg_text.split(",") if a.strip()]
            try:
                circuit.add_gate(out, gtype, fanins)
            except CircuitError as exc:
                raise BenchFormatError(f"line {lineno}: {exc}") from exc
            continue
        raise BenchFormatError(f"line {lineno}: cannot parse {raw.strip()!r}")
    try:
        circuit.validate()
    except CircuitError as exc:
        raise BenchFormatError(str(exc)) from exc
    return circuit


def load(path: str | Path) -> Circuit:
    """Load a ``.bench`` file from ``path``; circuit name is the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit, stream: TextIO) -> None:
    """Serialize ``circuit`` to ``stream`` in ``.bench`` syntax.

    Node order follows the circuit's insertion order, so a parse/write
    round-trip is stable.
    """
    stream.write(f"# {circuit.name}\n")
    stream.write(
        f"# {len(circuit.inputs)} inputs, {len(circuit.outputs)} outputs, "
        f"{len(circuit.dffs)} DFFs, {circuit.num_gates} gates\n"
    )
    for signal in circuit.inputs:
        stream.write(f"INPUT({signal})\n")
    for signal in circuit.outputs:
        stream.write(f"OUTPUT({signal})\n")
    stream.write("\n")
    for gate in circuit:
        if gate.gtype is GateType.INPUT:
            continue
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            stream.write(f"{gate.name} = {gate.gtype.value}()\n")
        else:
            args = ", ".join(gate.fanins)
            stream.write(f"{gate.name} = {gate.gtype.value}({args})\n")


def dump(circuit: Circuit, path: str | Path | None = None) -> str:
    """Serialize ``circuit`` to a string, optionally also writing ``path``."""
    buf = io.StringIO()
    write_bench(circuit, buf)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
