"""Gate types and gate-level evaluation primitives.

This module defines the vocabulary of gate functions used throughout the
library: the :class:`GateType` enumeration, evaluation of a gate over plain
Boolean values, over bit-parallel integer words, and over the three-valued
(0/1/X) domain used by X-list style diagnosis.

The gate set matches what the ISCAS85/ISCAS89 ``.bench`` format uses
(AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF, DFF) plus constants and
primary inputs.  ``DFF`` is the only sequential element; all diagnosis
algorithms in this library operate on the combinational (full-scan) view
produced by :mod:`repro.circuits.scan`.
"""

from __future__ import annotations

import enum
from functools import reduce
from typing import Iterable, Sequence

__all__ = [
    "GateType",
    "CONTROLLING_VALUE",
    "INVERTING",
    "COMBINATIONAL_TYPES",
    "FUNCTIONAL_TYPES",
    "eval_gate",
    "eval_gate_words",
    "eval_gate_ternary",
    "X",
]


class GateType(enum.Enum):
    """Enumeration of supported gate/node types.

    ``INPUT`` marks a primary input (or pseudo-primary input after scan
    conversion); it has no fanin.  ``CONST0``/``CONST1`` are constant
    drivers.  Every other member is a combinational gate except ``DFF``.
    """

    INPUT = "INPUT"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    DFF = "DFF"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Gate types that compute a Boolean function of their fanins.  Constants
#: are included: a stuck-at defect replaces a gate by a constant function,
#: and such a gate must remain a diagnosis suspect (correction candidate).
FUNCTIONAL_TYPES: frozenset[GateType] = frozenset(
    {
        GateType.BUF,
        GateType.NOT,
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
        GateType.CONST0,
        GateType.CONST1,
    }
)

#: Gate types allowed in a purely combinational circuit.
COMBINATIONAL_TYPES: frozenset[GateType] = FUNCTIONAL_TYPES | {
    GateType.INPUT,
    GateType.CONST0,
    GateType.CONST1,
}

#: The controlling input value of a gate type, or ``None`` if the gate has
#: no controlling value (XOR/XNOR/BUF/NOT).  An input at its controlling
#: value determines the gate output regardless of the other inputs; this is
#: the notion path tracing (Fig. 1 of the paper) relies on.
CONTROLLING_VALUE: dict[GateType, int | None] = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
    GateType.XOR: None,
    GateType.XNOR: None,
    GateType.BUF: None,
    GateType.NOT: None,
}

#: Whether the gate inverts (output = NOT(base function)).
INVERTING: dict[GateType, bool] = {
    GateType.AND: False,
    GateType.NAND: True,
    GateType.OR: False,
    GateType.NOR: True,
    GateType.XOR: False,
    GateType.XNOR: True,
    GateType.BUF: False,
    GateType.NOT: True,
}


def eval_gate(gtype: GateType, inputs: Sequence[int]) -> int:
    """Evaluate ``gtype`` over Boolean ``inputs`` (each 0 or 1).

    ``DFF`` is evaluated as a buffer (its combinational view); ``INPUT``
    and constants take no inputs.

    >>> eval_gate(GateType.NAND, [1, 1])
    0
    >>> eval_gate(GateType.XOR, [1, 0, 1])
    0
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype is GateType.INPUT:
        raise ValueError("primary inputs have no gate function")
    if gtype in (GateType.BUF, GateType.DFF):
        (a,) = inputs
        return a & 1
    if gtype is GateType.NOT:
        (a,) = inputs
        return (a & 1) ^ 1
    if not inputs:
        raise ValueError(f"{gtype} gate requires at least one input")
    if gtype is GateType.AND:
        return int(all(inputs))
    if gtype is GateType.NAND:
        return int(not all(inputs))
    if gtype is GateType.OR:
        return int(any(inputs))
    if gtype is GateType.NOR:
        return int(not any(inputs))
    if gtype is GateType.XOR:
        return reduce(lambda a, b: a ^ b, (v & 1 for v in inputs))
    if gtype is GateType.XNOR:
        return reduce(lambda a, b: a ^ b, (v & 1 for v in inputs)) ^ 1
    raise ValueError(f"cannot evaluate gate type {gtype}")


def eval_gate_words(gtype: GateType, inputs: Sequence[int], mask: int) -> int:
    """Evaluate ``gtype`` bit-parallel over integer words.

    Each bit position of the input words is an independent pattern; ``mask``
    is the all-ones word for the active pattern width.  Used by the
    pure-Python parallel simulator (the numpy simulator uses ufuncs
    directly).

    >>> eval_gate_words(GateType.NOR, [0b0011, 0b0101], 0b1111)
    8
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return mask
    if gtype in (GateType.BUF, GateType.DFF):
        (a,) = inputs
        return a & mask
    if gtype is GateType.NOT:
        (a,) = inputs
        return ~a & mask
    if not inputs:
        raise ValueError(f"{gtype} gate requires at least one input")
    if gtype is GateType.AND:
        return reduce(lambda a, b: a & b, inputs) & mask
    if gtype is GateType.NAND:
        return ~reduce(lambda a, b: a & b, inputs) & mask
    if gtype is GateType.OR:
        return reduce(lambda a, b: a | b, inputs) & mask
    if gtype is GateType.NOR:
        return ~reduce(lambda a, b: a | b, inputs) & mask
    if gtype is GateType.XOR:
        return reduce(lambda a, b: a ^ b, inputs) & mask
    if gtype is GateType.XNOR:
        return ~reduce(lambda a, b: a ^ b, inputs) & mask
    raise ValueError(f"cannot evaluate gate type {gtype}")


#: The unknown value of the three-valued domain.  Encoded as the integer 2 so
#: that ternary signal arrays stay small integer arrays.
X: int = 2


def _ternary_not(a: int) -> int:
    if a == X:
        return X
    return a ^ 1


def eval_gate_ternary(gtype: GateType, inputs: Iterable[int]) -> int:
    """Evaluate ``gtype`` in the three-valued (0/1/X) domain.

    Controlling values dominate X: ``AND(0, X) = 0`` but ``AND(1, X) = X``.
    XOR with any X input is X.

    >>> eval_gate_ternary(GateType.AND, [0, X])
    0
    >>> eval_gate_ternary(GateType.OR, [0, X])
    2
    """
    vals = list(inputs)
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype in (GateType.BUF, GateType.DFF):
        (a,) = vals
        return a
    if gtype is GateType.NOT:
        (a,) = vals
        return _ternary_not(a)
    if not vals:
        raise ValueError(f"{gtype} gate requires at least one input")
    if gtype in (GateType.AND, GateType.NAND):
        if any(v == 0 for v in vals):
            base = 0
        elif all(v == 1 for v in vals):
            base = 1
        else:
            base = X
        return _ternary_not(base) if gtype is GateType.NAND else base
    if gtype in (GateType.OR, GateType.NOR):
        if any(v == 1 for v in vals):
            base = 1
        elif all(v == 0 for v in vals):
            base = 0
        else:
            base = X
        return _ternary_not(base) if gtype is GateType.NOR else base
    if gtype in (GateType.XOR, GateType.XNOR):
        if any(v == X for v in vals):
            return X
        base = reduce(lambda a, b: a ^ b, vals)
        return _ternary_not(base) if gtype is GateType.XNOR else base
    raise ValueError(f"cannot evaluate gate type {gtype}")
