"""Full-scan conversion of sequential circuits.

The paper's diagnosis experiments treat the ISCAS89 circuits as
combinational, which corresponds to the standard full-scan assumption: every
flip-flop is directly controllable and observable, so each DFF output
becomes a pseudo-primary input (PPI) and each DFF input a pseudo-primary
output (PPO).  :func:`to_combinational` performs that conversion; the
mapping back to the sequential elements is retained for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass


from .netlist import Circuit

__all__ = ["ScanResult", "to_combinational"]


@dataclass(frozen=True)
class ScanResult:
    """Output of :func:`to_combinational`.

    ``ppi_of`` maps each original DFF name to the PPI signal replacing its
    output; ``ppo_of`` maps it to the PPO (the signal that fed the DFF).
    """

    circuit: Circuit
    ppi_of: dict[str, str]
    ppo_of: dict[str, str]


def to_combinational(circuit: Circuit, suffix: str = "_scan") -> ScanResult:
    """Return the full-scan combinational view of ``circuit``.

    Combinational circuits pass through unchanged (with empty maps).  For a
    sequential circuit every ``DFF q = DFF(d)`` is removed; ``q`` becomes a
    primary input and ``d`` becomes an additional primary output.

    >>> from repro.circuits.library import s27
    >>> result = to_combinational(s27())
    >>> result.circuit.is_combinational
    True
    >>> len(result.ppi_of)
    3
    """
    if not circuit.is_sequential:
        return ScanResult(circuit.copy(), {}, {})
    scan = Circuit(circuit.name + suffix)
    ppi_of: dict[str, str] = {}
    ppo_of: dict[str, str] = {}
    for pi in circuit.inputs:
        scan.add_input(pi)
    for gate in circuit:
        if gate.is_dff:
            scan.add_input(gate.name)
            ppi_of[gate.name] = gate.name
            ppo_of[gate.name] = gate.fanins[0]
    for gate in circuit:
        if gate.is_input or gate.is_dff:
            continue
        scan.add_gate(gate.name, gate.gtype, gate.fanins)
    for out in circuit.outputs:
        scan.add_output(out)
    for dff, d_signal in ppo_of.items():
        if d_signal not in scan.outputs:
            scan.add_output(d_signal)
    scan.validate()
    return ScanResult(scan, ppi_of, ppo_of)
