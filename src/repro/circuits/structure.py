"""Structural analysis of netlists: levels, cones, dominators, distances.

These utilities back several parts of the reproduction:

* **levels / depth** — used by the synthetic circuit generator and by the
  path-tracing tie-break policies.
* **cones** — transitive fanin/fanout, used by test generation and by the
  region-restricted hybrid diagnosis.
* **dominators** — a gate ``d`` dominates ``g`` when every path from ``g``
  to any primary output passes through ``d``.  The advanced SAT-based
  approach (paper §2.3, ref [17]) inserts correction multiplexers only at
  dominator gates in a first pass.
* **distance to nearest error** — the quality metric of Table 3: the number
  of hops on a shortest path in the undirected gate graph between a
  candidate and the closest actual error site (0 = exact hit).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import networkx as nx

from .netlist import Circuit

__all__ = [
    "levels",
    "depth",
    "fanin_cone",
    "fanout_cone",
    "gate_graph",
    "undirected_distance_to_nearest",
    "immediate_dominators",
    "dominator_chain",
    "dominator_gates",
    "dominated_region",
]

_SINK = "__sink__"


def levels(circuit: Circuit) -> dict[str, int]:
    """Topological level of every signal (primary inputs and DFFs at 0).

    A gate's level is ``1 + max(level of fanins)``; DFF outputs act as
    sequential sources and sit at level 0 like primary inputs.
    """
    result: dict[str, int] = {}
    for name in circuit.topological_order():
        gate = circuit.node(name)
        if gate.is_input or gate.is_dff or not gate.fanins:
            result[name] = 0
        else:
            result[name] = 1 + max(result[f] for f in gate.fanins)
    return result


def depth(circuit: Circuit) -> int:
    """Maximum level over all signals (0 for a circuit of only inputs)."""
    lv = levels(circuit)
    return max(lv.values(), default=0)


def fanin_cone(circuit: Circuit, signal: str, include_self: bool = True) -> set[str]:
    """All signals in the transitive fanin of ``signal`` (DFFs are barriers
    only for sequential semantics; here the structural cone crosses them)."""
    seen: set[str] = set()
    stack = [signal]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(circuit.node(name).fanins)
    if not include_self:
        seen.discard(signal)
    return seen


def fanout_cone(circuit: Circuit, signal: str, include_self: bool = True) -> set[str]:
    """All signals transitively driven by ``signal``."""
    fanouts = circuit.fanouts()
    seen: set[str] = set()
    stack = [signal]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(fanouts[name])
    if not include_self:
        seen.discard(signal)
    return seen


def gate_graph(circuit: Circuit) -> nx.DiGraph:
    """Directed signal graph with an edge fanin → gate for every connection."""
    graph = nx.DiGraph()
    graph.add_nodes_from(circuit.nodes)
    for gate in circuit:
        for fin in gate.fanins:
            graph.add_edge(fin, gate.name)
    return graph


def undirected_distance_to_nearest(
    circuit: Circuit, targets: Iterable[str]
) -> dict[str, int]:
    """BFS hop distance from every signal to the nearest of ``targets``.

    Distances are measured in the *undirected* gate graph, matching the
    paper's "number of gates on a shortest path to any error" — a candidate
    that *is* an error site has distance 0, its direct fanins/fanouts have
    distance 1, and so on.  Unreachable signals get distance ``len(circuit)``
    (an effectively infinite sentinel that keeps averages finite).
    """
    targets = [t for t in targets]
    for t in targets:
        circuit.node(t)  # raise early on unknown names
    fanouts = circuit.fanouts()
    dist: dict[str, int] = {t: 0 for t in targets}
    queue: deque[str] = deque(targets)
    while queue:
        name = queue.popleft()
        d = dist[name]
        gate = circuit.node(name)
        for neighbour in (*gate.fanins, *fanouts[name]):
            if neighbour not in dist:
                dist[neighbour] = d + 1
                queue.append(neighbour)
    sentinel = len(circuit)
    return {name: dist.get(name, sentinel) for name in circuit.nodes}


def immediate_dominators(circuit: Circuit) -> dict[str, str | None]:
    """Immediate dominator of each signal on its paths to the outputs.

    Built by adding a virtual sink fed by all primary outputs and computing
    the dominator tree of the *reversed* graph rooted at the sink — ``d``
    dominates ``g`` exactly when every directed path from ``g`` to any
    primary output passes through ``d``.  Signals with no path to an output
    map to ``None``, as does the case where the only dominator is the sink
    itself (i.e. the signal is or fans directly into multiple outputs).
    """
    graph = gate_graph(circuit)
    graph.add_node(_SINK)
    for out in circuit.outputs:
        graph.add_edge(out, _SINK)
    reversed_graph = graph.reverse(copy=False)
    idom = nx.immediate_dominators(reversed_graph, _SINK)
    result: dict[str, str | None] = {}
    for name in circuit.nodes:
        dom = idom.get(name)
        result[name] = None if dom in (None, _SINK, name) else dom
    return result


def dominator_chain(circuit: Circuit, signal: str) -> list[str]:
    """Proper dominators of ``signal`` ordered from nearest to outputs.

    Example: in a chain ``a → b → c → out``, ``dominator_chain(c)`` is
    ``[out]`` and ``dominator_chain(a)`` is ``[b, c, out]``.
    """
    idom = immediate_dominators(circuit)
    chain: list[str] = []
    current = idom.get(signal)
    while current is not None:
        chain.append(current)
        current = idom.get(current)
    return chain


def dominator_gates(circuit: Circuit) -> set[str]:
    """Gates that immediately dominate at least one other signal.

    These are the multiplexer insertion points of the first pass of the
    advanced SAT-based approach: any error inside a dominated region is
    observable only through its dominator, so a per-test free value at the
    dominator can rectify the constrained outputs.
    """
    idom = immediate_dominators(circuit)
    gate_names = set(circuit.gate_names)
    heads = {d for d in idom.values() if d is not None and d in gate_names}
    # A gate that dominates nothing still dominates itself; include output
    # gates that head no region only if nothing else covers them — handled
    # by callers via `uncovered_gates`.
    return heads


def dominated_region(circuit: Circuit, dominator: str) -> set[str]:
    """All signals ``g`` (excluding ``dominator``) whose every output path
    passes through ``dominator``."""
    idom = immediate_dominators(circuit)
    region: set[str] = set()
    for name in circuit.nodes:
        current = idom.get(name)
        while current is not None:
            if current == dominator:
                region.add(name)
                break
            current = idom.get(current)
    region.discard(dominator)
    return region
