"""Equivalence-preserving netlist rewrites (a stand-in for synthesis).

The paper's introduction dismisses structural diagnosis approaches
(ref [12]) because the similarity they rely on "may not be present,
e.g. due to optimizations during synthesis".  To demonstrate that failure
mode reproducibly, this module provides two function-preserving rewrites
that mimic what synthesis does to a netlist:

* :func:`de_morgan_rewrite` — rewrites AND/OR/NAND/NOR gates through De
  Morgan's laws, inserting fresh inverter signals (changes structure,
  keeps every original signal's function);
* :func:`decompose_wide_gates` — splits wide associative gates into
  binary trees with fresh intermediate signals whose functions typically
  exist nowhere in the original netlist (breaks signal correspondence,
  which is what defeats signature matching).

Every rewrite is checked equivalence-preserving by the test-suite via the
SAT CEC engine.
"""

from __future__ import annotations

import random

from .gates import GateType
from .netlist import Circuit

__all__ = ["de_morgan_rewrite", "decompose_wide_gates"]

#: De Morgan dual of each rewriteable gate type.
_DUAL: dict[GateType, GateType] = {
    GateType.AND: GateType.NOR,
    GateType.NAND: GateType.OR,
    GateType.OR: GateType.NAND,
    GateType.NOR: GateType.AND,
}


def _fresh(circuit: Circuit, base: str) -> str:
    name = base
    suffix = 0
    while name in circuit:
        suffix += 1
        name = f"{base}_{suffix}"
    return name


def de_morgan_rewrite(
    circuit: Circuit, fraction: float = 1.0, seed: int = 0
) -> Circuit:
    """Rewrite a random ``fraction`` of AND/OR/NAND/NOR gates via De Morgan.

    ``AND(a, b, …)`` becomes ``NOR(¬a, ¬b, …)`` with fresh inverter nodes
    (and dually for the other types).  Original signal names keep their
    functions, so the result is combinationally equivalent.

    >>> from repro.circuits.library import c17
    >>> rewritten = de_morgan_rewrite(c17(), seed=1)
    >>> rewritten.num_gates > c17().num_gates  # inverters were added
    True
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rng = random.Random(seed)
    result = circuit.copy(name=f"{circuit.name}_dm")
    targets = [
        g.name
        for g in circuit.gates
        if g.gtype in _DUAL and rng.random() < fraction
    ]
    for name in targets:
        gate = result.node(name)
        inverted = []
        for fin in gate.fanins:
            inv = _fresh(result, f"{name}__n_{fin}")
            result.add_gate(inv, GateType.NOT, [fin])
            inverted.append(inv)
        result.replace_gate(name, gtype=_DUAL[gate.gtype], fanins=inverted)
    result.validate()
    return result


def decompose_wide_gates(
    circuit: Circuit, max_fanin: int = 2, seed: int = 0
) -> Circuit:
    """Split gates wider than ``max_fanin`` into trees of binary gates.

    AND/OR decompose directly; NAND/NOR decompose into an AND/OR tree with
    the inverting type kept at the root.  XOR/XNOR chain likewise.  The
    fresh intermediate signals compute *new* sub-functions, which is what
    destroys one-to-one signal correspondence with the original netlist.
    """
    if max_fanin < 2:
        raise ValueError("max_fanin must be at least 2")
    rng = random.Random(seed)
    inner_of: dict[GateType, GateType] = {
        GateType.AND: GateType.AND,
        GateType.NAND: GateType.AND,
        GateType.OR: GateType.OR,
        GateType.NOR: GateType.OR,
        GateType.XOR: GateType.XOR,
        GateType.XNOR: GateType.XOR,
    }
    result = circuit.copy(name=f"{circuit.name}_dec")
    for gate in circuit.gates:
        if gate.gtype not in inner_of or len(gate.fanins) <= max_fanin:
            continue
        inner = inner_of[gate.gtype]
        operands = list(gate.fanins)
        rng.shuffle(operands)
        counter = 0
        while len(operands) > max_fanin:
            chunk = operands[:max_fanin]
            operands = operands[max_fanin:]
            aux = _fresh(result, f"{gate.name}__t{counter}")
            counter += 1
            result.add_gate(aux, inner, chunk)
            operands.append(aux)
        result.replace_gate(gate.name, fanins=operands)
    result.validate()
    return result
