"""Built-in circuit library.

Contains:

* **Real benchmark circuits** small enough to embed verbatim: ISCAS85 c17
  and ISCAS89 s27.
* **The paper's Figure 5 circuits** (reconstructed): ``fig5a`` witnesses
  Lemma 2 (a set-covering solution that is not a valid correction) and
  ``fig5b`` witnesses Lemma 4 (a valid correction missed by set covering).
* **Parametric circuits** with known golden functions (adders, parity,
  majority, mux trees) used heavily by the test-suite.
* **Synthetic ISCAS89 stand-ins** ``sim1423``, ``sim6669``, ``sim38417``
  sized for a pure-Python SAT solver (see DESIGN.md substitution table).

Use :func:`get_circuit` to obtain any registered circuit by name.
"""

from __future__ import annotations

from typing import Callable

from .bench import parse_bench
from .gates import GateType
from .netlist import Circuit
from .generator import random_circuit

__all__ = [
    "c17",
    "s27",
    "fig5a",
    "fig5b",
    "FIG5A_TEST",
    "FIG5B_TEST",
    "ripple_carry_adder",
    "parity_tree",
    "majority",
    "mux_tree",
    "array_multiplier",
    "equality_comparator",
    "sim1423",
    "sim6669",
    "sim38417",
    "get_circuit",
    "available_circuits",
]

_C17_BENCH = """
# ISCAS85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""

_S27_BENCH = """
# ISCAS89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""


def c17() -> Circuit:
    """The 6-NAND ISCAS85 c17 benchmark (5 inputs, 2 outputs)."""
    return parse_bench(_C17_BENCH, name="c17")


def s27() -> Circuit:
    """The ISCAS89 s27 benchmark (4 inputs, 1 output, 3 DFFs)."""
    return parse_bench(_S27_BENCH, name="s27")


def fig5a() -> Circuit:
    """Reconstruction of the paper's Figure 5(a) — Lemma 2 witness.

    Under the test vector ``(i1, i2) = (1, 1)`` the output ``D`` evaluates
    to 0 while the correct value is 1.  Path tracing marks ``{A, B, D}``
    (or ``{A, C, D}`` depending on the tie-break), so ``{B}`` covers the
    single candidate set — but changing only ``B`` cannot rectify ``D``
    because the reconvergent branch ``C`` still forces the AND to 0.
    """
    c = Circuit("fig5a")
    c.add_input("i1")
    c.add_input("i2")
    c.add_gate("A", GateType.NAND, ["i1", "i2"])
    c.add_gate("B", GateType.BUF, ["A"])
    c.add_gate("C", GateType.BUF, ["A"])
    c.add_gate("D", GateType.AND, ["B", "C"])
    c.add_output("D")
    c.validate()
    return c


#: The single failing test of Figure 5(a): vector, erroneous output, correct value.
FIG5A_TEST: tuple[dict[str, int], str, int] = ({"i1": 1, "i2": 1}, "D", 1)


def fig5b() -> Circuit:
    """Reconstruction of the paper's Figure 5(b) — Lemma 4 witness.

    Under the test vector ``(x, y, z, w) = (0, 0, 1, 0)`` the output ``E``
    is 0 instead of 1.  Path tracing yields the single candidate set
    ``{A, C, D, E}``; the correction ``{A, B}`` is valid (force ``A`` and
    ``B`` to 1) and contains only essential candidates — flipping ``A``
    alone is undone through ``B = NOR(A, w)`` — yet set covering can never
    return it because ``B`` is not in the candidate set.
    """
    c = Circuit("fig5b")
    for pi in ("x", "y", "z", "w"):
        c.add_input(pi)
    c.add_gate("A", GateType.BUF, ["x"])
    c.add_gate("B", GateType.NOR, ["A", "w"])
    c.add_gate("C", GateType.OR, ["A", "y"])
    c.add_gate("D", GateType.AND, ["C", "z"])
    c.add_gate("E", GateType.AND, ["D", "B"])
    c.add_output("E")
    c.validate()
    return c


#: The single failing test of Figure 5(b).
FIG5B_TEST: tuple[dict[str, int], str, int] = (
    {"x": 0, "y": 0, "z": 1, "w": 0},
    "E",
    1,
)


def ripple_carry_adder(width: int, name: str | None = None) -> Circuit:
    """``width``-bit ripple-carry adder: inputs a0.., b0.., cin; outputs s0.., cout."""
    if width < 1:
        raise ValueError("width must be positive")
    c = Circuit(name or f"rca{width}")
    for i in range(width):
        c.add_input(f"a{i}")
    for i in range(width):
        c.add_input(f"b{i}")
    c.add_input("cin")
    carry = "cin"
    for i in range(width):
        c.add_gate(f"p{i}", GateType.XOR, [f"a{i}", f"b{i}"])
        c.add_gate(f"s{i}", GateType.XOR, [f"p{i}", carry])
        c.add_gate(f"g{i}", GateType.AND, [f"a{i}", f"b{i}"])
        c.add_gate(f"t{i}", GateType.AND, [f"p{i}", carry])
        c.add_gate(f"c{i}", GateType.OR, [f"g{i}", f"t{i}"])
        carry = f"c{i}"
    for i in range(width):
        c.add_output(f"s{i}")
    c.add_output(carry)
    c.validate()
    return c


def parity_tree(width: int, name: str | None = None) -> Circuit:
    """XOR tree computing the parity of ``width`` inputs."""
    if width < 2:
        raise ValueError("width must be at least 2")
    c = Circuit(name or f"parity{width}")
    layer = []
    for i in range(width):
        c.add_input(f"x{i}")
        layer.append(f"x{i}")
    idx = 0
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer) - 1, 2):
            g = f"p{idx}"
            idx += 1
            c.add_gate(g, GateType.XOR, [layer[i], layer[i + 1]])
            nxt.append(g)
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    c.add_output(layer[0])
    c.validate()
    return c


def majority(name: str = "maj3") -> Circuit:
    """3-input majority voter: out = ab | bc | ac."""
    c = Circuit(name)
    for pi in ("a", "b", "c"):
        c.add_input(pi)
    c.add_gate("ab", GateType.AND, ["a", "b"])
    c.add_gate("bc", GateType.AND, ["b", "c"])
    c.add_gate("ac", GateType.AND, ["a", "c"])
    c.add_gate("o1", GateType.OR, ["ab", "bc"])
    c.add_gate("out", GateType.OR, ["o1", "ac"])
    c.add_output("out")
    c.validate()
    return c


def mux_tree(select_bits: int, name: str | None = None) -> Circuit:
    """A ``2**select_bits``-to-1 multiplexer built from AND/OR/NOT gates."""
    if select_bits < 1:
        raise ValueError("select_bits must be positive")
    n = 1 << select_bits
    c = Circuit(name or f"mux{n}")
    data = [f"d{i}" for i in range(n)]
    for d in data:
        c.add_input(d)
    sels = [f"s{i}" for i in range(select_bits)]
    for s in sels:
        c.add_input(s)
    for s in sels:
        c.add_gate(f"n_{s}", GateType.NOT, [s])
    terms = []
    for i, d in enumerate(data):
        lits = [d]
        for b, s in enumerate(sels):
            lits.append(s if (i >> b) & 1 else f"n_{s}")
        c.add_gate(f"t{i}", GateType.AND, lits)
        terms.append(f"t{i}")
    c.add_gate("out", GateType.OR, terms)
    c.add_output("out")
    c.validate()
    return c


def array_multiplier(width: int, name: str | None = None) -> Circuit:
    """``width``×``width`` unsigned array multiplier (outputs m0..m2w-1).

    Built from AND partial products and ripple carry-save rows — the
    classic BDD worst case: the middle product bits have exponential BDDs
    under *every* variable order (Bryant), which the BDD blowup benchmark
    exploits.
    """
    if width < 1:
        raise ValueError("width must be positive")
    c = Circuit(name or f"mul{width}")
    for i in range(width):
        c.add_input(f"a{i}")
    for i in range(width):
        c.add_input(f"b{i}")
    # Partial products.
    for i in range(width):
        for j in range(width):
            c.add_gate(f"pp{i}_{j}", GateType.AND, [f"a{i}", f"b{j}"])
    # Row-by-row addition: row i adds pp*_i shifted by i.
    acc = [f"pp{i}_0" for i in range(width)]  # bits i of a*b0
    outputs = [acc[0]]
    for j in range(1, width):
        row = [f"pp{i}_{j}" for i in range(width)]
        new_acc: list[str] = []
        carry: str | None = None
        for pos in range(width):
            x = acc[pos + 1] if pos + 1 < len(acc) else None
            y = row[pos]
            operands = [s for s in (x, y, carry) if s is not None]
            base = f"r{j}_{pos}"
            if len(operands) == 1:
                c.add_gate(f"{base}_s", GateType.BUF, operands)
                new_carry = None
            elif len(operands) == 2:
                c.add_gate(f"{base}_s", GateType.XOR, operands)
                c.add_gate(f"{base}_c", GateType.AND, operands)
                new_carry = f"{base}_c"
            else:  # full adder
                c.add_gate(f"{base}_s", GateType.XOR, operands)
                c.add_gate(f"{base}_c1", GateType.AND, [operands[0], operands[1]])
                c.add_gate(f"{base}_c2", GateType.AND, [operands[0], operands[2]])
                c.add_gate(f"{base}_c3", GateType.AND, [operands[1], operands[2]])
                c.add_gate(
                    f"{base}_c", GateType.OR, [f"{base}_c1", f"{base}_c2", f"{base}_c3"]
                )
                new_carry = f"{base}_c"
            new_acc.append(f"{base}_s")
            carry = new_carry
        if carry is not None:
            c.add_gate(f"r{j}_top", GateType.BUF, [carry])
            new_acc.append(f"r{j}_top")
        outputs.append(new_acc[0])
        acc = new_acc
    # Remaining accumulator bits are the high product bits.
    outputs.extend(acc[1:])
    for idx, sig in enumerate(outputs[: 2 * width]):
        c.add_gate(f"m{idx}", GateType.BUF, [sig])
        c.add_output(f"m{idx}")
    c.validate()
    return c


def equality_comparator(width: int, name: str | None = None) -> Circuit:
    """``width``-bit equality comparator: out = (a == b)."""
    if width < 1:
        raise ValueError("width must be positive")
    c = Circuit(name or f"eq{width}")
    for i in range(width):
        c.add_input(f"a{i}")
    for i in range(width):
        c.add_input(f"b{i}")
    bits = []
    for i in range(width):
        c.add_gate(f"e{i}", GateType.XNOR, [f"a{i}", f"b{i}"])
        bits.append(f"e{i}")
    if width == 1:
        c.add_gate("out", GateType.BUF, bits)
    else:
        c.add_gate("out", GateType.AND, bits)
    c.add_output("out")
    c.validate()
    return c


# ----------------------------------------------------------------------
# ISCAS89 stand-ins (see DESIGN.md): synthetic circuits sized so the full
# Table 2 / Table 3 sweep completes with a pure-Python CDCL solver, with
# the same relative size ordering as s1423 < s6669 < s38417.
# ----------------------------------------------------------------------

def sim1423() -> Circuit:
    """Synthetic stand-in for ISCAS89 s1423 (~650 gates, 17+74 PIs/FF-PPIs)."""
    return random_circuit(
        n_inputs=91, n_outputs=79, n_gates=650, seed=1423, name="sim1423"
    )


def sim6669() -> Circuit:
    """Synthetic stand-in for ISCAS89 s6669 (scaled to ~1 600 gates)."""
    return random_circuit(
        n_inputs=322, n_outputs=294, n_gates=1600, seed=6669, name="sim6669"
    )


def sim38417() -> Circuit:
    """Synthetic stand-in for ISCAS89 s38417 (scaled to ~3 600 gates)."""
    return random_circuit(
        n_inputs=1000, n_outputs=1100, n_gates=3600, seed=38417, name="sim38417"
    )


_REGISTRY: dict[str, Callable[[], Circuit]] = {
    "c17": c17,
    "s27": s27,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "maj3": majority,
    "sim1423": sim1423,
    "sim6669": sim6669,
    "sim38417": sim38417,
}


def get_circuit(name: str) -> Circuit:
    """Look up a registered circuit by name (see :func:`available_circuits`)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown circuit {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_circuits() -> tuple[str, ...]:
    """Names accepted by :func:`get_circuit`."""
    return tuple(sorted(_REGISTRY))
