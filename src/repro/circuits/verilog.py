"""Structural Verilog netlist reader/writer (gate-primitive subset).

ISCAS-style benchmark circuits circulate both as ``.bench`` and as flat
structural Verilog.  This module handles the subset those netlists use:

* one ``module`` with a port list,
* ``input`` / ``output`` / ``wire`` declarations (comma lists),
* gate primitive instances ``and/nand/or/nor/xor/xnor/not/buf`` with the
  output as the first connection (Verilog primitive convention), and a
  ``dff`` cell (output, input) for flip-flops,
* ``//`` and ``/* ... */`` comments.

Anything else (behavioural code, vectors, parameters) is rejected with a
clear error — the diagnosis flow only consumes flat gate-level netlists.
"""

from __future__ import annotations

import io
import re
from pathlib import Path
from typing import TextIO

from .gates import GateType
from .netlist import Circuit, CircuitError

__all__ = [
    "parse_verilog",
    "load_verilog",
    "write_verilog",
    "dump_verilog",
    "VerilogFormatError",
]


class VerilogFormatError(ValueError):
    """Raised on input outside the supported structural subset."""


_PRIMITIVES = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
    "dff": GateType.DFF,
}

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*|\\[^\s]+"


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    return text


def parse_verilog(text: str, name: str | None = None) -> Circuit:
    """Parse structural Verilog into a validated :class:`Circuit`.

    >>> src = '''
    ... module inv (a, y);
    ...   input a; output y;
    ...   not n1 (y, a);
    ... endmodule
    ... '''
    >>> parse_verilog(src).num_gates
    1
    """
    stripped = _strip_comments(text)
    module_match = re.search(
        rf"module\s+({_IDENT})\s*\(([^)]*)\)\s*;(.*?)endmodule",
        stripped,
        flags=re.DOTALL,
    )
    if not module_match:
        raise VerilogFormatError("no structural module found")
    module_name, _ports, body = module_match.groups()
    circuit = Circuit(name or module_name)

    inputs: list[str] = []
    outputs: list[str] = []
    statements = [s.strip() for s in body.split(";") if s.strip()]
    for stmt in statements:
        keyword_match = re.match(rf"({_IDENT})\s*(.*)", stmt, flags=re.DOTALL)
        if not keyword_match:
            raise VerilogFormatError(f"cannot parse statement {stmt!r}")
        keyword, rest = keyword_match.groups()
        if keyword in ("input", "output", "wire"):
            if re.match(r"\s*\[", rest):
                raise VerilogFormatError(
                    f"vector declarations are not supported: {stmt!r}"
                )
            names = [n.strip() for n in rest.split(",") if n.strip()]
            if keyword == "input":
                inputs.extend(names)
            elif keyword == "output":
                outputs.extend(names)
            # wires carry no information we need
            continue
        if keyword in _PRIMITIVES:
            gtype = _PRIMITIVES[keyword]
            inst = re.match(
                rf"(?:({_IDENT})\s*)?\(\s*([^)]*)\)\s*$", rest, flags=re.DOTALL
            )
            if not inst:
                raise VerilogFormatError(f"cannot parse instance {stmt!r}")
            _inst_name, conn_text = inst.groups()
            conns = [c.strip() for c in conn_text.split(",") if c.strip()]
            if len(conns) < 2:
                raise VerilogFormatError(
                    f"primitive needs an output and at least one input: "
                    f"{stmt!r}"
                )
            out, fanins = conns[0], conns[1:]
            try:
                circuit.add_gate(out, gtype, fanins)
            except CircuitError as exc:
                raise VerilogFormatError(str(exc)) from exc
            continue
        raise VerilogFormatError(
            f"unsupported construct {keyword!r} (structural subset only)"
        )

    final = Circuit(circuit.name)
    for pi in inputs:
        final.add_input(pi)
    for gate in circuit:
        final.add_gate(gate.name, gate.gtype, gate.fanins)
    for po in outputs:
        final.add_output(po)
    try:
        final.validate()
    except CircuitError as exc:
        raise VerilogFormatError(str(exc)) from exc
    return final


def load_verilog(path: str | Path) -> Circuit:
    path = Path(path)
    return parse_verilog(path.read_text(), name=path.stem)


def write_verilog(circuit: Circuit, stream: TextIO) -> None:
    """Serialize ``circuit`` as a flat structural Verilog module."""
    ports = list(circuit.inputs) + list(circuit.outputs)
    stream.write(f"// {circuit.name}\n")
    stream.write(f"module {circuit.name} ({', '.join(ports)});\n")
    if circuit.inputs:
        stream.write(f"  input {', '.join(circuit.inputs)};\n")
    if circuit.outputs:
        stream.write(f"  output {', '.join(circuit.outputs)};\n")
    internal = [
        g.name
        for g in circuit
        if not g.is_input and g.name not in circuit.outputs
    ]
    if internal:
        stream.write(f"  wire {', '.join(internal)};\n")
    reverse = {v: k for k, v in _PRIMITIVES.items()}
    for idx, gate in enumerate(circuit):
        if gate.is_input:
            continue
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            raise VerilogFormatError(
                "constant drivers have no primitive; replace with tie cells"
            )
        prim = reverse[gate.gtype]
        conns = ", ".join((gate.name, *gate.fanins))
        stream.write(f"  {prim} g{idx} ({conns});\n")
    stream.write("endmodule\n")


def dump_verilog(circuit: Circuit, path: str | Path | None = None) -> str:
    buf = io.StringIO()
    write_verilog(circuit, buf)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
