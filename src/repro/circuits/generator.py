"""Seeded synthetic netlist generation.

The paper's experiments run on ISCAS89 circuits (s1423, s6669, s38417).
Those ``.bench`` files are not bundled in this offline environment, so the
experiment harness uses *synthetic stand-ins* produced here: random
combinational netlists with an ISCAS89-like profile (mostly 2-input
AND/NAND/OR/NOR, some inverters, bounded fan-in, every gate reaching an
output).  Generation is fully deterministic in the seed, so every benchmark
row in EXPERIMENTS.md is reproducible.

Real ISCAS89 netlists can be substituted at any time through
:func:`repro.circuits.bench.load`; all downstream code is agnostic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .gates import GateType
from .netlist import Circuit

__all__ = ["GeneratorConfig", "random_circuit", "random_sequential_circuit"]

#: Default gate-type mix, roughly matching ISCAS89 statistics (dominated by
#: NAND/NOR/AND/OR with a sprinkle of inverters; XORs are rare).
_DEFAULT_WEIGHTS: dict[GateType, float] = {
    GateType.AND: 0.22,
    GateType.NAND: 0.22,
    GateType.OR: 0.18,
    GateType.NOR: 0.18,
    GateType.NOT: 0.12,
    GateType.XOR: 0.04,
    GateType.XNOR: 0.02,
    GateType.BUF: 0.02,
}


@dataclass
class GeneratorConfig:
    """Parameters of :func:`random_circuit`.

    ``locality`` controls depth: fanins are drawn from the most recent
    ``locality``-fraction of existing signals with high probability, which
    produces long sensitizable paths instead of a shallow blob.
    """

    n_inputs: int = 8
    n_outputs: int = 4
    n_gates: int = 40
    max_fanin: int = 4
    seed: int = 0
    weights: dict[GateType, float] = field(
        default_factory=lambda: dict(_DEFAULT_WEIGHTS)
    )
    locality: float = 0.25
    name: str | None = None

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise ValueError("need at least one input")
        if self.n_gates < self.n_outputs:
            raise ValueError("need at least as many gates as outputs")
        if not 0.0 < self.locality <= 1.0:
            raise ValueError("locality must be in (0, 1]")


def _pick_type(rng: random.Random, weights: dict[GateType, float]) -> GateType:
    types = list(weights)
    cum: list[float] = []
    total = 0.0
    for t in types:
        total += weights[t]
        cum.append(total)
    r = rng.random() * total
    for t, c in zip(types, cum):
        if r <= c:
            return t
    return types[-1]


def _pick_fanins(
    rng: random.Random, pool: list[str], count: int, locality: float
) -> list[str]:
    """Draw ``count`` distinct fanins, biased toward the tail of ``pool``."""
    window = max(count, int(len(pool) * locality))
    recent = pool[-window:]
    chosen: list[str] = []
    seen: set[str] = set()
    attempts = 0
    while len(chosen) < count and attempts < 20 * count:
        source = recent if rng.random() < 0.8 else pool
        cand = source[rng.randrange(len(source))]
        attempts += 1
        if cand not in seen:
            seen.add(cand)
            chosen.append(cand)
    if len(chosen) < count:  # tiny pools: fall back to a deterministic fill
        for cand in reversed(pool):
            if cand not in seen:
                chosen.append(cand)
                seen.add(cand)
                if len(chosen) == count:
                    break
    return chosen


def random_circuit(config: GeneratorConfig | None = None, **kwargs) -> Circuit:
    """Generate a random combinational circuit.

    Accepts either a :class:`GeneratorConfig` or the same fields as keyword
    arguments::

        >>> c = random_circuit(n_inputs=4, n_outputs=2, n_gates=10, seed=7)
        >>> c.num_gates >= 10
        True

    Guarantees: acyclic, every declared gate has existing fanins, every
    signal without fanout is funneled into an output tree so the circuit has
    exactly ``n_outputs`` outputs and no dead logic.  A few extra 2-input
    gates may be added by the funneling step, so ``num_gates`` can slightly
    exceed ``n_gates``.
    """
    if config is None:
        config = GeneratorConfig(**kwargs)
    elif kwargs:
        raise TypeError("pass either a config object or keyword fields, not both")
    rng = random.Random(config.seed)
    name = config.name or f"rand_{config.n_gates}g_s{config.seed}"
    circuit = Circuit(name)
    pool: list[str] = []
    for i in range(config.n_inputs):
        pi = f"pi{i}"
        circuit.add_input(pi)
        pool.append(pi)
    for i in range(config.n_gates):
        gtype = _pick_type(rng, config.weights)
        if gtype in (GateType.NOT, GateType.BUF):
            arity = 1
        else:
            arity = rng.randint(2, max(2, min(config.max_fanin, len(pool))))
        fanins = _pick_fanins(rng, pool, arity, config.locality)
        gname = f"g{i}"
        circuit.add_gate(gname, gtype, fanins)
        pool.append(gname)

    # Funnel dangling signals into exactly n_outputs outputs.
    fanouts = circuit.fanouts()
    dangling = [n for n in pool if not fanouts[n]]
    if not dangling:  # all consumed (possible for tiny configs): tap the tail
        dangling = pool[-config.n_outputs:]
    extra = 0
    while len(dangling) > config.n_outputs:
        a = dangling.pop(rng.randrange(len(dangling)))
        b = dangling.pop(rng.randrange(len(dangling)))
        gname = f"j{extra}"
        extra += 1
        gtype = rng.choice([GateType.AND, GateType.OR, GateType.XOR, GateType.NAND])
        circuit.add_gate(gname, gtype, [a, b])
        dangling.append(gname)
    while len(dangling) < config.n_outputs:
        cand = pool[rng.randrange(len(pool))]
        if cand not in dangling:
            dangling.append(cand)
    for out in dangling:
        circuit.add_output(out)
    circuit.validate()
    return circuit


def random_sequential_circuit(
    n_inputs: int = 4,
    n_outputs: int = 2,
    n_gates: int = 30,
    n_dffs: int = 4,
    seed: int = 0,
    name: str | None = None,
) -> Circuit:
    """Generate a random sequential circuit with ``n_dffs`` flip-flops.

    DFF outputs act as extra sources for the combinational part; DFF inputs
    are tapped from late combinational signals, so state actually evolves.
    Used by the sequential-diagnosis extension and the scan-conversion tests.
    """
    rng = random.Random(seed ^ 0x5EED)
    comb = random_circuit(
        n_inputs=n_inputs + n_dffs,
        n_outputs=n_outputs + n_dffs,
        n_gates=n_gates,
        seed=rng.randrange(1 << 30),
        name=name or f"randseq_{n_gates}g_s{seed}",
    )
    circuit = Circuit(comb.name)
    state_names = [f"st{i}" for i in range(n_dffs)]
    renamed_inputs = list(comb.inputs[:n_inputs])
    for pi in renamed_inputs:
        circuit.add_input(pi)
    # The last n_dffs "inputs" of the combinational core become DFF outputs.
    dff_driven = {
        old: new for old, new in zip(comb.inputs[n_inputs:], state_names)
    }
    comb_outputs = list(comb.outputs)
    next_state = comb_outputs[n_outputs:]
    for state, nxt in zip(state_names, next_state):
        circuit.add_gate(state, GateType.DFF, [dff_driven.get(nxt, nxt)])
    for gate in comb:
        if gate.is_input:
            continue
        fanins = [dff_driven.get(f, f) for f in gate.fanins]
        circuit.add_gate(gate.name, gate.gtype, fanins)
    for out in comb_outputs[:n_outputs]:
        circuit.add_output(dff_driven.get(out, out))
    circuit.validate()
    return circuit
