"""Static variable reordering for BDDs.

The BDD blowup the paper's intro cites is order-dependent: a bad order can
be exponentially worse than a good one for the same function.  This module
searches for better orders using the :meth:`~repro.bdd.manager.BddManager.transfer`
primitive (rebuild under a candidate order, count nodes):

* :func:`evaluate_order` — node count of a function set under an order;
* :func:`exhaustive_best_order` — exact optimum by trying all
  permutations (only feasible for small supports; used as the oracle);
* :func:`sift_order` — greedy sifting à la Rudell, done statically: each
  variable in turn is tried at every position, keeping the best; repeated
  until a fixed point.  Never returns a worse order than the input.

For multipliers no order helps (Bryant's lower bound) — asserted by the
test-suite — which is exactly why the paper's SAT-based formulation wins
on space.
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence

from .manager import BddManager

__all__ = ["evaluate_order", "exhaustive_best_order", "sift_order"]


def evaluate_order(
    manager: BddManager,
    roots: Sequence[int],
    order: Sequence[str],
    max_nodes: int | None = None,
) -> int:
    """Shared node count of ``roots`` rebuilt under ``order``."""
    target = BddManager(order=list(order), max_nodes=max_nodes)
    memo: dict[int, int] = {}
    rebuilt = [manager.transfer(r, target, memo) for r in roots]
    return target.count_nodes(*rebuilt)


def _support_order(
    manager: BddManager, roots: Sequence[int]
) -> list[str]:
    """Current-order restriction to the variables the roots depend on."""
    support: set[str] = set()
    for root in roots:
        support |= manager.support(root)
    return [v for v in manager.variable_order if v in support]


def exhaustive_best_order(
    manager: BddManager, roots: Sequence[int], max_vars: int = 8
) -> tuple[list[str], int]:
    """The provably optimal order (and its node count) for small supports.

    Only variables in the support are permuted (free variables cannot
    change node counts).  Guards against factorial blowup via
    ``max_vars``.
    """
    base = _support_order(manager, roots)
    if len(base) > max_vars:
        raise ValueError(
            f"support has {len(base)} variables; exhaustive search is "
            f"capped at {max_vars}"
        )
    best_order = list(base)
    best_count = evaluate_order(manager, roots, best_order)
    for perm in permutations(base):
        count = evaluate_order(manager, roots, perm)
        if count < best_count:
            best_order, best_count = list(perm), count
    return best_order, best_count


def sift_order(
    manager: BddManager,
    roots: Sequence[int],
    max_rounds: int = 4,
) -> tuple[list[str], int]:
    """Greedy sifting: move each variable to its locally best position.

    Variables are processed in decreasing order of node contribution (the
    classic heuristic); rounds repeat until no move improves or
    ``max_rounds`` is reached.  Returns ``(order, node_count)`` with
    ``node_count`` ≤ the input order's count.
    """
    order = _support_order(manager, roots)
    if not order:
        return [], evaluate_order(manager, roots, [])
    best_count = evaluate_order(manager, roots, order)
    for _round in range(max_rounds):
        improved = False
        for var in list(order):
            base = [v for v in order if v != var]
            trial_best = None
            for pos in range(len(base) + 1):
                candidate = base[:pos] + [var] + base[pos:]
                count = evaluate_order(manager, roots, candidate)
                if trial_best is None or count < trial_best[1]:
                    trial_best = (candidate, count)
            assert trial_best is not None
            if trial_best[1] < best_count:
                order, best_count = trial_best
                improved = True
        if not improved:
            break
    return order, best_count
