"""BDD substrate: ROBDD manager, circuit builder, diagnosis baseline.

The paper's introduction contrasts the test-vector-based approaches it
studies with BDD-based diagnosis (refs [6, 8]), dismissed for "space
complexity issues" on large designs.  This package makes that baseline —
and its blowup — executable:

* :class:`~repro.bdd.manager.BddManager` — from-scratch ROBDD engine
  (unique table, memoized ``ite``, quantification, counting).
* :mod:`~repro.bdd.circuit` — circuit → output BDDs under configurable
  static variable orders.
* :mod:`~repro.bdd.diag` — canonical equivalence checking and
  single-fix rectification diagnosis (all input vectors at once).
* :mod:`~repro.bdd.cover` — a third, BDD-path engine for the COV covering
  step, cross-checked against the SAT and branch-and-bound engines.
"""

from .manager import BddManager, BddBlowupError, ZERO, ONE
from .circuit import BuiltCircuit, build_output_bdds, dfs_input_order
from .diag import (
    Rectification,
    bdd_counterexample,
    bdd_equivalent,
    single_fix_candidates,
)
from .cover import cover_bdd, minimal_covers_bdd
from .reorder import evaluate_order, exhaustive_best_order, sift_order

__all__ = [
    "evaluate_order",
    "exhaustive_best_order",
    "sift_order",
    "BddManager",
    "BddBlowupError",
    "ZERO",
    "ONE",
    "BuiltCircuit",
    "build_output_bdds",
    "dfs_input_order",
    "Rectification",
    "bdd_counterexample",
    "bdd_equivalent",
    "single_fix_candidates",
    "cover_bdd",
    "minimal_covers_bdd",
]
