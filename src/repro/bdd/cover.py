"""Minimal set covers via BDDs — a third engine for the paper's COV step.

``SCDiagnose`` (Fig. 4) needs all inclusion-minimal covers of the
path-tracing candidate sets with at most ``k`` elements.  The library
already solves this with SAT enumeration (the paper's route) and with
branch-and-bound; this module adds the canonical alternative: build the
covering constraint as a BDD — conjunction over tests of the disjunction
of their candidate gates — and walk its paths.

The three engines return identical solution sets (asserted by a
differential test), which is exactly the kind of redundancy a diagnosis
tool wants for its trusted core.
"""

from __future__ import annotations

from typing import Sequence

from .manager import ONE, ZERO, BddManager

__all__ = ["minimal_covers_bdd", "cover_bdd"]


def cover_bdd(
    sets: Sequence[frozenset[str]],
    manager: BddManager | None = None,
) -> tuple[BddManager, int]:
    """The covering constraint ``∧_i (∨_{g ∈ C_i} g)`` as a BDD.

    Variables are the union of all candidate gates, ordered by name.
    Returns ``(manager, root)``.
    """
    universe = sorted(set().union(*sets)) if sets else []
    if manager is None:
        manager = BddManager(order=universe)
    root = ONE
    for s in sorted(sets, key=lambda s: (len(s), sorted(s))):
        clause = ZERO
        for g in sorted(s):
            clause = manager.apply_or(clause, manager.var(g))
        root = manager.apply_and(root, clause)
    return manager, root


def minimal_covers_bdd(
    sets: Sequence[frozenset[str]], k: int
) -> list[frozenset[str]]:
    """All inclusion-minimal covers of ``sets`` with at most ``k`` elements.

    Walks the cover BDD, assuming skipped variables default to 0 (which is
    sound: reaching the 1-terminal means the chosen-positive set already
    covers), and filters the collected sets to the inclusion-minimal ones.
    Matches :func:`repro.diagnosis.cover.minimal_covers_sat` exactly.

    >>> sets = [frozenset({"a", "b"}), frozenset({"b", "c"})]
    >>> sorted(sorted(c) for c in minimal_covers_bdd(sets, k=2))
    [['a', 'c'], ['b']]
    """
    if not sets:
        return [frozenset()]
    if any(not s for s in sets):
        return []
    manager, root = cover_bdd(sets)
    found: set[frozenset[str]] = set()
    chosen: list[str] = []

    def walk(node: int, budget: int) -> None:
        if node == ZERO:
            return
        if node == ONE:
            found.add(frozenset(chosen))
            return
        name = manager.node_var(node)
        walk(manager.node_low(node), budget)
        if budget > 0:
            chosen.append(name)
            walk(manager.node_high(node), budget - 1)
            chosen.pop()

    walk(root, k)
    minimal = [
        c for c in found if not any(other < c for other in found)
    ]
    return sorted(minimal, key=lambda c: (len(c), sorted(c)))
