"""Reduced ordered binary decision diagram (ROBDD) manager.

The paper's introduction positions BDD-based diagnosis approaches
(refs [6, 8]) as the alternative that "suffers from space complexity
issues" on large designs.  To make that comparison executable this module
implements the classic Bryant/Brace-Rudell-Bryant machinery from scratch:

* a shared strong-canonical node store (unique table) — two equivalent
  functions are *the same* node index, so equivalence checking is ``==``;
* recursive ``ite`` with a computed table (memoization);
* Boolean operations, cofactors/restriction, composition, existential and
  universal quantification;
* model counting, witness extraction and reachable-node counting — the
  size metric the blowup benchmark reports.

No complement edges and no garbage collection: nodes live for the lifetime
of the manager, which keeps the canonicity argument obvious and is ample
for the reproduction's circuit sizes.  A configurable ``max_nodes`` bound
turns the intro's space blowup into a catchable :class:`BddBlowupError`
instead of an out-of-memory kill.

>>> m = BddManager()
>>> x, y = m.declare("x"), m.declare("y")
>>> f = m.apply_and(x, y)
>>> m.evaluate(f, {"x": 1, "y": 1})
1
>>> m.satcount(f) == 1.0
True
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

__all__ = ["BddManager", "BddBlowupError", "ZERO", "ONE"]

#: Terminal node indices (shared by every manager).
ZERO: int = 0
ONE: int = 1


class BddBlowupError(RuntimeError):
    """Raised when the unique table exceeds the manager's node budget."""


class BddManager:
    """A ROBDD node store with a fixed variable order.

    Variables are declared once with :meth:`declare` (or in bulk through
    ``BddManager(order=[...])``); their declaration order is the BDD
    variable order.  All functions returned by manager methods are node
    indices valid only within this manager.
    """

    def __init__(
        self,
        order: Sequence[str] = (),
        max_nodes: int | None = None,
    ) -> None:
        # Parallel arrays: level (terminals get a sentinel level), low, high.
        self._level: list[int] = [2**30, 2**30]
        self._low: list[int] = [ZERO, ONE]
        self._high: list[int] = [ZERO, ONE]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        self._name_of_level: list[str] = []
        self._level_of_name: dict[str, int] = {}
        self.max_nodes = max_nodes
        for name in order:
            self.declare(name)

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def declare(self, name: str) -> int:
        """Declare variable ``name`` (next level) and return its BDD node.

        Re-declaring an existing name returns the same node.
        """
        if name not in self._level_of_name:
            self._level_of_name[name] = len(self._name_of_level)
            self._name_of_level.append(name)
        return self.var(name)

    def var(self, name: str) -> int:
        """The BDD of the single variable ``name`` (must be declared)."""
        try:
            level = self._level_of_name[name]
        except KeyError:
            raise KeyError(f"undeclared BDD variable {name!r}") from None
        return self._mk(level, ZERO, ONE)

    @property
    def variable_order(self) -> tuple[str, ...]:
        """Declared names, outermost (top) first."""
        return tuple(self._name_of_level)

    @property
    def num_nodes(self) -> int:
        """Total nodes ever created, including the two terminals."""
        return len(self._level)

    def level_name(self, level: int) -> str:
        return self._name_of_level[level]

    def node_var(self, node: int) -> str:
        """Decision variable name of an internal ``node``."""
        if node <= ONE:
            raise ValueError("terminals have no decision variable")
        return self._name_of_level[self._level[node]]

    def node_low(self, node: int) -> int:
        """Else-child (variable = 0) of an internal ``node``."""
        return self._low[node]

    def node_high(self, node: int) -> int:
        """Then-child (variable = 1) of an internal ``node``."""
        return self._high[node]

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self.max_nodes is not None and len(self._level) >= self.max_nodes:
            raise BddBlowupError(
                f"BDD node budget exceeded ({self.max_nodes} nodes); "
                "the function has no compact representation in this order"
            )
        node = len(self._level)
        self._level.append(level)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    def _top_level(self, *nodes: int) -> int:
        return min(self._level[n] for n in nodes)

    def _cofactor(self, node: int, level: int, value: int) -> int:
        if self._level[node] != level:
            return node
        return self._high[node] if value else self._low[node]

    # ------------------------------------------------------------------
    # core operation: if-then-else
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """The if-then-else operator: ``f·g + f̄·h`` (canonical result)."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = self._top_level(f, g, h)
        high = self.ite(
            self._cofactor(f, level, 1),
            self._cofactor(g, level, 1),
            self._cofactor(h, level, 1),
        )
        low = self.ite(
            self._cofactor(f, level, 0),
            self._cofactor(g, level, 0),
            self._cofactor(h, level, 0),
        )
        result = self._mk(level, low, high)
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        return self.ite(f, ZERO, ONE)

    def apply_and(self, *fs: int) -> int:
        result = ONE
        for f in fs:
            result = self.ite(result, f, ZERO)
        return result

    def apply_or(self, *fs: int) -> int:
        result = ZERO
        for f in fs:
            result = self.ite(result, ONE, f)
        return result

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def apply_xnor(self, f: int, g: int) -> int:
        return self.ite(f, g, self.apply_not(g))

    def apply_implies(self, f: int, g: int) -> int:
        return self.ite(f, g, ONE)

    def apply_equiv(self, f: int, g: int) -> int:
        return self.apply_xnor(f, g)

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def restrict(self, f: int, name: str, value: int) -> int:
        """Cofactor of ``f`` with variable ``name`` fixed to ``value``."""
        level = self._level_of_name[name]
        memo: dict[int, int] = {}

        def walk(node: int) -> int:
            if self._level[node] > level:
                return node  # terminal or entirely below the variable
            hit = memo.get(node)
            if hit is not None:
                return hit
            if self._level[node] == level:
                result = self._high[node] if value else self._low[node]
            else:
                result = self._mk(
                    self._level[node],
                    walk(self._low[node]),
                    walk(self._high[node]),
                )
            memo[node] = result
            return result

        return walk(f)

    def compose(self, f: int, name: str, g: int) -> int:
        """Functional composition ``f[name ← g]``."""
        return self.ite(
            g, self.restrict(f, name, 1), self.restrict(f, name, 0)
        )

    def exists(self, f: int, names: Sequence[str] | str) -> int:
        """Existential quantification over one or several variables."""
        if isinstance(names, str):
            names = [names]
        result = f
        for name in names:
            result = self.apply_or(
                self.restrict(result, name, 0), self.restrict(result, name, 1)
            )
        return result

    def forall(self, f: int, names: Sequence[str] | str) -> int:
        """Universal quantification over one or several variables."""
        if isinstance(names, str):
            names = [names]
        result = f
        for name in names:
            result = self.apply_and(
                self.restrict(result, name, 0), self.restrict(result, name, 1)
            )
        return result

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: Mapping[str, int]) -> int:
        """Value of ``f`` under a complete assignment.

        Raises ``KeyError`` when the path needs an unassigned variable.
        """
        node = f
        while node > ONE:
            name = self._name_of_level[self._level[node]]
            node = (
                self._high[node] if assignment[name] & 1 else self._low[node]
            )
        return node

    def satcount(self, f: int, n_vars: int | None = None) -> float:
        """Fraction-free satisfying-assignment count over ``n_vars`` variables
        (default: all declared), returned as a float to allow huge counts."""
        total_vars = len(self._name_of_level) if n_vars is None else n_vars
        memo: dict[int, float] = {ZERO: 0.0, ONE: 1.0}

        def walk(node: int) -> float:
            hit = memo.get(node)
            if hit is not None:
                return hit
            level = self._level[node]
            low, high = self._low[node], self._high[node]
            low_levels = (self._level[low] if low > ONE else total_vars) - level - 1
            high_levels = (self._level[high] if high > ONE else total_vars) - level - 1
            result = walk(low) * (2.0**low_levels) + walk(high) * (
                2.0**high_levels
            )
            memo[node] = result
            return result

        if f == ZERO:
            return 0.0
        if f == ONE:
            return 2.0**total_vars
        top = self._level[f]
        return walk(f) * (2.0**top)

    def sat_one(self, f: int) -> dict[str, int] | None:
        """One satisfying partial assignment (None when ``f`` is ZERO)."""
        if f == ZERO:
            return None
        assignment: dict[str, int] = {}
        node = f
        while node > ONE:
            name = self._name_of_level[self._level[node]]
            if self._high[node] != ZERO:
                assignment[name] = 1
                node = self._high[node]
            else:
                assignment[name] = 0
                node = self._low[node]
        return assignment

    def sat_all(self, f: int) -> Iterator[dict[str, int]]:
        """Iterate all satisfying *partial* assignments (one per BDD path)."""
        path: dict[str, int] = {}

        def walk(node: int) -> Iterator[dict[str, int]]:
            if node == ZERO:
                return
            if node == ONE:
                yield dict(path)
                return
            name = self._name_of_level[self._level[node]]
            for value, child in ((0, self._low[node]), (1, self._high[node])):
                path[name] = value
                yield from walk(child)
                del path[name]

        return walk(f)

    def count_nodes(self, *roots: int) -> int:
        """Number of distinct nodes reachable from ``roots`` (incl. terminals)."""
        seen: set[int] = set()
        stack = [r for r in roots]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node > ONE:
                stack.append(self._low[node])
                stack.append(self._high[node])
        return len(seen)

    def support(self, f: int) -> set[str]:
        """Variable names ``f`` structurally depends on."""
        seen: set[int] = set()
        names: set[str] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= ONE or node in seen:
                continue
            seen.add(node)
            names.add(self._name_of_level[self._level[node]])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return names

    # ------------------------------------------------------------------
    # transfer between managers (static reordering)
    # ------------------------------------------------------------------
    def transfer(
        self, f: int, target: "BddManager", memo: dict[int, int] | None = None
    ) -> int:
        """Rebuild ``f`` inside ``target`` (whose order may differ).

        This is the static-reordering primitive: building the same function
        under a different variable order to compare node counts.  All
        variables in the support of ``f`` must be declared in ``target``.
        """
        memo = {} if memo is None else memo

        def walk(node: int) -> int:
            if node <= ONE:
                return node
            hit = memo.get(node)
            if hit is not None:
                return hit
            name = self._name_of_level[self._level[node]]
            low = walk(self._low[node])
            high = walk(self._high[node])
            result = target.ite(target.var(name), high, low)
            memo[node] = result
            return result

        return walk(f)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BddManager(vars={len(self._name_of_level)}, "
            f"nodes={self.num_nodes})"
        )
