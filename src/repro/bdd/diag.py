"""BDD-based equivalence checking and rectification diagnosis.

The baseline family of the paper's introduction (refs [6, 8]): represent
the specification and the implementation canonically, then decide — for
*all* input vectors at once — whether a candidate gate can be rectified.

* :func:`bdd_equivalent` / :func:`bdd_counterexample` — combinational
  equivalence by root identity in a shared manager (the canonical-form
  alternative to the SAT miter of :func:`repro.testgen.satgen.are_equivalent`).
* :func:`single_fix_candidates` — Hoffmann/Kropf-style single-gate
  rectification: gate ``g`` is a candidate iff replacing its function by
  *some* Boolean function of the primary inputs makes the implementation
  equivalent to the specification.  The check is one quantifier-free BDD
  formula per gate: with a fresh variable β spliced in at ``g``,

      rectifiable(g)  ⇔  agree₀ ∨ agree₁  ≡ 1,

  where agreeᵥ := ∧ₒ (impl_o[β←v] ≡ spec_o).  The witness function β(x) =
  agree₁ rectifies wherever rectification is possible.

Because the check quantifies over all inputs it is *stronger* than the
test-set-based BSAT: every BDD single-fix candidate is also a BSAT
solution for any test set of the same error (asserted by a cross test),
while BSAT may keep additional candidates that only survive the given
tests.  The cost is canonicity: node counts can explode with circuit size
(the intro's criticism), which :mod:`benchmarks.bench_bdd_blowup`
quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit
from .circuit import BuiltCircuit, build_output_bdds, dfs_input_order, fold_gate
from .manager import ONE, BddManager

__all__ = [
    "bdd_equivalent",
    "bdd_counterexample",
    "Rectification",
    "single_fix_candidates",
]

#: Name of the spliced-in replacement variable.
_FIX_VAR = "__fix__"


def _shared_build(
    golden: Circuit, impl: Circuit, max_nodes: int | None
) -> tuple[BddManager, BuiltCircuit, BuiltCircuit]:
    if golden.inputs != impl.inputs:
        raise ValueError("circuits must share primary inputs")
    if set(golden.outputs) != set(impl.outputs):
        raise ValueError("circuits must share primary outputs")
    manager = BddManager(order=dfs_input_order(golden), max_nodes=max_nodes)
    built_g = build_output_bdds(golden, manager=manager)
    built_i = build_output_bdds(impl, manager=manager)
    return manager, built_g, built_i


def bdd_equivalent(
    golden: Circuit, impl: Circuit, max_nodes: int | None = None
) -> bool:
    """Combinational equivalence via canonical BDDs.

    >>> from repro.circuits.library import c17
    >>> bdd_equivalent(c17(), c17())
    True
    """
    _manager, built_g, built_i = _shared_build(golden, impl, max_nodes)
    return all(
        built_g.roots[o] == built_i.roots[o] for o in golden.outputs
    )


def bdd_counterexample(
    golden: Circuit, impl: Circuit, max_nodes: int | None = None
) -> dict[str, int] | None:
    """A distinguishing input vector, or None when equivalent.

    Don't-care inputs of the BDD witness are filled with 0, so the result
    is a complete assignment directly usable by the simulators.
    """
    manager, built_g, built_i = _shared_build(golden, impl, max_nodes)
    for out in golden.outputs:
        diff = manager.apply_xor(built_g.roots[out], built_i.roots[out])
        witness = manager.sat_one(diff)
        if witness is not None:
            return {pi: witness.get(pi, 0) for pi in golden.inputs}
    return None


@dataclass(frozen=True)
class Rectification:
    """A single-fix diagnosis: ``gate`` plus the witness function.

    ``function`` is a BDD over the primary inputs inside ``manager``;
    forcing the gate's output to ``function(x)`` for every input vector
    ``x`` makes the implementation equivalent to the specification.
    """

    gate: str
    function: int
    manager: BddManager

    def value_for(self, vector: Mapping[str, int]) -> int:
        """Witness output value for one input vector (for simulators)."""
        return self.manager.evaluate(self.function, vector)

    def is_constant(self) -> bool:
        """True when the rectification is a stuck-at-style constant."""
        return self.function in (0, 1)


def single_fix_candidates(
    golden: Circuit,
    impl: Circuit,
    candidates: Sequence[str] | None = None,
    max_nodes: int | None = None,
) -> list[Rectification]:
    """All gates of ``impl`` rectifiable by a single function replacement.

    ``candidates`` restricts the gates examined (default: all functional
    gates).  Each result carries the witness function β(x) = agree₁.

    >>> from repro.circuits import GateType
    >>> from repro.circuits.library import majority
    >>> from repro.faults import GateChangeError, apply_error
    >>> impl = apply_error(majority(), GateChangeError("ab", GateType.AND, GateType.OR))
    >>> names = [r.gate for r in single_fix_candidates(majority(), impl)]
    >>> "ab" in names
    True
    """
    if golden.inputs != impl.inputs:
        raise ValueError("circuits must share primary inputs")
    if set(golden.outputs) != set(impl.outputs):
        raise ValueError("circuits must share primary outputs")
    pool = list(candidates) if candidates is not None else list(impl.gate_names)
    order = dfs_input_order(golden) + [_FIX_VAR]
    manager = BddManager(order=order, max_nodes=max_nodes)
    built_g = build_output_bdds(golden, manager=manager)
    beta = manager.var(_FIX_VAR)
    results: list[Rectification] = []
    for gate_name in pool:
        if gate_name not in impl:
            raise ValueError(f"unknown candidate gate {gate_name!r}")
        spliced = _build_with_replacement(manager, impl, gate_name, beta)
        agree0 = ONE
        agree1 = ONE
        for out in golden.outputs:
            spec = built_g.roots[out]
            agree0 = manager.apply_and(
                agree0,
                manager.apply_equiv(
                    manager.restrict(spliced[out], _FIX_VAR, 0), spec
                ),
            )
            agree1 = manager.apply_and(
                agree1,
                manager.apply_equiv(
                    manager.restrict(spliced[out], _FIX_VAR, 1), spec
                ),
            )
        if manager.apply_or(agree0, agree1) == ONE:
            results.append(
                Rectification(gate=gate_name, function=agree1, manager=manager)
            )
    return results


def _build_with_replacement(
    manager: BddManager, circuit: Circuit, gate_name: str, replacement: int
) -> dict[str, int]:
    """Output BDDs of ``circuit`` with ``gate_name`` replaced by a BDD node."""
    node_of: dict[str, int] = {}
    for name in circuit.topological_order():
        if name == gate_name:
            node_of[name] = replacement
            continue
        gate = circuit.node(name)
        if gate.gtype is GateType.INPUT:
            node_of[name] = manager.var(name)
            continue
        node_of[name] = fold_gate(
            manager, gate.gtype, [node_of[f] for f in gate.fanins]
        )
    return {out: node_of[out] for out in circuit.outputs}
