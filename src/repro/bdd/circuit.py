"""Building BDDs for gate-level circuits.

One topological pass folds every gate into the manager; the result is one
BDD root per primary output over the primary-input variables.  The
variable order is the dominant cost factor (the intro's space-complexity
point), so three static orders are provided:

* ``"declaration"`` — primary inputs in netlist declaration order;
* ``"dfs"`` — the classic fanin-DFS heuristic: depth-first from the first
  output, recording inputs in first-visit order (interleaves related
  inputs, e.g. ``a_i`` next to ``b_i`` in an adder);
* an explicit list of input names.

>>> from repro.circuits.library import c17
>>> built = build_output_bdds(c17())
>>> sorted(built.roots) == ["G22", "G23"]
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..circuits.gates import GateType
from ..circuits.netlist import Circuit
from .manager import ONE, ZERO, BddManager

__all__ = ["BuiltCircuit", "dfs_input_order", "build_output_bdds", "fold_gate"]


def fold_gate(manager: BddManager, gtype: GateType, ins: list[int]) -> int:
    """Combine fanin BDDs ``ins`` through one gate of type ``gtype``."""
    if gtype is GateType.CONST0:
        return ZERO
    if gtype is GateType.CONST1:
        return ONE
    if gtype is GateType.BUF:
        return ins[0]
    if gtype is GateType.NOT:
        return manager.apply_not(ins[0])
    if gtype is GateType.AND:
        return manager.apply_and(*ins)
    if gtype is GateType.NAND:
        return manager.apply_not(manager.apply_and(*ins))
    if gtype is GateType.OR:
        return manager.apply_or(*ins)
    if gtype is GateType.NOR:
        return manager.apply_not(manager.apply_or(*ins))
    if gtype in (GateType.XOR, GateType.XNOR):
        node = ins[0]
        for nxt in ins[1:]:
            node = manager.apply_xor(node, nxt)
        if gtype is GateType.XNOR:
            node = manager.apply_not(node)
        return node
    raise ValueError(f"cannot build BDD for gate type {gtype}")


@dataclass(frozen=True)
class BuiltCircuit:
    """BDD representation of a combinational circuit.

    ``roots`` maps every primary output to its BDD node; ``signals`` maps
    every internal signal (useful for per-gate diagnosis cofactors).
    """

    manager: BddManager
    circuit_name: str
    roots: Mapping[str, int]
    signals: Mapping[str, int]

    @property
    def node_count(self) -> int:
        """Distinct BDD nodes shared by all primary outputs — the size
        metric of the blowup benchmark."""
        return self.manager.count_nodes(*self.roots.values())


def dfs_input_order(circuit: Circuit) -> list[str]:
    """Primary inputs in fanin-DFS first-visit order (from the outputs).

    >>> from repro.circuits.library import ripple_carry_adder
    >>> dfs_input_order(ripple_carry_adder(2))
    ['a0', 'b0', 'cin', 'a1', 'b1']
    """
    order: list[str] = []
    seen: set[str] = set()

    def visit(name: str) -> None:
        if name in seen:
            return
        seen.add(name)
        gate = circuit.node(name)
        if gate.is_input:
            order.append(name)
            return
        for fin in gate.fanins:
            visit(fin)

    for out in circuit.outputs:
        visit(out)
    # Inputs unreachable from any output still need a level.
    for pi in circuit.inputs:
        if pi not in seen:
            order.append(pi)
    return order


def build_output_bdds(
    circuit: Circuit,
    order: str | Sequence[str] = "dfs",
    manager: BddManager | None = None,
    max_nodes: int | None = None,
) -> BuiltCircuit:
    """Build BDDs for all primary outputs of a combinational ``circuit``.

    ``order`` is ``"dfs"``, ``"declaration"`` or an explicit input-name
    list.  Passing an existing ``manager`` shares its variable order and
    node store (required to compare two circuits by root equality);
    ``max_nodes`` bounds the node table (see
    :class:`~repro.bdd.manager.BddBlowupError`).
    """
    if not circuit.is_combinational:
        raise ValueError(
            "BDD construction requires a combinational circuit; "
            "apply repro.circuits.to_combinational first"
        )
    if manager is None:
        if isinstance(order, str):
            if order == "dfs":
                input_order = dfs_input_order(circuit)
            elif order == "declaration":
                input_order = list(circuit.inputs)
            else:
                raise ValueError(f"unknown BDD input order {order!r}")
        else:
            input_order = list(order)
            missing = set(circuit.inputs) - set(input_order)
            if missing:
                raise ValueError(f"order misses inputs: {sorted(missing)}")
        manager = BddManager(order=input_order, max_nodes=max_nodes)
    node_of: dict[str, int] = {}
    for name in circuit.topological_order():
        gate = circuit.node(name)
        if gate.gtype is GateType.INPUT:
            node_of[name] = manager.declare(name)
            continue
        node_of[name] = fold_gate(
            manager, gate.gtype, [node_of[f] for f in gate.fanins]
        )
    roots = {out: node_of[out] for out in circuit.outputs}
    return BuiltCircuit(
        manager=manager,
        circuit_name=circuit.name,
        roots=roots,
        signals=node_of,
    )
