"""Figure 5 — the lemma witness circuits, as a bench.

Runs the full diagnosis stack on the paper's two counterexample circuits
and reports what each approach returns, demonstrating Lemmas 1-4 and
Theorems 1-2 end to end.  Timed as the (tiny) full-stack latency floor.
"""

from conftest import write_artifact

from repro.circuits.library import FIG5A_TEST, FIG5B_TEST, fig5a, fig5b
from repro.diagnosis import (
    basic_sat_diagnose,
    basic_sim_diagnose,
    is_valid_correction,
    sc_diagnose,
)
from repro.testgen import Test, TestSet


def run_fig5():
    lines = []

    circuit_a = fig5a()
    vec, out, val = FIG5A_TEST
    tests_a = TestSet((Test(vec, out, val),))
    sim = basic_sim_diagnose(circuit_a, tests_a)
    cov = sc_diagnose(circuit_a, tests_a, k=1)
    sat = basic_sat_diagnose(circuit_a, tests_a, k=1)
    invalid = [
        s
        for s in cov.solutions
        if not is_valid_correction(circuit_a, tests_a, s)
    ]
    lines.append("Figure 5(a) — Lemma 2 / Theorem 1 witness")
    lines.append(f"  PT candidates: {sorted(sim.candidate_sets[0])}")
    lines.append(f"  COV solutions: {sorted(map(sorted, cov.solutions))}")
    lines.append(f"  invalid COV solutions: {sorted(map(sorted, invalid))}")
    lines.append(f"  BSAT solutions: {sorted(map(sorted, sat.solutions))}")
    assert invalid, "Lemma 2 witness lost"
    assert set(cov.solutions) - set(sat.solutions), "Theorem 1 witness lost"

    circuit_b = fig5b()
    vec, out, val = FIG5B_TEST
    tests_b = TestSet((Test(vec, out, val),))
    cov_b = sc_diagnose(circuit_b, tests_b, k=2)
    sat_b = basic_sat_diagnose(circuit_b, tests_b, k=2)
    ab = frozenset({"A", "B"})
    lines.append("")
    lines.append("Figure 5(b) — Lemma 4 / Theorem 2 witness")
    lines.append(f"  COV solutions: {sorted(map(sorted, cov_b.solutions))}")
    lines.append(f"  BSAT solutions: {sorted(map(sorted, sat_b.solutions))}")
    lines.append(
        f"  {{A, B}} valid and found only by BSAT: "
        f"{ab in set(sat_b.solutions) and ab not in set(cov_b.solutions)}"
    )
    assert ab in set(sat_b.solutions) and ab not in set(cov_b.solutions)
    return "\n".join(lines)


def test_fig5(benchmark):
    text = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    write_artifact("fig5.txt", text)
    print("\n" + text)
