"""Candidate-search race: greedy-stochastic and IHS vs. BSAT enumeration.

The PR-3 acceptance bench: on multi-fault (p >= 2) workloads the
Feldman/Provan greedy stochastic search must reach a *first valid
candidate* faster than exhaustive ``basic_sat_diagnose`` enumeration, and
both search loops must return only observation-consistent candidates
(every candidate is re-validated against the exact oracle by
:func:`repro.experiments.run_candidate_search`).

Run directly (CI runs ``--smoke``)::

    PYTHONPATH=../src python bench_candidate_search.py --smoke

Artifacts: ``benchmarks/out/candidate_search.json`` (per-instance rows,
next to the engine-speedup artifacts) and a text summary on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.circuits import random_circuit
from repro.circuits.library import get_circuit
from repro.diagnosis import DiagnosisSession, diagnose
from repro.experiments import make_workload, run_candidate_search

OUT_DIR = Path(__file__).parent / "out"

#: (name, circuit factory args, p errors, m tests, workload seed).  The
#: random-circuit seeds are pinned to instances whose minimum correction
#: cardinality is >= 2 (verified by the auto-k probe when the bench runs).
SMOKE_INSTANCES = [
    ("rnd60-p2-a", ("random", 8, 4, 60, 702), 2, 10, 2),
    ("rnd60-p2-b", ("random", 8, 4, 60, 729), 2, 10, 29),
]

FULL_EXTRA_INSTANCES = [
    ("rnd60-p2-c", ("random", 8, 4, 60, 735), 2, 10, 35),
    ("rnd120-p3", ("random", 12, 6, 120, 303), 3, 12, 7),
    ("sim1423-p2", ("library", "sim1423"), 2, 8, 5),
]

STRATEGIES = ("greedy-stochastic", "ihs", "bsat")


def _build_circuit(spec):
    if spec[0] == "random":
        _, n_in, n_out, n_gates, seed = spec
        return random_circuit(
            n_inputs=n_in, n_outputs=n_out, n_gates=n_gates, seed=seed
        )
    return get_circuit(spec[1])


def run(smoke: bool) -> dict:
    instances = list(SMOKE_INSTANCES)
    if not smoke:
        instances += FULL_EXTRA_INSTANCES
    report: dict = {"smoke": smoke, "instances": []}
    failures: list[str] = []
    for name, spec, p, m, seed in instances:
        circuit = _build_circuit(spec)
        workload = make_workload(
            circuit, p=p, m_max=m, seed=seed, allow_fewer=True
        )
        start = time.perf_counter()
        race = run_candidate_search(workload, strategies=STRATEGIES)
        elapsed = time.perf_counter() - start
        rows = {s: r.row() for s, r in race.items()}
        greedy = race["greedy-stochastic"]
        ihs = race["ihs"]
        bsat = race["bsat"]
        # The BSAT column with the new arena/persistent path, compared
        # against the legacy object-graph backend on a fresh session —
        # the per-backend times and the per-solution enumerator deltas
        # all land in the JSON artifact.
        t0 = time.perf_counter()
        legacy_session = DiagnosisSession(
            workload.faulty, workload.tests, solver_backend="legacy"
        )
        legacy_bsat = diagnose(legacy_session, k=p, strategy="bsat")
        legacy_wall = time.perf_counter() - t0
        if set(legacy_bsat.solutions) != set(bsat.result.solutions):
            failures.append(f"{name}: bsat solutions differ across backends")
        entry = {
            "instance": name,
            "p": p,
            "m": len(workload.tests),
            "gates": workload.faulty.num_gates,
            "sites": sorted(workload.sites),
            "elapsed": elapsed,
            "rows": rows,
            "bsat_backend": "arena",
            "bsat_solution_stats": bsat.result.extras.get(
                "solution_stats", []
            ),
            "bsat_legacy": {
                "wall": legacy_wall,
                "t_build": legacy_bsat.t_build,
                "t_all": legacy_bsat.t_all,
            },
            "bsat_backend_speedup": (
                legacy_wall / bsat.wall_time if bsat.wall_time > 0 else None
            ),
            "greedy_first_vs_bsat_all": (
                bsat.result.t_all / greedy.result.t_first
                if greedy.result.t_first > 0
                else None
            ),
        }
        report["instances"].append(entry)
        # -- acceptance assertions ------------------------------------
        for leg in (greedy, ihs):
            if leg.result.n_solutions == 0:
                failures.append(f"{name}: {leg.strategy} found no candidate")
            if leg.n_invalid:
                failures.append(
                    f"{name}: {leg.strategy} returned "
                    f"{leg.n_invalid} invalid candidates"
                )
        if p >= 2 and greedy.result.n_solutions:
            if greedy.result.t_first >= bsat.result.t_all:
                failures.append(
                    f"{name}: greedy first candidate "
                    f"({greedy.result.t_first:.4f}s) not faster than BSAT "
                    f"enumeration ({bsat.result.t_all:.4f}s)"
                )
    report["failures"] = failures
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fixed instances only (the CI configuration)",
    )
    parser.add_argument(
        "--out", default=str(OUT_DIR / "candidate_search.json"),
        help="JSON artifact path",
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {out_path}")
    for entry in report["instances"]:
        rows = entry["rows"]
        speedup = entry["greedy_first_vs_bsat_all"]
        print(
            f"{entry['instance']:<12} p={entry['p']} m={entry['m']} "
            f"gates={entry['gates']:>4}  "
            f"greedy first {rows['greedy-stochastic']['t_first']:.4f}s "
            f"({rows['greedy-stochastic']['n_valid']} valid)  "
            f"ihs first {rows['ihs']['t_first']:.4f}s "
            f"({rows['ihs']['n_valid']} valid)  "
            f"bsat all {rows['bsat']['t_all']:.4f}s  "
            f"speedup {speedup:.1f}x"
        )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all candidate-search acceptance checks passed")
    return 0


def test_candidate_search_smoke():
    """Pytest entry point mirroring ``--smoke`` (bench suite style)."""
    report = run(smoke=True)
    assert not report["failures"], report["failures"]


if __name__ == "__main__":
    sys.exit(main())
