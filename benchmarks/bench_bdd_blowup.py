"""Ablation bench — the intro's BDD space-complexity claim, quantified.

The paper dismisses BDD-based diagnosis approaches [6, 8] because "for
large designs BDD-based approaches suffer from space complexity issues".
This bench makes that executable:

* adder node counts grow polynomially with width (the friendly case: the
  carry chain is O(w) per output, O(w²) for the shared output forest);
* array-multiplier node counts grow exponentially *per bit* (Bryant's
  lower bound — no variable order helps);
* equivalence checking: BDD vs SAT-miter runtime on both families.

Artifact: ``benchmarks/out/bdd_blowup.txt``.
"""

from conftest import write_artifact

from repro.bdd import BddBlowupError, build_output_bdds
from repro.circuits.library import array_multiplier, ripple_carry_adder
from repro.verify import check_equivalence

ADDER_WIDTHS = (2, 4, 8, 16, 32)
MUL_WIDTHS = (2, 3, 4, 5, 6)
NODE_BUDGET = 200_000


def _node_series():
    rows = []
    for w in ADDER_WIDTHS:
        built = build_output_bdds(ripple_carry_adder(w), max_nodes=NODE_BUDGET)
        rows.append(("rca", w, built.node_count, ""))
    for w in MUL_WIDTHS:
        try:
            built = build_output_bdds(array_multiplier(w), max_nodes=NODE_BUDGET)
            rows.append(("mul", w, built.node_count, ""))
        except BddBlowupError:
            rows.append(("mul", w, NODE_BUDGET, "BLOWUP (budget hit)"))
    return rows


def test_bdd_node_growth(benchmark):
    rows = benchmark.pedantic(_node_series, rounds=1, iterations=1)
    lines = [
        "BDD node counts (dfs order, budget %d)" % NODE_BUDGET,
        f"{'family':8} {'width':>5} {'nodes':>10}  note",
    ]
    for family, width, nodes, note in rows:
        lines.append(f"{family:8} {width:>5} {nodes:>10}  {note}")
    adders = [r for r in rows if r[0] == "rca"]
    muls = [r for r in rows if r[0] == "mul" and not r[3]]
    # Adder: polynomial — nodes grow by at most ~4x per width *doubling*
    # (the shared output forest is O(w²)).
    doubling = [
        adders[i + 1][2] / adders[i][2] for i in range(len(adders) - 1)
    ]
    lines.append(
        "adder growth per width doubling: "
        + ", ".join(f"{r:.2f}" for r in doubling)
        + "  (<= ~4 = polynomial, degree <= 2)"
    )
    # Multiplier: exponential — nodes grow by >= ~2x per single added bit.
    ratios = [
        muls[i + 1][2] / muls[i][2] for i in range(len(muls) - 1)
    ]
    lines.append(
        "multiplier growth per added bit: "
        + ", ".join(f"{r:.2f}" for r in ratios)
        + "  (>= ~2 = exponential)"
    )
    write_artifact("bdd_blowup.txt", "\n".join(lines))
    assert all(r > 1.8 for r in ratios), "multiplier must grow ~exponentially"
    assert all(r < 4.5 for r in doubling), "adder must stay polynomial"


def test_cec_bdd_on_adder(benchmark):
    rca = ripple_carry_adder(8)
    result = benchmark(
        lambda: check_equivalence(rca, rca.copy(), method="bdd")
    )
    assert result.equivalent


def test_cec_sat_on_adder(benchmark):
    rca = ripple_carry_adder(8)
    result = benchmark(
        lambda: check_equivalence(rca, rca.copy(), method="sat")
    )
    assert result.equivalent


def test_cec_sat_handles_multiplier(benchmark):
    """SAT equivalence-checks the multiplier the BDD engine cannot build."""
    mul = array_multiplier(5)
    result = benchmark.pedantic(
        lambda: check_equivalence(mul, mul.copy(), method="sat"),
        rounds=1,
        iterations=1,
    )
    assert result.equivalent
