"""System-description bench — model-agnostic diagnosis beyond circuits.

PR 6 rebuilt the diagnosis core on the
:class:`repro.diagnosis.SystemDescription` protocol; this bench drives
the two non-circuit instantiations through the model-agnostic search
loops and gates their *agreement*:

* **grouped CNF** (weak fault model): seeded random GCNF instances —
  a satisfiable hard background plus assumable clause groups, some of
  which contradict the observations — diagnosed by retracting groups;
* **fault spectra**: seeded random coverage matrices with planted
  faulty components, failing runs rectified by any candidate touching
  their coverage.

Every instance runs ``greedy-stochastic``, ``ihs``, ``hsdag`` and
``fastdiag`` next to the ``bsat`` reference enumeration and asserts:

* ``hsdag`` and ``fastdiag`` report exactly ``bsat``'s solution set
  (all subset-minimal corrections within ``k``);
* ``ihs`` reports exactly the minimum-cardinality slice of that set;
* every ``greedy-stochastic`` sample is a member of that set.

Artifacts: ``benchmarks/out/systems.json`` — one row per (instance,
strategy) with timings, solution counts and the search extras
(nodes/conflicts/consistency checks).

Run modes::

    PYTHONPATH=../src python bench_systems.py --smoke   # CI: small pinned
    PYTHONPATH=../src python bench_systems.py           # + larger legs
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.diagnosis import DiagnosisSession, GroupedCNFSystem, SpectrumSystem, diagnose
from repro.sat.dimacs import GroupedCNF

OUT_DIR = Path(__file__).parent / "out"

#: Strategies raced on every instance (bsat runs too, as the reference).
STRATEGIES = ("greedy-stochastic", "ihs", "hsdag", "fastdiag")

#: (name, num_vars, num_groups, clauses_per_group, num_background,
#:  num_observations, seed) for the GCNF legs.
GCNF_SMOKE = [
    ("gcnf-v12-g8-a", 12, 8, 2, 6, 2, 101),
    ("gcnf-v12-g8-b", 12, 8, 2, 6, 2, 202),
    ("gcnf-v16-g10", 16, 10, 2, 8, 3, 303),
]
GCNF_FULL_EXTRA = [
    ("gcnf-v24-g16", 24, 16, 3, 12, 3, 404),
    ("gcnf-v32-g20", 32, 20, 3, 16, 4, 505),
]

#: (name, num_components, num_rows, fault_count, seed) for the spectra.
SPECTRUM_SMOKE = [
    ("spec-c8-r10-a", 8, 10, 1, 11),
    ("spec-c8-r10-b", 8, 10, 2, 22),
    ("spec-c12-r16", 12, 16, 2, 33),
]
SPECTRUM_FULL_EXTRA = [
    ("spec-c20-r30", 20, 30, 3, 44),
    ("spec-c24-r40", 24, 40, 3, 55),
]


def make_gcnf_system(
    num_vars: int,
    num_groups: int,
    clauses_per_group: int,
    num_background: int,
    num_observations: int,
    seed: int,
) -> GroupedCNFSystem:
    """Seeded weak-fault-model instance with guaranteed diagnoses.

    A hidden assignment witnesses the background and every observation,
    so retracting all groups is always consistent (the full pool is a
    diagnosis) and the search loops never hit the infeasible case.
    Group clauses are random 2-clauses, plus one *planted fault* per
    observation: a unit clause contradicting an observation literal,
    dropped into a random group, so every observation fails and the
    empty candidate is never a diagnosis (the degenerate case greedy
    climbs cannot represent).
    """
    rng = random.Random(seed)
    witness = [rng.choice((False, True)) for _ in range(num_vars)]

    def lit(var: int, positive: bool) -> int:
        return var if positive else -var

    gcnf = GroupedCNF(num_vars=num_vars)
    for _ in range(num_background):
        vs = rng.sample(range(1, num_vars + 1), 3)
        clause = [lit(v, rng.random() < 0.5) for v in vs]
        # Force at least one literal true under the witness.
        v = rng.choice(vs)
        clause[vs.index(v)] = lit(v, witness[v - 1])
        gcnf.add_clause(0, clause)
    for g in range(1, num_groups + 1):
        for _ in range(clauses_per_group):
            vs = rng.sample(range(1, num_vars + 1), 2)
            gcnf.add_clause(g, [lit(v, rng.random() < 0.5) for v in vs])
    observations = []
    for _ in range(num_observations):
        vs = rng.sample(range(1, num_vars + 1), 2)
        obs = tuple(lit(v, witness[v - 1]) for v in vs)
        observations.append(obs)
        gcnf.add_clause(rng.randint(1, num_groups), [-rng.choice(obs)])
    return GroupedCNFSystem(gcnf, observations)


def make_spectrum_system(
    num_components: int, num_rows: int, fault_count: int, seed: int
) -> SpectrumSystem:
    """Seeded coverage matrix with ``fault_count`` planted faults.

    A row fails iff it covers a planted fault, so the plant is always a
    diagnosis and every failing row has non-empty coverage.
    """
    rng = random.Random(seed)
    components = [f"c{i}" for i in range(num_components)]
    faults = set(rng.sample(components, fault_count))
    rows = []
    for _ in range(num_rows):
        size = rng.randint(2, max(2, num_components // 2))
        covered = rng.sample(components, size)
        rows.append((covered, not (set(covered) & faults)))
    if all(passed for _, passed in rows):
        # Degenerate draw: no run touched a fault.  Force one failing
        # row so the empty candidate is never a diagnosis.
        covered = sorted(faults)[:1] + rows[0][0]
        rows[0] = (covered, False)
    return SpectrumSystem(components, rows)


def _canon(solutions):
    return sorted(tuple(sorted(s)) for s in solutions)


def run_instance(name: str, kind: str, session: DiagnosisSession, k: int):
    """Race all strategies on one session; assert agreement; emit rows."""
    rows = []
    t0 = time.perf_counter()
    reference = diagnose(session, k=k, strategy="bsat")
    rows.append(
        {
            "instance": name,
            "kind": kind,
            "strategy": "bsat",
            "k": k,
            "t_all": reference.t_all,
            "t_wall": time.perf_counter() - t0,
            "n_solutions": reference.n_solutions,
            "extras": dict(reference.extras),
        }
    )
    ref_set = set(reference.solutions)
    min_card = min((len(s) for s in ref_set), default=0)
    min_slice = {s for s in ref_set if len(s) == min_card}
    for strategy in STRATEGIES:
        t0 = time.perf_counter()
        result = diagnose(session, k=k, strategy=strategy)
        wall = time.perf_counter() - t0
        got = set(result.solutions)
        if strategy in ("hsdag", "fastdiag"):
            assert got == ref_set, (
                f"{name}/{strategy}: {_canon(got)} != bsat {_canon(ref_set)}"
            )
        elif strategy == "ihs":
            assert got == min_slice, (
                f"{name}/ihs: {_canon(got)} != minimum slice "
                f"{_canon(min_slice)}"
            )
        else:  # greedy: a verified sample of the minimal set
            assert got <= ref_set, (
                f"{name}/greedy: stray solutions {_canon(got - ref_set)}"
            )
        rows.append(
            {
                "instance": name,
                "kind": kind,
                "strategy": strategy,
                "k": k,
                "t_all": result.t_all,
                "t_wall": wall,
                "n_solutions": result.n_solutions,
                "extras": dict(result.extras),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="small pinned instances (CI)"
    )
    args = parser.parse_args(argv)

    gcnf_specs = list(GCNF_SMOKE)
    spectrum_specs = list(SPECTRUM_SMOKE)
    if not args.smoke:
        gcnf_specs += GCNF_FULL_EXTRA
        spectrum_specs += SPECTRUM_FULL_EXTRA

    rows = []
    for name, nv, ng, cpg, nb, no, seed in gcnf_specs:
        system = make_gcnf_system(nv, ng, cpg, nb, no, seed)
        session = DiagnosisSession(system)
        k = min(6, len(system.components))
        rows.extend(run_instance(name, "gcnf", session, k))
        print(f"{name}: ok ({rows[-1]['n_solutions']} minimal diagnoses)")
    for name, nc, nr, nf, seed in spectrum_specs:
        system = make_spectrum_system(nc, nr, nf, seed)
        session = DiagnosisSession(system)
        k = min(4, len(system.components))
        rows.extend(run_instance(name, "spectrum", session, k))
        print(f"{name}: ok ({rows[-1]['n_solutions']} minimal diagnoses)")

    OUT_DIR.mkdir(exist_ok=True)
    out_path = OUT_DIR / "systems.json"
    out_path.write_text(json.dumps({"rows": rows}, indent=2) + "\n")
    print(f"wrote {out_path} ({len(rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
