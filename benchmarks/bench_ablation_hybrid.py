"""Ablation — the §6 hybrid approaches against their ingredients.

* PT-guided SAT vs plain BSAT: identical solutions; decisions-to-first-
  solution and wall time compared (the guidance seeds VSIDS with M(g)).
* COV + repair vs full BSAT "One": the repair searches a structural
  neighbourhood of a cheap initial correction instead of all gates.
"""

import time

from conftest import write_artifact

from repro.diagnosis import (
    basic_sat_diagnose,
    pt_guided_sat_diagnose,
    repair_correction_sat,
    sc_diagnose,
)
from repro.experiments import make_workload


def run_hybrid_ablation():
    workload = make_workload("sim1423", p=2, m_max=8, seed=6)
    faulty, tests = workload.faulty, workload.tests
    lines = [
        f"workload: {faulty.name}, p=2, m={tests.m}, "
        f"|I|={faulty.num_gates}",
    ]

    start = time.perf_counter()
    plain = basic_sat_diagnose(faulty, tests, k=2, solution_limit=100)
    t_plain = time.perf_counter() - start
    start = time.perf_counter()
    guided = pt_guided_sat_diagnose(faulty, tests, k=2, solution_limit=100)
    t_guided = time.perf_counter() - start
    assert set(plain.solutions) == set(guided.solutions)
    lines += [
        "",
        "hybrid 1 — PT-guided decision seeding (identical solutions):",
        f"  BSAT    : {t_plain:.2f}s, first solution {plain.t_first:.3f}s, "
        f"{plain.extras['solver_stats']['decisions']} decisions",
        f"  guided  : {t_guided:.2f}s, first solution "
        f"{guided.t_first:.3f}s, "
        f"{guided.extras['solver_stats']['decisions']} decisions",
    ]

    start = time.perf_counter()
    cov = sc_diagnose(faulty, tests, k=2, solution_limit=3)
    initial = cov.solutions[0]
    repaired = repair_correction_sat(faulty, tests, initial)
    t_repair = time.perf_counter() - start
    start = time.perf_counter()
    one = basic_sat_diagnose(faulty, tests, k=2, solution_limit=1)
    t_one = time.perf_counter() - start
    lines += [
        "",
        "hybrid 2 — repair an initial COV correction:",
        f"  COV seed {sorted(initial)} -> {repaired.n_solutions} valid "
        f"corrections at radius {repaired.extras.get('radius')} "
        f"({repaired.extras.get('suspects', '?')} suspects) "
        f"in {t_repair:.2f}s",
        f"  BSAT 'One' baseline: {t_one:.2f}s over "
        f"{faulty.num_gates} suspects",
    ]
    assert repaired.solutions, "repair must produce a valid correction"
    return "\n".join(lines)


def test_hybrid_ablation(benchmark):
    text = benchmark.pedantic(run_hybrid_ablation, rounds=1, iterations=1)
    write_artifact("ablation_hybrid.txt", text)
    print("\n" + text)
