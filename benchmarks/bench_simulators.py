"""Substrate bench — simulation engine throughput.

Quantifies the paper's premise that simulation-based approaches "can use
efficient parallel simulation techniques": gate-evaluations/second for the
scalar engine vs the bit-parallel engine (1024 patterns per pass) vs the
numpy uint64 variant, all on the sim1423 stand-in.
"""

import random

import numpy as np

from repro.circuits import library
from repro.sim import (
    pack_patterns,
    simulate,
    simulate_words,
    simulate_words_numpy,
)

N_PATTERNS = 1024


def setup_patterns():
    circuit = library.sim1423()
    rng = random.Random(3)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs}
        for _ in range(N_PATTERNS)
    ]
    return circuit, patterns


def test_scalar_simulation(benchmark):
    circuit, patterns = setup_patterns()
    # scalar engine: one pattern per pass; bench a 32-pattern slice
    def run():
        for p in patterns[:32]:
            simulate(circuit, p)

    benchmark(run)


def test_bit_parallel_simulation(benchmark):
    circuit, patterns = setup_patterns()
    words = pack_patterns(patterns, circuit.inputs)

    def run():
        return simulate_words(circuit, words, N_PATTERNS)

    result = benchmark(run)
    assert len(result) == len(circuit.nodes)


def test_numpy_simulation(benchmark):
    circuit, patterns = setup_patterns()
    lanes = N_PATTERNS // 64
    input_words = {}
    for pi in circuit.inputs:
        arr = np.zeros(lanes, dtype=np.uint64)
        for j, p in enumerate(patterns):
            if p[pi]:
                arr[j // 64] |= np.uint64(1) << np.uint64(j % 64)
        input_words[pi] = arr

    def run():
        return simulate_words_numpy(circuit, input_words)

    result = benchmark(run)
    assert len(result) == len(circuit.nodes)
