"""Serving-policy bench: the sharded racing service vs. sequential runs.

The PR-7 acceptance bench.  A pinned multi-design device fleet (each
device = one injected-fault workload's *observed* responses against the
golden design netlist, with repeated failure signatures mixed in) flows
through :class:`repro.serve.DiagnosisService` — sharded, per-design
artifact cache, first-valid-answer strategy races with cancellation —
and through the **single-session sequential baseline**: one fresh
session per device, the same three strategy legs run back to back *to
completion* (the pre-service way of producing every answer, cf. the
per-instance races of ``bench_candidate_search.py``).

Gates (all assert-or-fail):

* throughput: the service beats the baseline in devices/sec AND at both
  p50 and p99 per-device latency (baseline latencies are queue-free —
  generous to the baseline);
* build-once: the per-design master-encoding skeleton is built exactly
  once per design however many devices flow through (cache counters);
* batching: every repeated-signature device is served from the memo;
* parity: every service answer is observation-consistent, and replaying
  the winning leg sequentially on a fresh single session reproduces the
  service's solutions bit-identically (validity + cardinality parity);
  with the race restricted to ``bsat`` (policy ``complete``) the
  service's per-device answers are bit-identical to the sequential
  reference enumeration.

``--chaos`` adds a robustness leg (the PR-9 serve-chaos CI job): the
same fleet reruns under seeded shard-kill injection with a result
journal attached, gating that throughput stays within 2x the clean
service wall, every device still resolves ``ok``, and resuming from the
journal replays the whole fleet bit-identically without re-diagnosis.

``--workers N`` adds the process-mode leg (the PR-10 acceptance, CI's
``serve-procs`` job): a **core-bound** multi-design fleet — bsat-only,
``policy="complete"``, unique signatures, so every device is genuinely
GIL-bound solver work with no race cancellation or memo shortcut to
hide behind — runs through the thread service (``--workers 0``
semantics) and through :class:`repro.serve.ProcessDiagnosisService`
with ``N`` design-sharded worker processes.  Gates: process mode is
>=1.5x devices/sec over thread mode (enforced when >=2 cores are
available — the whole point is core parallelism; on a single core the
ratio is reported but the gate and its baseline entry are skipped with
the reason), per-device result sets bit-identical to both thread mode
and the sequential reference enumeration, skeletons built exactly once
per design *per owning worker*, and a kill-worker chaos sub-leg
(SIGKILL of a live worker mid-fleet, parent journal attached) where
every device still resolves exactly once and the journal replays
bit-identically on resume.

Run directly (CI runs ``--smoke``, ``--smoke --chaos`` and
``--smoke --workers 2``)::

    PYTHONPATH=../src python bench_serve.py --smoke

Artifacts: ``benchmarks/out/serve.json`` with a ``gated_ratios`` block
diffed against the committed ``BENCH_serve.json`` by
``compare_baseline.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.circuits.library import get_circuit
from repro.diagnosis import DiagnosisSession
from repro.experiments import make_workload
from repro.serve import (
    DEFAULT_STRATEGIES,
    ChaosInjector,
    DesignCache,
    DeviceReport,
    DiagnosisService,
    ProcessDiagnosisService,
    ResultJournal,
    check_invariants,
    read_journal,
    signature_seed,
)
from repro.serve.race import run_leg
from repro.testgen import TestSet
from repro.testgen.testset import Test

OUT_DIR = Path(__file__).parent / "out"

#: (design, workload seeds, duplicated-signature count) — the duplicates
#: repeat the design's first seeds verbatim, exercising the batching
#: path.  Seeds are pinned; the fleet is the "test floor".
SMOKE_FLEET = [
    # The backbone is a mid-size design where the sequential
    # run-to-completion baseline pays a real enumeration tail
    # (~0.4s/device) — the work the racing service reclaims.  A fleet of
    # trivia-size circuits would need no serving policy at all.
    ("sim1423", (1, 2, 5), 2),
    ("c17", (3, 5), 1),
]
FULL_EXTRA_FLEET = [
    ("sim1423", (7, 11, 13), 1),
    ("fig5b", (1, 2), 1),
]

#: Cardinality bound carried by every device (drives the bsat leg).
K = 2
N_SHARDS = 2


def _make_devices(fleet) -> list[DeviceReport]:
    devices: list[DeviceReport] = []
    for design, seeds, n_dup in fleet:
        circuit = get_circuit(design)
        first_of_design: list[DeviceReport] = []
        for seed in seeds:
            w = make_workload(
                circuit, p=1, m_max=4, seed=seed, allow_fewer=True
            )
            if not w.tests.m:
                continue
            tests = TestSet(
                tuple(
                    Test(dict(t.vector), t.output, t.value ^ 1)
                    for t in w.tests
                )
            )
            device = DeviceReport(
                device_id=f"{design}-s{seed}",
                design=design,
                tests=tests,
                k=K,
            )
            devices.append(device)
            first_of_design.append(device)
        for j in range(min(n_dup, len(first_of_design))):
            src = first_of_design[j]
            devices.append(
                DeviceReport(
                    device_id=f"{src.device_id}-dup",
                    design=design,
                    tests=src.tests,
                    k=K,
                )
            )
    return devices


def _fresh_session(
    device: DeviceReport, backend: str | None = None
) -> DiagnosisSession:
    return DiagnosisSession(
        get_circuit(device.design),
        device.tests,
        seed=signature_seed(device.signature()),
        solver_backend=backend,
    )


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def run_baseline(devices, backend: str | None = None) -> dict:
    """One fresh session per device, every leg sequentially to
    completion — no sharding, no cache, no cancellation."""
    latencies: list[float] = []
    answers: dict[str, dict] = {}
    start = time.perf_counter()
    for device in devices:
        t0 = time.perf_counter()
        session = _fresh_session(device, backend)
        legs = {
            name: run_leg(
                session, name, device.k, first_only=False, should_stop=None
            )
            for name in DEFAULT_STRATEGIES
        }
        latencies.append(time.perf_counter() - t0)
        answers[device.device_id] = legs
    wall = time.perf_counter() - start
    return {"wall": wall, "latencies": latencies, "legs": answers}


def run_service(
    devices, backend: str | None = None
) -> tuple[DiagnosisService, list, float]:
    service = DiagnosisService(
        n_shards=N_SHARDS,
        timeout=120.0,
        design_cache=DesignCache(),
        solver_backend=backend,
    )
    start = time.perf_counter()
    results = service.run(devices)
    wall = time.perf_counter() - start
    return service, results, wall


def check_parity(
    devices, results, failures: list[str], backend: str | None = None
) -> None:
    by_id = {d.device_id: d for d in devices}
    replayed: dict[tuple, tuple] = {}
    for result in results:
        device = by_id[result.device_id]
        if result.status != "ok":
            failures.append(
                f"{result.device_id}: status {result.status} "
                f"({result.error})"
            )
            continue
        if result.answer is None:
            failures.append(f"{result.device_id}: no answer")
            continue
        # Validity: the answer must be consistent with every observation.
        if not _fresh_session(device, backend).consistent(result.answer):
            failures.append(
                f"{result.device_id}: answer {result.answer} inconsistent"
            )
        # Replay the signature's winning leg sequentially on a fresh
        # single session: bit-identical solutions (and hence identical
        # answer cardinality) — the race only changes *when* the answer
        # arrives, never *what* the winning strategy computes.
        sig = device.signature()
        if sig not in replayed:
            replay = run_leg(
                _fresh_session(device, backend),
                result.winner,
                device.k,
                first_only=True,
                should_stop=None,
            )
            replayed[sig] = tuple(replay.solutions)
        if tuple(result.solutions) != replayed[sig]:
            failures.append(
                f"{result.device_id}: {result.winner} race solutions "
                f"differ from the sequential replay"
            )


def check_bsat_reference(
    devices, failures: list[str], backend: str | None = None
) -> None:
    service = DiagnosisService(
        n_shards=N_SHARDS,
        strategies=("bsat",),
        policy="complete",
        timeout=120.0,
        design_cache=DesignCache(),
        solver_backend=backend,
    )
    results = service.run(devices)
    for device, result in zip(devices, results):
        if result.status != "ok":
            failures.append(
                f"{device.device_id}: bsat-only status {result.status}"
            )
            continue
        reference = run_leg(
            _fresh_session(device, backend),
            "bsat",
            device.k,
            first_only=False,
            should_stop=None,
        )
        if tuple(result.solutions) != tuple(reference.solutions):
            failures.append(
                f"{device.device_id}: bsat-only service not bit-identical "
                f"to the sequential reference"
            )


#: Shard count for the chaos leg: killing one of three leaves two
#: survivors, so the 2x-of-clean throughput gate measures re-routing
#: cost, not the raw serialization of a lone surviving shard.
CHAOS_SHARDS = 3

#: Absolute allowance on the chaos throughput gate: one shard kill
#: legitimately costs re-running a single device's race from scratch
#: plus a watchdog tick — a fixed cost that dwarfs a sub-100ms smoke
#: fleet's clean wall but is irrelevant at scale.  The gate still trips
#: on what it guards: a killed shard parking devices until their full
#: attempt deadline (a 120s hang, not a 0.x-second retry).
CHAOS_WALL_SLACK = 0.75


def run_chaos(
    devices,
    failures: list[str],
    solver_backend: str | None = None,
    seed: int = 0,
    journal_path=None,
) -> dict:
    """Chaos leg: the same fleet under seeded shard-kills with a journal.

    Gates (appended to ``failures``):

    * the injections actually fired, and every device still resolved
      ``ok`` (retried elsewhere — no lost or duplicated devices, per
      :func:`repro.serve.check_invariants`);
    * throughput under shard-kill stays within 2x of a clean reference
      pass at the same shard count, plus the fixed
      :data:`CHAOS_WALL_SLACK` cost of the one retried device
      (re-routing a dead shard's backlog is bounded work — the gate
      exists to catch devices parked until their attempt deadline);
    * the journal written during the chaos run replays **bit-identically**
      on resume: a fresh service serves the whole fleet from the WAL
      without re-diagnosing a single device.
    """
    path = (
        Path(journal_path)
        if journal_path is not None
        else OUT_DIR / "serve-chaos.wal"
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        path.unlink()  # the journal appends; each bench run starts clean

    # Clean reference at the chaos shard count — measured back to back
    # with the chaos pass so the 2x gate compares like with like.
    clean = DiagnosisService(
        n_shards=CHAOS_SHARDS,
        timeout=120.0,
        design_cache=DesignCache(),
        solver_backend=solver_backend,
    )
    start = time.perf_counter()
    clean.run(devices)
    clean_wall = time.perf_counter() - start

    injector = ChaosInjector(
        seed=seed, kinds=("kill_shard",), max_per_kind=1, horizon=4
    )
    journal = ResultJournal(path)
    service = DiagnosisService(
        n_shards=CHAOS_SHARDS,
        timeout=120.0,
        max_attempts=3,
        design_cache=DesignCache(),
        solver_backend=solver_backend,
        fault_hook=injector.fault_hook,
        journal=journal,
    )
    start = time.perf_counter()
    results = service.run(devices)
    wall = time.perf_counter() - start
    journal.close()

    if injector.fired("kill_shard") == 0:
        failures.append("chaos: no shard-kill injection fired")
    for problem in check_invariants(
        devices, results, service=service, journal_path=path
    ):
        failures.append(f"chaos: {problem}")
    for result in results:
        if result.status != "ok":
            failures.append(
                f"chaos: {result.device_id}: status {result.status} "
                f"under shard-kill"
            )
    if wall > 2.0 * clean_wall + CHAOS_WALL_SLACK:
        failures.append(
            f"chaos: wall {wall:.3f}s exceeds 2x the clean service "
            f"wall {clean_wall:.3f}s (+{CHAOS_WALL_SLACK}s retry slack)"
        )

    replay = read_journal(path)
    resumed = DiagnosisService(
        n_shards=CHAOS_SHARDS,
        timeout=120.0,
        design_cache=DesignCache(),
        solver_backend=solver_backend,
        resume_from=replay,
    )
    replayed = resumed.run(devices)
    for original, again in zip(results, replayed):
        if not again.journal_replayed:
            failures.append(
                f"chaos: {again.device_id}: re-diagnosed on resume "
                f"instead of served from the journal"
            )
        elif again.answer != original.answer or tuple(
            again.solutions
        ) != tuple(original.solutions):
            failures.append(
                f"chaos: {again.device_id}: journal replay is not "
                f"bit-identical"
            )
    return {
        "seed": seed,
        "n_shards": CHAOS_SHARDS,
        "shard_kills_fired": injector.fired("kill_shard"),
        "injections": [
            {"kind": e.kind, "site": e.site, "occurrence": e.occurrence}
            for e in injector.log
        ],
        "wall": wall,
        "clean_wall": clean_wall,
        "overhead_ratio": wall / clean_wall if clean_wall > 0 else None,
        "shard_deaths": service.stats()["shard_deaths"],
        "retries": service.stats()["retries"],
        "journal": {
            "path": str(path),
            "records": replay.records,
            "resolved": len(replay.resolved),
            "stats": dict(journal.stats),
        },
        "replayed": sum(1 for r in replayed if r.journal_replayed),
    }


#: Core-bound fleet for the process-mode (`--workers N`) leg: bsat-only
#: complete enumeration (the pure-Python CDCL solver holds the GIL for
#: the whole solve), two mid-size designs whose crc32 routing lands
#: them on *different* workers at ``--workers 2`` with near-equal
#: aggregate solve time per worker (~2s each, so the ratio measures
#: parallel speedup rather than the straggler), unique signatures only
#: — no duplicate to serve from the memo, no fast approximate leg to
#: cancel the tail.  Thread mode has nothing left to hide behind; a
#: throughput win here is core parallelism or nothing.
WORKERS_FLEET = [
    ("sim6669", (1, 2, 3, 5, 7, 11, 13), 0),
    ("sim38417", (1, 2, 3), 0),
]

#: Floor on process-mode devices/sec over thread mode at the same
#: workload (the ISSUE acceptance bar).  Enforced only when the parent
#: can actually schedule on >=2 cores — on a single core the process
#: pool *cannot* beat threads (it pays spawn + IPC for the same serial
#: CPU) and the ratio is reported ungated with the reason.
WORKERS_GATE_RATIO = 1.5

#: Solve deadline for the workers leg: generous, because the gate here
#: is relative throughput of complete enumerations, not tail-cutting.
WORKERS_TIMEOUT = 240.0

#: Worker count for the kill-worker chaos sub-leg: killing one of three
#: leaves two survivors to absorb the rerouted backlog.
WORKERS_CHAOS_WORKERS = 3


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workers_thread_reference(
    devices, solver_backend: str | None
) -> tuple[list, float]:
    """The ``--workers 0`` side of the ratio: the thread service on the
    identical bsat-only complete workload."""
    service = DiagnosisService(
        n_shards=N_SHARDS,
        strategies=("bsat",),
        policy="complete",
        timeout=WORKERS_TIMEOUT,
        design_cache=DesignCache(),
        solver_backend=solver_backend,
    )
    start = time.perf_counter()
    results = service.run(devices)
    wall = time.perf_counter() - start
    return results, wall


def run_workers_leg(
    n_workers: int,
    failures: list[str],
    solver_backend: str | None = None,
    journal_path=None,
) -> dict:
    """Process-mode leg: design-sharded worker processes vs. threads.

    Gates (appended to ``failures``):

    * every device resolves ``ok`` in both modes;
    * process-mode per-device solution sets are **bit-identical** to
      thread mode *and* to the sequential reference enumeration
      (``run_leg`` on a fresh single session);
    * each design's master-encoding skeleton is built exactly once
      fleet-wide, inside the one worker that owns the design;
    * process mode is >= :data:`WORKERS_GATE_RATIO` x devices/sec over
      thread mode — enforced only when >=2 cores are available (the
      ratio is always reported; ``gated`` records whether it counted);
    * the kill-worker chaos sub-leg (:func:`run_workers_chaos`).
    """
    devices = _make_devices(WORKERS_FLEET)
    thread_results, thread_wall = _workers_thread_reference(
        devices, solver_backend
    )

    # Spawn + per-worker warm-up happen before the timed window: the
    # pool is a long-lived server, its startup is not per-fleet cost.
    pool = ProcessDiagnosisService(
        n_workers=n_workers,
        worker_shards=1,
        strategies=("bsat",),
        policy="complete",
        timeout=WORKERS_TIMEOUT,
        solver_backend=solver_backend,
    )
    try:
        start = time.perf_counter()
        proc_results = pool.run(devices)
        proc_wall = time.perf_counter() - start
        stats = pool.stats()
    finally:
        pool.close()

    by_id = {r.device_id: r for r in thread_results}
    for result in proc_results:
        if result.status != "ok":
            failures.append(
                f"workers: {result.device_id}: status {result.status} "
                f"({result.error})"
            )
            continue
        thread_result = by_id[result.device_id]
        if thread_result.status != "ok":
            failures.append(
                f"workers: {result.device_id}: thread-mode status "
                f"{thread_result.status}"
            )
            continue
        if tuple(result.solutions) != tuple(thread_result.solutions):
            failures.append(
                f"workers: {result.device_id}: process-mode solutions "
                f"differ from thread mode"
            )
        device = next(d for d in devices if d.device_id == result.device_id)
        reference = run_leg(
            _fresh_session(device, solver_backend),
            "bsat",
            device.k,
            first_only=False,
            should_stop=None,
        )
        if tuple(result.solutions) != tuple(reference.solutions):
            failures.append(
                f"workers: {result.device_id}: process mode not "
                f"bit-identical to the sequential reference"
            )

    # Build-once per design *per owning worker*: fleet-wide each design
    # skeleton is built exactly once, and only inside one worker.
    builds_by_worker = {
        name: (block.get("service") or {})
        .get("design_cache", {})
        .get("skeleton_builds", {})
        for name, block in stats.get("workers", {}).items()
    }
    for design, _, _ in WORKERS_FLEET:
        owners = {
            name: builds[design]
            for name, builds in builds_by_worker.items()
            if builds.get(design)
        }
        if sum(owners.values()) != 1 or len(owners) != 1:
            failures.append(
                f"workers: {design}: skeleton builds {owners or 0} "
                f"(must be exactly once in exactly one owning worker)"
            )

    cores = _available_cores()
    gated = cores >= 2
    throughput_ratio = thread_wall / proc_wall if proc_wall > 0 else None
    if gated and (
        throughput_ratio is None or throughput_ratio < WORKERS_GATE_RATIO
    ):
        failures.append(
            f"workers: process mode {throughput_ratio:.2f}x thread mode "
            f"(< {WORKERS_GATE_RATIO}x floor, {cores} cores)"
        )

    leg = {
        "n_workers": n_workers,
        "n_devices": len(devices),
        "cores": cores,
        "gated": gated,
        "gate_skip_reason": (
            None if gated else f"only {cores} core(s) available"
        ),
        "thread_wall": thread_wall,
        "proc_wall": proc_wall,
        "thread_devices_per_sec": len(devices) / thread_wall,
        "proc_devices_per_sec": len(devices) / proc_wall,
        "throughput_ratio": throughput_ratio,
        "stats": stats,
    }
    leg["chaos"] = run_workers_chaos(
        devices,
        failures,
        solver_backend=solver_backend,
        journal_path=journal_path,
    )
    return leg


def run_workers_chaos(
    devices,
    failures: list[str],
    solver_backend: str | None = None,
    seed: int = 0,
    journal_path=None,
) -> dict:
    """Kill-worker chaos sub-leg: SIGKILL a live worker mid-fleet.

    Gates (appended to ``failures``): the kill actually fired and a
    worker actually died; every device still resolves ``ok`` exactly
    once (rerouted to survivors, per
    :func:`repro.serve.check_invariants`); and the parent-owned journal
    replays the whole fleet **bit-identically** on resume — through a
    *fresh* process pool at a different worker count, because the WAL
    is topology-agnostic.
    """
    path = (
        Path(journal_path)
        if journal_path is not None
        else OUT_DIR / "serve-procs.wal"
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        path.unlink()  # the journal appends; each bench run starts clean

    injector = ChaosInjector(
        seed=seed, kinds=("kill_worker",), max_per_kind=1, horizon=4
    )
    journal = ResultJournal(path)
    pool = ProcessDiagnosisService(
        n_workers=WORKERS_CHAOS_WORKERS,
        worker_shards=1,
        strategies=("bsat",),
        policy="complete",
        timeout=WORKERS_TIMEOUT,
        solver_backend=solver_backend,
        journal=journal,
        worker_kill_hook=injector.worker_kill_hook,
    )
    try:
        start = time.perf_counter()
        results = pool.run(devices)
        wall = time.perf_counter() - start
        stats = pool.stats()
        problems = check_invariants(
            devices, results, service=pool, journal_path=path
        )
    finally:
        pool.close()
        journal.close()

    if injector.fired("kill_worker") == 0:
        failures.append("workers-chaos: no kill-worker injection fired")
    if stats["worker_deaths"] == 0:
        failures.append("workers-chaos: injection fired but no worker died")
    for problem in problems:
        failures.append(f"workers-chaos: {problem}")
    for result in results:
        if result.status != "ok":
            failures.append(
                f"workers-chaos: {result.device_id}: status "
                f"{result.status} under worker-kill ({result.error})"
            )

    replay = read_journal(path)
    resumed = ProcessDiagnosisService(
        n_workers=2,
        worker_shards=1,
        strategies=("bsat",),
        policy="complete",
        timeout=WORKERS_TIMEOUT,
        solver_backend=solver_backend,
        resume_from=replay,
    )
    try:
        replayed = resumed.run(devices)
    finally:
        resumed.close()
    for original, again in zip(results, replayed):
        if not again.journal_replayed:
            failures.append(
                f"workers-chaos: {again.device_id}: re-diagnosed on "
                f"resume instead of served from the journal"
            )
        elif again.answer != original.answer or tuple(
            again.solutions
        ) != tuple(original.solutions):
            failures.append(
                f"workers-chaos: {again.device_id}: journal replay is "
                f"not bit-identical"
            )
    return {
        "seed": seed,
        "n_workers": WORKERS_CHAOS_WORKERS,
        "worker_kills_fired": injector.fired("kill_worker"),
        "injections": [
            {"kind": e.kind, "site": e.site, "occurrence": e.occurrence}
            for e in injector.log
        ],
        "wall": wall,
        "worker_deaths": stats["worker_deaths"],
        "reroutes": stats["reroutes"],
        "journal": {
            "path": str(path),
            "records": replay.records,
            "resolved": len(replay.resolved),
            "stats": dict(journal.stats),
        },
        "replayed": sum(1 for r in replayed if r.journal_replayed),
    }


def run(
    smoke: bool,
    solver_backend: str | None = None,
    chaos: bool = False,
    chaos_seed: int = 0,
    chaos_journal=None,
    workers: int = 0,
    workers_journal=None,
) -> dict:
    fleet = list(SMOKE_FLEET)
    if not smoke:
        fleet += FULL_EXTRA_FLEET
    devices = _make_devices(fleet)
    n_dup = sum(min(d, len(s)) for _, s, d in fleet)
    failures: list[str] = []

    baseline = run_baseline(devices, solver_backend)
    service, results, service_wall = run_service(devices, solver_backend)
    stats = service.stats()

    service_latencies = [r.latency for r in results]
    base_p50 = _percentile(baseline["latencies"], 0.50)
    base_p99 = _percentile(baseline["latencies"], 0.99)
    serve_p50 = _percentile(service_latencies, 0.50)
    serve_p99 = _percentile(service_latencies, 0.99)
    throughput_ratio = baseline["wall"] / service_wall
    report = {
        "smoke": smoke,
        "solver_backend": solver_backend or "arena",
        "n_devices": len(devices),
        "n_designs": len(fleet),
        "n_shards": N_SHARDS,
        "baseline": {
            "wall": baseline["wall"],
            "devices_per_sec": len(devices) / baseline["wall"],
            "p50": base_p50,
            "p99": base_p99,
        },
        "service": {
            "wall": service_wall,
            "devices_per_sec": len(devices) / service_wall,
            "p50": serve_p50,
            "p99": serve_p99,
            "stats": stats,
        },
        "devices": [r.to_dict() for r in results],
        "gated_ratios": {
            "serve:throughput": throughput_ratio,
            "serve:p50": base_p50 / serve_p50 if serve_p50 > 0 else None,
            "serve:p99": base_p99 / serve_p99 if serve_p99 > 0 else None,
        },
    }

    # -- acceptance gates ---------------------------------------------
    for key, ratio in report["gated_ratios"].items():
        if ratio is None or ratio <= 1.0:
            failures.append(
                f"{key}: service does not beat the sequential baseline "
                f"(ratio {ratio})"
            )
    builds = stats["design_cache"]["skeleton_builds"]
    for design, _, _ in fleet:
        if builds.get(design, 0) != 1:
            failures.append(
                f"{design}: skeleton built {builds.get(design, 0)} times "
                f"(must be exactly once per design)"
            )
    cached = sum(1 for r in results if r.cached)
    if cached != n_dup:
        failures.append(
            f"signature batching: {cached} memo-served devices, "
            f"expected {n_dup}"
        )
    check_parity(devices, results, failures, solver_backend)
    check_bsat_reference(devices, failures, solver_backend)
    if chaos:
        report["chaos"] = run_chaos(
            devices,
            failures,
            solver_backend,
            seed=chaos_seed,
            journal_path=chaos_journal,
        )
    if workers:
        leg = run_workers_leg(
            workers,
            failures,
            solver_backend,
            journal_path=workers_journal,
        )
        report["workers"] = leg
        if leg["gated"] and leg["throughput_ratio"] is not None:
            # Published (and hence baseline-diffed) only when the >=2
            # core gate applied: compare_baseline skips baseline-only
            # keys, so single-core runs neither fail nor water it down.
            report["gated_ratios"]["serve:procpool_throughput"] = leg[
                "throughput_ratio"
            ]
    report["failures"] = failures
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small pinned fleet only (the CI configuration)",
    )
    parser.add_argument(
        "--out", default=str(OUT_DIR / "serve.json"),
        help="JSON artifact path",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="add the chaos leg: rerun the fleet under seeded "
        "shard-kills with a result journal, gating throughput (within "
        "2x clean) and bit-identical journal replay on resume",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="injection-schedule seed for --chaos",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="add the process-mode leg: run the core-bound fleet "
        "through ProcessDiagnosisService with N design-sharded worker "
        "processes, gating >=1.5x devices/sec over thread mode (when "
        ">=2 cores are available), bit-identical bsat-only results, "
        "build-once per design per owning worker, and kill-worker "
        "chaos with bit-identical journal replay on resume; 0 skips "
        "the leg",
    )
    parser.add_argument(
        "--solver-backend", default=None, metavar="NAME",
        help="SAT backend for every leg of the race — both the "
        "sequential baseline and the service (e.g. arena-jit, racing "
        "the compiled kernels against the interpreted baseline); skips "
        "cleanly when the backend's optional dependency is unavailable",
    )
    args = parser.parse_args(argv)
    if args.solver_backend is not None:
        from repro.sat.backends import SAT_BACKENDS, unavailable_backends

        if args.solver_backend not in SAT_BACKENDS:
            reason = unavailable_backends().get(args.solver_backend)
            if reason is not None:
                print(
                    f"skipping --solver-backend {args.solver_backend}: "
                    f"{reason}"
                )
                return 0
            print(
                f"unknown backend {args.solver_backend!r}; registered: "
                f"{sorted(SAT_BACKENDS)}",
                file=sys.stderr,
            )
            return 2
    report = run(
        smoke=args.smoke,
        solver_backend=args.solver_backend,
        chaos=args.chaos,
        chaos_seed=args.chaos_seed,
        workers=args.workers,
    )
    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {out_path}")
    base, serve = report["baseline"], report["service"]
    print(
        f"fleet: {report['n_devices']} devices / {report['n_designs']} "
        f"designs / {report['n_shards']} shards"
    )
    print(
        f"baseline  {base['devices_per_sec']:8.1f} dev/s  "
        f"p50 {base['p50'] * 1e3:7.2f}ms  p99 {base['p99'] * 1e3:7.2f}ms"
    )
    print(
        f"service   {serve['devices_per_sec']:8.1f} dev/s  "
        f"p50 {serve['p50'] * 1e3:7.2f}ms  p99 {serve['p99'] * 1e3:7.2f}ms"
    )
    for key, ratio in report["gated_ratios"].items():
        print(f"  {key:<18} {ratio:6.2f}x")
    winners = serve["stats"]["race_winners"]
    print(
        f"race winners: {winners}  cancelled legs: "
        f"{serve['stats']['cancelled_legs']}  signature hits: "
        f"{serve['stats']['signature_hits']}"
    )
    if "chaos" in report:
        chaos = report["chaos"]
        print(
            f"chaos: {chaos['shard_kills_fired']} shard kills "
            f"(seed {chaos['seed']})  wall {chaos['wall']:.3f}s "
            f"({chaos['overhead_ratio']:.2f}x clean)  journal replayed "
            f"{chaos['replayed']}/{report['n_devices']} devices"
        )
    if "workers" in report:
        leg = report["workers"]
        gate = (
            "gated"
            if leg["gated"]
            else f"ungated: {leg['gate_skip_reason']}"
        )
        print(
            f"workers({leg['n_workers']}): "
            f"{leg['proc_devices_per_sec']:.1f} dev/s vs thread "
            f"{leg['thread_devices_per_sec']:.1f} dev/s = "
            f"{leg['throughput_ratio']:.2f}x ({gate})"
        )
        wchaos = leg["chaos"]
        print(
            f"workers-chaos: {wchaos['worker_kills_fired']} worker kills  "
            f"deaths {wchaos['worker_deaths']}  reroutes "
            f"{wchaos['reroutes']}  journal replayed "
            f"{wchaos['replayed']}/{leg['n_devices']} devices"
        )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all serving acceptance gates passed")
    return 0


def test_serve_smoke():
    """Pytest entry point mirroring ``--smoke`` (bench suite style)."""
    report = run(smoke=True)
    assert not report["failures"], report["failures"]


def test_serve_chaos_smoke(tmp_path):
    """The chaos leg alone: seeded shard-kills with a journal, gated
    exactly as ``--smoke --chaos``."""
    devices = _make_devices(SMOKE_FLEET)
    failures: list[str] = []
    run_chaos(
        devices, failures, journal_path=tmp_path / "serve-chaos.wal"
    )
    assert not failures, failures


def test_serve_workers_smoke(tmp_path):
    """The process-mode leg alone, gated exactly as
    ``--smoke --workers 2`` (throughput gate auto-skips below 2
    cores; bit-identity, build-once and kill-worker chaos always run)."""
    failures: list[str] = []
    run_workers_leg(
        2, failures, journal_path=tmp_path / "serve-procs.wal"
    )
    assert not failures, failures


if __name__ == "__main__":
    sys.exit(main())
