"""Table 1 — empirical validation of the complexity *rows*.

Table 1's runtime/size complexities are analytic; this bench measures the
ones our instrumentation can see and checks the claimed growth shape:

* BSIM time O(|I|·m): runtime vs circuit size at fixed m, and vs m at
  fixed size — both must scale ~linearly;
* BSAT size Θ(|I|·m): CNF variable and clause counts per (|I|, m) —
  the count divided by |I|·m must be ~constant;
* COV size O(|I|·m): total candidate-set storage is bounded by marked
  gates per test.

Artifact: ``benchmarks/out/table1_scaling.txt``.
"""

import time

from conftest import write_artifact

from repro.circuits import random_circuit
from repro.diagnosis import basic_sim_diagnose, build_diagnosis_instance
from repro.experiments import make_workload

SIZES = (100, 200, 400)
M_VALUES = (4, 8, 16)


def _bsim_rows():
    rows = []
    for n_gates in SIZES:
        circuit = random_circuit(
            n_inputs=16, n_outputs=8, n_gates=n_gates, seed=9
        )
        workload = make_workload(circuit, p=1, m_max=16, seed=2)
        for m in M_VALUES:
            tests = workload.tests.prefix(m)
            start = time.perf_counter()
            basic_sim_diagnose(workload.faulty, tests)
            elapsed = time.perf_counter() - start
            rows.append((workload.faulty.num_gates, m, elapsed))
    return rows


def _bsat_size_rows():
    rows = []
    for n_gates in SIZES:
        circuit = random_circuit(
            n_inputs=16, n_outputs=8, n_gates=n_gates, seed=9
        )
        workload = make_workload(circuit, p=1, m_max=16, seed=2)
        for m in M_VALUES:
            instance = build_diagnosis_instance(
                workload.faulty, workload.tests.prefix(m), k_max=1
            )
            rows.append(
                (
                    workload.faulty.num_gates,
                    m,
                    instance.cnf.num_vars,
                    instance.cnf.num_clauses,
                )
            )
    return rows


def test_bsim_linear_time(benchmark):
    rows = benchmark.pedantic(_bsim_rows, rounds=1, iterations=1)
    lines = ["BSIM runtime — claim O(|I|·m)", f"{'|I|':>6} {'m':>4} {'ms':>8} {'ms/(|I|·m)':>12}"]
    normalized = []
    for gates, m, elapsed in rows:
        norm = elapsed / (gates * m)
        normalized.append(norm)
        lines.append(f"{gates:>6} {m:>4} {elapsed * 1e3:>8.2f} {norm * 1e9:>10.1f}ns")
    # Linearity: the per-(|I|·m) cost varies by < 8x across a 12x range of
    # |I|·m (generous: Python constant factors wobble at small sizes).
    spread = max(normalized) / min(normalized)
    lines.append(f"normalized spread: {spread:.2f}x (linear ⇒ small)")
    write_artifact("table1_scaling.txt", "\n".join(lines))
    assert spread < 8.0


def test_bsat_instance_size_bilinear(benchmark):
    rows = benchmark.pedantic(_bsat_size_rows, rounds=1, iterations=1)
    lines = [
        "",
        "BSAT CNF size — claim Θ(|I|·m)",
        f"{'|I|':>6} {'m':>4} {'vars':>8} {'clauses':>9} {'vars/(|I|·m)':>13}",
    ]
    ratios = []
    for gates, m, n_vars, n_clauses in rows:
        ratio = n_vars / (gates * m)
        ratios.append(ratio)
        lines.append(
            f"{gates:>6} {m:>4} {n_vars:>8} {n_clauses:>9} {ratio:>13.2f}"
        )
    spread = max(ratios) / min(ratios)
    lines.append(f"vars/(|I|·m) spread: {spread:.2f}x (Θ(|I|·m) ⇒ ~1)")
    # Append to the artifact written by the BSIM half.
    from conftest import OUT_DIR

    path = OUT_DIR / "table1_scaling.txt"
    existing = path.read_text() if path.exists() else ""
    write_artifact("table1_scaling.txt", existing + "\n".join(lines))
    assert spread < 2.0


def test_cov_storage_bounded(benchmark):
    """COV stores at most |I| candidates per test: O(|I|·m)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    circuit = random_circuit(n_inputs=16, n_outputs=8, n_gates=200, seed=9)
    workload = make_workload(circuit, p=1, m_max=16, seed=2)
    sim = basic_sim_diagnose(workload.faulty, workload.tests)
    total = sum(len(s) for s in sim.candidate_sets)
    bound = workload.faulty.num_gates * workload.tests.m
    assert total <= bound
