"""Table 3 — diagnosis quality of the basic approaches.

For every grid cell: BSIM's |∪Ci|, avgA, Gmax and its min/max/avg distance
to the nearest actual error; COV's and BSAT's solution counts and
per-solution average distances.  The paper's headline (checked here and
recorded in EXPERIMENTS.md): BSAT returns the best-quality solutions in
(nearly) all cells, and an actual error site usually — but not always —
carries the maximal path-tracing mark count.

The benchmark figure tracks the quality-metric computation itself.
"""

import math

from conftest import get_grid_cells, write_artifact

from repro.diagnosis import bsim_quality, basic_sim_diagnose, solution_quality
from repro.experiments import format_table3, make_workload


def compute_metrics_once():
    workload = make_workload("sim1423", p=2, m_max=8, seed=2)
    sim = basic_sim_diagnose(workload.faulty, workload.tests)
    q = bsim_quality(workload.faulty, sim, workload.sites)
    sq = solution_quality(
        workload.faulty, sim.candidate_sets, workload.sites
    )
    return q, sq


def test_table3(benchmark):
    cells = get_grid_cells()
    benchmark.pedantic(compute_metrics_once, rounds=1, iterations=1)
    text = format_table3(cells)

    comparable = [
        c
        for c in cells
        if not (math.isnan(c.cov.avg_avg) or math.isnan(c.sat.avg_avg))
    ]
    bsat_better = sum(
        1 for c in comparable if c.sat.avg_avg <= c.cov.avg_avg
    )
    gmax_hits = sum(1 for c in cells if c.bsim.error_in_gmax)
    text += (
        f"\n\nBSAT avg distance <= COV avg distance in "
        f"{bsat_better}/{len(comparable)} cells"
        f"\nactual error site in Gmax in {gmax_hits}/{len(cells)} cells "
        f"(paper: 'almost all', not guaranteed)"
    )
    write_artifact("table3.txt", text)
    print("\n" + text)
    # the paper's conclusion: BSAT wins in (nearly) all cells — require
    # a strict majority to guard the reproduction's shape.
    assert bsat_better * 2 > len(comparable)
