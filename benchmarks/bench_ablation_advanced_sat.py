"""Ablation — the advanced SAT heuristics of §2.3.

Compares plain BSAT against the three heuristics the paper credits with
large speed-ups (select-zero clauses, dominator two-pass, test-set
partitioning) on a shared workload.  Reported per variant: wall time,
solver decisions/conflicts, suspect-set sizes, and a solution-set equality
check (heuristics must not lose single-error solutions).
"""

import time

from conftest import write_artifact

from repro.diagnosis import (
    basic_sat_diagnose,
    dominator_sat_diagnose,
    partitioned_sat_diagnose,
    select_zero_sat_diagnose,
)
from repro.experiments import make_workload


def run_ablation():
    workload = make_workload("sim1423", p=1, m_max=16, seed=4)
    faulty, tests = workload.faulty, workload.tests
    rows = []
    results = {}

    def measure(name, fn):
        start = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - start
        stats = result.extras.get("solver_stats", {})
        results[name] = result
        rows.append(
            f"{name:<14} {wall:>7.2f}s  sol={result.n_solutions:<4} "
            f"decisions={stats.get('decisions', '-'):<9} "
            f"conflicts={stats.get('conflicts', '-')}"
        )

    measure("BSAT", lambda: basic_sat_diagnose(faulty, tests, k=1))
    measure(
        "BSAT+sc0", lambda: select_zero_sat_diagnose(faulty, tests, k=1)
    )
    measure(
        "dominators",
        lambda: dominator_sat_diagnose(faulty, tests, k=1),
    )
    measure(
        "partitioned",
        lambda: partitioned_sat_diagnose(faulty, tests, k=1, chunk=4),
    )

    base = set(results["BSAT"].solutions)
    lines = [
        f"workload: {faulty.name}, p=1, m={tests.m}, "
        f"|I|={faulty.num_gates}",
        *rows,
        "",
        "solution-set checks vs BSAT:",
    ]
    for name in ("BSAT+sc0", "dominators", "partitioned"):
        same = set(results[name].solutions) == base
        lines.append(f"  {name}: {'identical' if same else 'DIFFERS'}")
        assert same, f"{name} lost single-error solutions"
    dom = results["dominators"]
    lines.append(
        f"  dominator pass-1 suspects: {dom.extras['pass1_suspects']} "
        f"of {faulty.num_gates} gates "
        f"({100 * dom.extras['pass1_suspects'] / faulty.num_gates:.0f}%)"
    )
    sc0 = results["BSAT+sc0"].extras["solver_stats"]["decisions"]
    plain = results["BSAT"].extras["solver_stats"]["decisions"]
    lines.append(
        f"  select-zero clauses: {plain} -> {sc0} decisions "
        f"({plain / max(sc0, 1):.1f}x fewer)"
    )
    return "\n".join(lines)


def test_advanced_sat_ablation(benchmark):
    text = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    write_artifact("ablation_advanced_sat.txt", text)
    print("\n" + text)
