"""Figure 6 — quality of BSAT vs COV, scatter over all benchmark cells.

Panel (a): per-cell average solution distance; panel (b): number of
solutions (log-log).  The paper's reading — "BSAT usually returns a
smaller number of solutions of a better quality" — is asserted as a
majority property over the grid.

The benchmark figure tracks series construction + ASCII rendering.
"""

from conftest import get_grid_cells, write_artifact

from repro.experiments import fig6_series, format_fig6


def test_fig6(benchmark):
    cells = get_grid_cells()
    text = benchmark.pedantic(
        format_fig6, args=(cells,), rounds=1, iterations=1
    )
    quality, counts = fig6_series(cells)
    better_quality = sum(1 for p in quality if p.sat <= p.cov)
    fewer = sum(1 for p in counts if p.sat <= p.cov)
    write_artifact("fig6.txt", text)
    print("\n" + text)
    assert better_quality * 2 > len(quality), "BSAT quality majority lost"
    assert fewer * 2 > len(counts), "BSAT solution-count majority lost"
