"""Table 2 — runtimes of the basic approaches.

Reruns the paper's measurement protocol over the experiment grid (see
``conftest.scale_params``): per (circuit, p, m) cell, BSIM wall time, COV
CNF/One/All and BSAT CNF/One/All.  Absolute numbers differ from the paper
(pure-Python engines vs. Zchaff on a 2004 Athlon); the *shape* to check —
recorded in EXPERIMENTS.md — is BSIM << COV-All << BSAT-All, and BSAT's
"All" dominated by effect analysis.

The pytest-benchmark figure tracks one representative cell (smallest
circuit, m=4) so regressions are visible without re-running the grid; the
full grid is computed once and shared with the Table 3 / Figure 6 benches.
"""

from conftest import get_grid_cells, scale_params, write_artifact

from repro.experiments import format_table2, make_workload, run_cell


def representative_cell():
    params = scale_params()
    circuit_name, p = params["grid"][0]
    workload = make_workload(circuit_name, p=p, m_max=4, seed=p)
    return run_cell(
        workload,
        m=4,
        solution_limit=params["solution_limit"],
        conflict_limit=params["conflict_limit"],
    )


def test_table2(benchmark):
    cells = get_grid_cells()
    benchmark.pedantic(representative_cell, rounds=1, iterations=1)
    text = format_table2(cells)

    # The paper's headline runtime ordering must hold per cell.
    violations = [
        c.cell_id
        for c in cells
        if not (c.bsim_time <= c.cov_all + 0.5 and c.bsim_time < c.bsat_all)
    ]
    text += "\n\nruntime ordering BSIM <= COV-All and BSIM < BSAT-All: " + (
        "OK" if not violations else f"VIOLATED in {violations}"
    )
    write_artifact("table2.txt", text)
    print("\n" + text)
    assert not violations
