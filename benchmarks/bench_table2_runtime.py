"""Table 2 — runtimes of the basic approaches.

Reruns the paper's measurement protocol over the experiment grid (see
``conftest.scale_params``): per (circuit, p, m) cell, BSIM wall time, COV
CNF/One/All and BSAT CNF/One/All.  Absolute numbers differ from the paper
(pure-Python engines vs. Zchaff on a 2004 Athlon); the *shape* to check —
recorded in EXPERIMENTS.md — is BSIM << COV-All << BSAT-All, and BSAT's
"All" dominated by effect analysis.

The pytest-benchmark figure tracks one representative cell (smallest
circuit, m=4) so regressions are visible without re-running the grid; the
full grid is computed once and shared with the Table 3 / Figure 6 benches.
"""

from bench_solver import (
    MIN_SPEEDUP,
    bsat_workflow_legacy,
    bsat_workflow_persistent,
)
from conftest import get_grid_cells, scale_params, write_artifact

from repro.experiments import format_table2, make_workload, run_cell


def representative_cell():
    params = scale_params()
    circuit_name, p = params["grid"][0]
    workload = make_workload(circuit_name, p=p, m_max=4, seed=p)
    return run_cell(
        workload,
        m=4,
        solution_limit=params["solution_limit"],
        conflict_limit=params["conflict_limit"],
    )


def test_table2(benchmark):
    cells = get_grid_cells()
    benchmark.pedantic(representative_cell, rounds=1, iterations=1)
    text = format_table2(cells)

    # The paper's headline runtime ordering must hold per cell.
    violations = [
        c.cell_id
        for c in cells
        if not (c.bsim_time <= c.cov_all + 0.5 and c.bsim_time < c.bsat_all)
    ]
    text += "\n\nruntime ordering BSIM <= COV-All and BSIM < BSAT-All: " + (
        "OK" if not violations else f"VIOLATED in {violations}"
    )
    write_artifact("table2.txt", text)
    print("\n" + text)
    assert not violations


def test_bsat_incremental_speedup(benchmark):
    """PR-4 acceptance gate on the grid's representative cell: the
    persistent-instance arena path must finish the BSAT session workflow
    (auto-k probe + full enumeration + corrections) >= 3x faster than
    the legacy rebuilt-instance path, with identical solution sets."""
    params = scale_params()
    circuit_name, p = params["grid"][0]
    workload = make_workload(circuit_name, p=p, m_max=4, seed=p).cell(4)
    k_max = max(2, workload.p)

    legacy_times, k_l, sols_l, _ = bsat_workflow_legacy(workload, k_max)
    new_times, k_n, sols_n, _, _ = benchmark.pedantic(
        bsat_workflow_persistent,
        args=(workload, k_max),
        rounds=1,
        iterations=1,
    )
    assert (k_l, sols_l) == (k_n, sols_n)
    speedup = legacy_times["total"] / new_times["total"]
    line = (
        f"BSAT workflow ({circuit_name} p={p} m=4): legacy "
        f"{legacy_times['total']:.3f}s, persistent "
        f"{new_times['total']:.3f}s, speedup {speedup:.1f}x "
        f"(gate: >= {MIN_SPEEDUP:.0f}x)"
    )
    write_artifact("table2_bsat_speedup.txt", line)
    print("\n" + line)
    assert speedup >= MIN_SPEEDUP, line
