"""Ablation bench — when does the structural baseline break?

Quantifies the intro's dismissal of structural approaches (ref [12]):
on a plain injection the suspect set is tight (confined to the error
cones, sources pinpoint the site); after a synthesis-like restructuring
(wide-gate decomposition) the suspect set fills with false positives,
while the test-vector approaches (represented by BSIM here) are
unaffected because they never assumed similarity.

Artifact: ``benchmarks/out/ablation_structural.txt``.
"""

from conftest import write_artifact

from repro.circuits import decompose_wide_gates
from repro.circuits.library import mux_tree
from repro.diagnosis import (
    basic_sim_diagnose,
    structural_diagnose,
    suspects_within_error_cones,
)
from repro.experiments import make_workload
from repro.faults import random_gate_changes
from repro.testgen import distinguishing_tests


def _spec():
    return mux_tree(3)


def _rows():
    spec = _spec()
    rows = []
    for label, impl_base in (
        ("similar", spec.copy()),
        ("restructured", decompose_wide_gates(spec, max_fanin=2, seed=7)),
    ):
        inj = random_gate_changes(impl_base, p=1, seed=3)
        diag = structural_diagnose(spec, inj.faulty, seed=0)
        tight = suspects_within_error_cones(diag, inj.faulty, inj.sites)
        tests = distinguishing_tests(spec, inj.faulty, m=8)
        sim = basic_sim_diagnose(inj.faulty, tests)
        marked = set().union(*sim.candidate_sets) if sim.candidate_sets else set()
        rows.append(
            (
                label,
                inj.faulty.num_gates,
                diag.suspect_count,
                len(diag.sources),
                tight,
                inj.sites[0] in diag.suspects,
                len(marked),
                inj.sites[0] in marked,
            )
        )
    return rows


def test_structural_similarity_ablation(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    lines = [
        "Structural baseline vs similarity (mux_tree(3), p=1)",
        f"{'impl':13} {'gates':>5} {'suspects':>8} {'sources':>7} "
        f"{'tight':>5} {'site hit':>8} | {'BSIM marks':>10} {'site hit':>8}",
    ]
    for label, gates, suspects, sources, tight, hit, marks, bsim_hit in rows:
        lines.append(
            f"{label:13} {gates:>5} {suspects:>8} {sources:>7} "
            f"{str(tight):>5} {str(hit):>8} | {marks:>10} {str(bsim_hit):>8}"
        )
    write_artifact("ablation_structural.txt", "\n".join(lines))
    similar, restructured = rows
    assert similar[4] is True  # tight suspect region with similarity
    assert restructured[4] is False  # false positives without it
    assert restructured[2] > similar[2]  # suspect inflation
    assert similar[7] and restructured[7]  # BSIM unaffected either way
