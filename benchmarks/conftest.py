"""Shared infrastructure for the benchmark suite.

The Table 2 / Table 3 / Figure 6 benches all consume the same experiment
grid — the paper's (circuit, p) x m sweep — computed once per session by
:func:`get_grid_cells` and cached.  Artifacts (rendered tables/figures) are
written to ``benchmarks/out/`` so EXPERIMENTS.md can cite them.

Scale control via the environment:

* ``REPRO_BENCH_SCALE=quick``  — sim1423 only, m in {4, 8}; minutes.
* ``REPRO_BENCH_SCALE=paper`` (default) — the full paper grid (three
  circuits, m in {4, 8, 16, 32}) with enumeration caps standing in for the
  paper's 512 MB / 30 min resource limits.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import M_VALUES, PAPER_GRID, make_workload, run_cell

OUT_DIR = Path(__file__).parent / "out"

_SCALES = {
    "quick": {
        "grid": (("sim1423", 2),),
        "m_values": (4, 8),
        "solution_limit": 100,
        "conflict_limit": 50_000,
    },
    "paper": {
        "grid": PAPER_GRID,
        "m_values": M_VALUES,
        "solution_limit": 200,
        "conflict_limit": 100_000,
    },
}

_grid_cache: dict[str, list] = {}


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "paper")
    if scale not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return scale


def scale_params() -> dict:
    return _SCALES[bench_scale()]


def get_grid_cells() -> list:
    """Run (once) and cache the full experiment grid."""
    scale = bench_scale()
    if scale in _grid_cache:
        return _grid_cache[scale]
    params = _SCALES[scale]
    cells = []
    for circuit_name, p in params["grid"]:
        workload = make_workload(
            circuit_name, p=p, m_max=max(params["m_values"]), seed=p
        )
        for m in params["m_values"]:
            cells.append(
                run_cell(
                    workload,
                    m=m,
                    solution_limit=params["solution_limit"],
                    conflict_limit=params["conflict_limit"],
                )
            )
    _grid_cache[scale] = cells
    return cells


def write_artifact(name: str, text: str) -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def grid_cells():
    return get_grid_cells()
