"""Substrate bench — fault-simulation engine comparison.

Seven ways to answer "which stuck-at faults does this pattern (set)
detect":

* serial — one forced-value simulation per fault (baseline oracle);
* deductive — one pure-Python pass propagating fault lists as ``set``s;
* deductive-numpy — the same propagation on uint64 bitset matrices,
  whole pattern blocks at once (:mod:`repro.sim.deductive_numpy`);
* batch — fault-parallel numpy sweep (all faults stacked on a batch
  axis; :mod:`repro.sim.batchfault`);
* codegen — the same sweep through the per-circuit generated
  straight-line kernel (:mod:`repro.sim.codegen`); the kernel build is
  paid once *outside* the timed region (the warm-up methodology of
  ``benchmarks/README.md`` — what a dictionary build or ATPG drop loop
  amortises over many sweeps);
* event — force/unforce cone updates on the batched event simulator
  (:mod:`repro.sim.batchevent`);
* bit-parallel table — golden-vs-faulty response comparison over many
  patterns at once (per *error*, not per fault — included to show where
  each engine pays).

Two workloads: the historical 120-gate single-pattern detect, and the
ATPG-scale ~600-gate × ~1400-fault × 256-pattern coverage sweep — where
the vectorized deductive engine must beat the pure-Python propagator by
≥5× and the generated kernel must beat the interpreted batch sweep by
≥2× on the detect leg (both asserted, and recorded for EXPERIMENTS.md).

Artifacts: ``benchmarks/out/faultsim_engines.txt`` (human-readable) and
``benchmarks/out/faultsim_engines.json`` whose ``gated_ratios`` block is
diffed against the committed ``BENCH_faultsim.json`` by
``compare_baseline.py``.
"""

import json
import random
import time

from conftest import write_artifact

from repro.circuits import random_circuit
from repro.faults import full_stuck_at_universe
from repro.sim import (
    batch_detected,
    batch_fault_coverage,
    codegen_detected,
    codegen_fault_coverage,
    compile_kernel,
    deductive_coverage,
    deductive_coverage_numpy,
    deductive_detected,
    deductive_detected_numpy,
    event_detected,
    event_fault_coverage,
    response,
    stuck_at_response,
)

N_GATES = 120

#: The ATPG-scale workload of the ISSUE acceptance criterion.
BIG_GATES = 600
BIG_INPUTS = 24
BIG_OUTPUTS = 10
BIG_PATTERNS = 256
#: Floor on deductive-numpy vs pure-Python deductive coverage speedup.
MIN_DEDUCTIVE_SPEEDUP = 5.0
#: Floor on the generated kernel vs the interpreted batch sweep on the
#: single-pattern detect workload (kernel pre-built outside the timed
#: region, both legs timed min-of-N).  Typically measures 2-3x; the
#: in-run floor sits below that because a contended runner can shave
#: the margin, and the measured ratio is drift-gated against
#: ``BENCH_faultsim.json`` anyway.  The coverage-sweep ratio is
#: recorded and drift-gated only, as it sits closer to 1 once
#: batchfault's allocations are warm.
MIN_CODEGEN_SPEEDUP = 1.5
#: Repetitions per timed engine call; the minimum is kept.  Single cold
#: calls on shared runners carry page-fault and scheduler noise that
#: swamps a 2x ratio — the least-contended observation is the stable one.
TIMING_REPEATS = 3


def _setup():
    circuit = random_circuit(n_inputs=10, n_outputs=5, n_gates=N_GATES, seed=11)
    rng = random.Random(2)
    vector = {pi: rng.getrandbits(1) for pi in circuit.inputs}
    faults = full_stuck_at_universe(circuit)
    return circuit, vector, faults


def _setup_big():
    circuit = random_circuit(
        n_inputs=BIG_INPUTS,
        n_outputs=BIG_OUTPUTS,
        n_gates=BIG_GATES,
        seed=11,
    )
    rng = random.Random(1)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs}
        for _ in range(BIG_PATTERNS)
    ]
    faults = list(full_stuck_at_universe(circuit))
    return circuit, patterns, faults


def _best_of(fn, repeats=TIMING_REPEATS):
    """(min wall time over ``repeats`` calls, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _serial(circuit, vector, faults):
    good = response(circuit, vector)
    return frozenset(
        f
        for f in faults
        if stuck_at_response(circuit, vector, f.signal, f.value) != good
    )


def test_serial_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(lambda: _serial(circuit, vector, faults))
    assert detected


def test_deductive_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(lambda: deductive_detected(circuit, vector, faults))
    assert detected == _serial(circuit, vector, faults)


def test_deductive_numpy_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(
        lambda: deductive_detected_numpy(circuit, vector, faults)
    )
    assert detected == _serial(circuit, vector, faults)


def test_batch_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(lambda: batch_detected(circuit, vector, faults))
    assert detected == _serial(circuit, vector, faults)


def test_codegen_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    compile_kernel(circuit)  # kernel build outside the timed region
    detected = benchmark(lambda: codegen_detected(circuit, vector, faults))
    assert detected == _serial(circuit, vector, faults)


def test_event_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark.pedantic(
        lambda: event_detected(circuit, vector, faults),
        rounds=1,
        iterations=1,
    )
    assert detected == _serial(circuit, vector, faults)


def test_record_speedup_artifact(benchmark):
    """Single-pattern detect on 120 gates + ATPG-scale coverage on ~600
    gates; asserts the ≥5× deductive vectorization target, the ≥2×
    generated-kernel target over the interpreted batch sweep, and that
    every engine stays bit-identical."""
    circuit, vector, faults = _setup()
    t0 = time.perf_counter()
    serial = _serial(circuit, vector, faults)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    deductive = deductive_detected(circuit, vector, faults)
    t_deductive = time.perf_counter() - t0
    benchmark.pedantic(
        lambda: batch_detected(circuit, vector, faults),
        rounds=1,
        iterations=1,
    )
    t_batch, batch = _best_of(lambda: batch_detected(circuit, vector, faults))
    # Warm-up methodology (benchmarks/README.md): the one-time kernel
    # build happens outside the timed region — the steady state a
    # dictionary build or ATPG drop loop runs in.
    compile_kernel(circuit)
    t_codegen, codegen = _best_of(
        lambda: codegen_detected(circuit, vector, faults)
    )
    assert serial == deductive == batch == codegen
    codegen_detect_speedup = t_batch / max(t_codegen, 1e-9)

    big, patterns, big_faults = _setup_big()
    t_cov_py, cov_py = _best_of(
        lambda: deductive_coverage(big, patterns, faults=big_faults)
    )
    t_cov_np, cov_np = _best_of(
        lambda: deductive_coverage_numpy(big, patterns, big_faults)
    )
    t_cov_bf, cov_bf = _best_of(
        lambda: batch_fault_coverage(big, patterns, big_faults)
    )
    t0 = time.perf_counter()
    cov_ev = event_fault_coverage(big, patterns, big_faults)
    t_cov_ev = time.perf_counter() - t0
    compile_kernel(big)  # kernel build outside the timed region
    t_cov_cg, cov_cg = _best_of(
        lambda: codegen_fault_coverage(big, patterns, big_faults)
    )
    assert (
        dict(cov_py.first_detection)
        == dict(cov_np.first_detection)
        == dict(cov_bf.first_detection)
        == dict(cov_ev.first_detection)
        == dict(cov_cg.first_detection)
    )
    speedup = t_cov_py / max(t_cov_np, 1e-9)
    codegen_cov_speedup = t_cov_bf / max(t_cov_cg, 1e-9)
    write_artifact(
        "faultsim_engines.txt",
        "\n".join(
            [
                f"detect: {N_GATES} gates, {len(faults)} faults, 1 pattern",
                f"serial (forced simulation per fault): {t_serial * 1e3:.1f} ms",
                f"deductive (one pass):                 {t_deductive * 1e3:.1f} ms",
                f"batch (fault-parallel numpy):         {t_batch * 1e3:.1f} ms",
                f"codegen (generated kernel, warm):     {t_codegen * 1e3:.1f} ms",
                f"speedup deductive: {t_serial / max(t_deductive, 1e-9):.1f}x",
                f"speedup batch:     {t_serial / max(t_batch, 1e-9):.1f}x",
                f"speedup codegen vs batch: {codegen_detect_speedup:.1f}x "
                f"(floor {MIN_CODEGEN_SPEEDUP:.1f}x)",
                f"detected: {len(batch)}/{len(faults)}",
                "",
                f"coverage: {big.num_gates} gates, {len(big_faults)} faults, "
                f"{len(patterns)} patterns",
                f"deductive py (sets):        {t_cov_py * 1e3:.0f} ms",
                f"deductive numpy (bitsets):  {t_cov_np * 1e3:.0f} ms",
                f"batchfault (lane sweep):    {t_cov_bf * 1e3:.0f} ms",
                f"batch-event (cone updates): {t_cov_ev * 1e3:.0f} ms",
                f"codegen (generated kernel): {t_cov_cg * 1e3:.0f} ms",
                f"speedup deductive-numpy vs py: {speedup:.1f}x "
                f"(floor {MIN_DEDUCTIVE_SPEEDUP:.0f}x)",
                f"speedup codegen vs batchfault: {codegen_cov_speedup:.1f}x",
                f"coverage: {100 * cov_np.coverage:.1f}% "
                f"({len(cov_np.detected)}/{len(big_faults)})",
            ]
        ),
    )
    write_artifact(
        "faultsim_engines.json",
        json.dumps(
            {
                "detect": {
                    "gates": N_GATES,
                    "n_faults": len(faults),
                    "t_serial": t_serial,
                    "t_deductive": t_deductive,
                    "t_batch": t_batch,
                    "t_codegen": t_codegen,
                },
                "coverage": {
                    "gates": big.num_gates,
                    "n_faults": len(big_faults),
                    "n_patterns": len(patterns),
                    "t_deductive_py": t_cov_py,
                    "t_deductive_numpy": t_cov_np,
                    "t_batchfault": t_cov_bf,
                    "t_event": t_cov_ev,
                    "t_codegen": t_cov_cg,
                },
                "gated_ratios": {
                    "faultsim:deductive_numpy": speedup,
                    "faultsim:codegen_detect": codegen_detect_speedup,
                    "faultsim:codegen_coverage": codegen_cov_speedup,
                },
            },
            indent=1,
        )
        + "\n",
    )
    assert speedup >= MIN_DEDUCTIVE_SPEEDUP, (
        f"deductive-numpy only {speedup:.1f}x over pure Python "
        f"(need >= {MIN_DEDUCTIVE_SPEEDUP}x)"
    )
    assert codegen_detect_speedup >= MIN_CODEGEN_SPEEDUP, (
        f"codegen only {codegen_detect_speedup:.1f}x over the batch sweep "
        f"(need >= {MIN_CODEGEN_SPEEDUP}x)"
    )
