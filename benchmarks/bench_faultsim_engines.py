"""Substrate bench — fault-simulation engine comparison.

Four ways to answer "which stuck-at faults does this pattern detect":

* serial — one forced-value simulation per fault (baseline oracle);
* deductive — one pass propagating fault lists (all faults at once);
* batch — fault-parallel numpy sweep (all faults stacked on a batch
  axis; :mod:`repro.sim.batchfault`);
* bit-parallel table — golden-vs-faulty response comparison over many
  patterns at once (per *error*, not per fault — included to show where
  each engine pays).

The deductive and batch engines should beat serial by roughly the fault
count over pattern-wise work; this records the actual factors for
EXPERIMENTS.md.

Artifact: ``benchmarks/out/faultsim_engines.txt``.
"""

import random
import time

from conftest import write_artifact

from repro.circuits import random_circuit
from repro.faults import full_stuck_at_universe
from repro.sim import (
    batch_detected,
    deductive_detected,
    response,
    stuck_at_response,
)

N_GATES = 120


def _setup():
    circuit = random_circuit(n_inputs=10, n_outputs=5, n_gates=N_GATES, seed=11)
    rng = random.Random(2)
    vector = {pi: rng.getrandbits(1) for pi in circuit.inputs}
    faults = full_stuck_at_universe(circuit)
    return circuit, vector, faults


def _serial(circuit, vector, faults):
    good = response(circuit, vector)
    return frozenset(
        f
        for f in faults
        if stuck_at_response(circuit, vector, f.signal, f.value) != good
    )


def test_serial_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(lambda: _serial(circuit, vector, faults))
    assert detected


def test_deductive_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(lambda: deductive_detected(circuit, vector, faults))
    assert detected == _serial(circuit, vector, faults)


def test_batch_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(lambda: batch_detected(circuit, vector, faults))
    assert detected == _serial(circuit, vector, faults)


def test_record_speedup_artifact(benchmark):
    circuit, vector, faults = _setup()
    t0 = time.perf_counter()
    serial = _serial(circuit, vector, faults)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    deductive = deductive_detected(circuit, vector, faults)
    t_deductive = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch = benchmark.pedantic(
        lambda: batch_detected(circuit, vector, faults),
        rounds=1,
        iterations=1,
    )
    t_batch = time.perf_counter() - t0
    assert serial == deductive == batch
    write_artifact(
        "faultsim_engines.txt",
        "\n".join(
            [
                f"circuit: {N_GATES} gates, {len(faults)} faults, 1 pattern",
                f"serial (forced simulation per fault): {t_serial * 1e3:.1f} ms",
                f"deductive (one pass):                 {t_deductive * 1e3:.1f} ms",
                f"batch (fault-parallel numpy):         {t_batch * 1e3:.1f} ms",
                f"speedup deductive: {t_serial / max(t_deductive, 1e-9):.1f}x",
                f"speedup batch:     {t_serial / max(t_batch, 1e-9):.1f}x",
                f"detected: {len(batch)}/{len(faults)}",
            ]
        ),
    )
