"""Substrate bench — fault-simulation engine comparison.

Six ways to answer "which stuck-at faults does this pattern (set) detect":

* serial — one forced-value simulation per fault (baseline oracle);
* deductive — one pure-Python pass propagating fault lists as ``set``s;
* deductive-numpy — the same propagation on uint64 bitset matrices,
  whole pattern blocks at once (:mod:`repro.sim.deductive_numpy`);
* batch — fault-parallel numpy sweep (all faults stacked on a batch
  axis; :mod:`repro.sim.batchfault`);
* event — force/unforce cone updates on the batched event simulator
  (:mod:`repro.sim.batchevent`);
* bit-parallel table — golden-vs-faulty response comparison over many
  patterns at once (per *error*, not per fault — included to show where
  each engine pays).

Two workloads: the historical 120-gate single-pattern detect, and the
ATPG-scale ~600-gate × ~1400-fault × 256-pattern coverage sweep the
ISSUE targets — where the vectorized deductive engine must beat the
pure-Python propagator by ≥5× (asserted, and recorded for
EXPERIMENTS.md).

Artifact: ``benchmarks/out/faultsim_engines.txt``.
"""

import random
import time

from conftest import write_artifact

from repro.circuits import random_circuit
from repro.faults import full_stuck_at_universe
from repro.sim import (
    batch_detected,
    batch_fault_coverage,
    deductive_coverage,
    deductive_coverage_numpy,
    deductive_detected,
    deductive_detected_numpy,
    event_detected,
    event_fault_coverage,
    response,
    stuck_at_response,
)

N_GATES = 120

#: The ATPG-scale workload of the ISSUE acceptance criterion.
BIG_GATES = 600
BIG_INPUTS = 24
BIG_OUTPUTS = 10
BIG_PATTERNS = 256
#: Floor on deductive-numpy vs pure-Python deductive coverage speedup.
MIN_DEDUCTIVE_SPEEDUP = 5.0


def _setup():
    circuit = random_circuit(n_inputs=10, n_outputs=5, n_gates=N_GATES, seed=11)
    rng = random.Random(2)
    vector = {pi: rng.getrandbits(1) for pi in circuit.inputs}
    faults = full_stuck_at_universe(circuit)
    return circuit, vector, faults


def _setup_big():
    circuit = random_circuit(
        n_inputs=BIG_INPUTS,
        n_outputs=BIG_OUTPUTS,
        n_gates=BIG_GATES,
        seed=11,
    )
    rng = random.Random(1)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs}
        for _ in range(BIG_PATTERNS)
    ]
    faults = list(full_stuck_at_universe(circuit))
    return circuit, patterns, faults


def _serial(circuit, vector, faults):
    good = response(circuit, vector)
    return frozenset(
        f
        for f in faults
        if stuck_at_response(circuit, vector, f.signal, f.value) != good
    )


def test_serial_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(lambda: _serial(circuit, vector, faults))
    assert detected


def test_deductive_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(lambda: deductive_detected(circuit, vector, faults))
    assert detected == _serial(circuit, vector, faults)


def test_deductive_numpy_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(
        lambda: deductive_detected_numpy(circuit, vector, faults)
    )
    assert detected == _serial(circuit, vector, faults)


def test_batch_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark(lambda: batch_detected(circuit, vector, faults))
    assert detected == _serial(circuit, vector, faults)


def test_event_fault_simulation(benchmark):
    circuit, vector, faults = _setup()
    detected = benchmark.pedantic(
        lambda: event_detected(circuit, vector, faults),
        rounds=1,
        iterations=1,
    )
    assert detected == _serial(circuit, vector, faults)


def test_record_speedup_artifact(benchmark):
    """Single-pattern detect on 120 gates + ATPG-scale coverage on ~600
    gates; asserts the ISSUE's ≥5× deductive vectorization target and
    that every engine stays bit-identical."""
    circuit, vector, faults = _setup()
    t0 = time.perf_counter()
    serial = _serial(circuit, vector, faults)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    deductive = deductive_detected(circuit, vector, faults)
    t_deductive = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch = benchmark.pedantic(
        lambda: batch_detected(circuit, vector, faults),
        rounds=1,
        iterations=1,
    )
    t_batch = time.perf_counter() - t0
    assert serial == deductive == batch

    big, patterns, big_faults = _setup_big()
    t0 = time.perf_counter()
    cov_py = deductive_coverage(big, patterns, faults=big_faults)
    t_cov_py = time.perf_counter() - t0
    t0 = time.perf_counter()
    cov_np = deductive_coverage_numpy(big, patterns, big_faults)
    t_cov_np = time.perf_counter() - t0
    t0 = time.perf_counter()
    cov_bf = batch_fault_coverage(big, patterns, big_faults)
    t_cov_bf = time.perf_counter() - t0
    t0 = time.perf_counter()
    cov_ev = event_fault_coverage(big, patterns, big_faults)
    t_cov_ev = time.perf_counter() - t0
    assert (
        dict(cov_py.first_detection)
        == dict(cov_np.first_detection)
        == dict(cov_bf.first_detection)
        == dict(cov_ev.first_detection)
    )
    speedup = t_cov_py / max(t_cov_np, 1e-9)
    write_artifact(
        "faultsim_engines.txt",
        "\n".join(
            [
                f"detect: {N_GATES} gates, {len(faults)} faults, 1 pattern",
                f"serial (forced simulation per fault): {t_serial * 1e3:.1f} ms",
                f"deductive (one pass):                 {t_deductive * 1e3:.1f} ms",
                f"batch (fault-parallel numpy):         {t_batch * 1e3:.1f} ms",
                f"speedup deductive: {t_serial / max(t_deductive, 1e-9):.1f}x",
                f"speedup batch:     {t_serial / max(t_batch, 1e-9):.1f}x",
                f"detected: {len(batch)}/{len(faults)}",
                "",
                f"coverage: {big.num_gates} gates, {len(big_faults)} faults, "
                f"{len(patterns)} patterns",
                f"deductive py (sets):        {t_cov_py * 1e3:.0f} ms",
                f"deductive numpy (bitsets):  {t_cov_np * 1e3:.0f} ms",
                f"batchfault (lane sweep):    {t_cov_bf * 1e3:.0f} ms",
                f"batch-event (cone updates): {t_cov_ev * 1e3:.0f} ms",
                f"speedup deductive-numpy vs py: {speedup:.1f}x "
                f"(floor {MIN_DEDUCTIVE_SPEEDUP:.0f}x)",
                f"coverage: {100 * cov_np.coverage:.1f}% "
                f"({len(cov_np.detected)}/{len(big_faults)})",
            ]
        ),
    )
    assert speedup >= MIN_DEDUCTIVE_SPEEDUP, (
        f"deductive-numpy only {speedup:.1f}x over pure Python "
        f"(need >= {MIN_DEDUCTIVE_SPEEDUP}x)"
    )
