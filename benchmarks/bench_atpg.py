"""Substrate bench — the production-test ATPG flow (§1 motivation).

Runs the full flow (collapse → generate → drop → compact) with both
engines on three circuits and reports pattern counts, coverage and the
collapse ratio.  PODEM and SAT must agree on coverage; their runtimes
differ (structural search vs CNF solving) — this quantifies the trade-off
for the EXPERIMENTS.md record.

Artifact: ``benchmarks/out/atpg.txt``.
"""

from conftest import write_artifact

from repro.circuits import random_circuit
from repro.circuits.library import c17, ripple_carry_adder
from repro.faults import collapse_faults
from repro.testgen import generate_tests


def _circuits():
    # Note on the random circuit: its output-funnel trees make many faults
    # *provably* redundant (the redundancy verdicts are exhaustively
    # validated in the test-suite), so fault efficiency — not raw coverage
    # — is the meaningful column there.  c17 and the adder are irredundant
    # and must reach 100% coverage.
    return [
        c17(),
        ripple_carry_adder(8),
        random_circuit(n_inputs=12, n_outputs=20, n_gates=150, seed=77),
    ]


def _flow(backend):
    rows = []
    for circuit in _circuits():
        result = generate_tests(circuit, backend=backend, seed=1)
        col = collapse_faults(circuit)
        rows.append(
            (
                circuit.name,
                len(col.universe),
                len(result.target_faults),
                result.test_count,
                result.fault_coverage,
                result.fault_efficiency,
            )
        )
    return rows


def test_atpg_podem_flow(benchmark):
    rows = benchmark.pedantic(lambda: _flow("podem"), rounds=1, iterations=1)
    lines = [
        "ATPG flow (PODEM backend)",
        f"{'circuit':12} {'universe':>8} {'collapsed':>9} {'tests':>6} "
        f"{'coverage':>9} {'efficiency':>10}",
    ]
    for name, universe, collapsed, tests, cov, eff in rows:
        lines.append(
            f"{name:12} {universe:>8} {collapsed:>9} {tests:>6} "
            f"{100 * cov:>8.1f}% {100 * eff:>9.1f}%"
        )
    write_artifact("atpg.txt", "\n".join(lines))
    for _name, universe, collapsed, _tests, _cov, eff in rows:
        assert collapsed < universe  # collapsing must shrink the list
        assert eff == 1.0  # every fault resolved (no aborts)


def test_atpg_sat_flow(benchmark):
    rows = benchmark.pedantic(lambda: _flow("sat"), rounds=1, iterations=1)
    podem_rows = _flow("podem")
    for sat_row, podem_row in zip(rows, podem_rows):
        # Backends must agree on achievable coverage, fault by fault list.
        assert sat_row[4] == podem_row[4], sat_row[0]


def test_podem_single_fault(benchmark):
    from repro.faults import StuckAtFault
    from repro.testgen import analyze_testability, podem

    circuit = random_circuit(n_inputs=12, n_outputs=20, n_gates=150, seed=77)
    measures = analyze_testability(circuit)
    fault = StuckAtFault(circuit.gate_names[75], 1)

    def run():
        return podem(circuit, fault, testability=measures)

    outcome = benchmark(run)
    assert outcome.status is not None


def test_deductive_fault_sim_pass(benchmark):
    import random as _random

    from repro.sim import deductive_detected

    circuit = random_circuit(n_inputs=12, n_outputs=20, n_gates=150, seed=77)
    rng = _random.Random(5)
    vector = {pi: rng.getrandbits(1) for pi in circuit.inputs}

    detected = benchmark(lambda: deductive_detected(circuit, vector))
    assert detected


def test_atpg_sim_engine_speedup(benchmark):
    """ATPG flow (generate → drop → compact) per fault-simulation engine.

    All engines must emit identical pattern sets and coverage; the
    artifact records where the vectorized engines pay on the full flow
    (dominant cost there is per-vector dropping, a single-pattern
    workload).  Artifact: ``benchmarks/out/atpg_engines.txt``.
    """
    import time

    from repro.circuits import random_circuit as _rc
    from repro.testgen import generate_tests as _gen

    circuit = _rc(n_inputs=12, n_outputs=20, n_gates=150, seed=77)
    timings = {}
    results = {}

    def run_all():
        for engine in ("deductive", "batch", "deductive-numpy", "event"):
            t0 = time.perf_counter()
            results[engine] = _gen(circuit, seed=1, sim_engine=engine)
            timings[engine] = time.perf_counter() - t0
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    reference = results["deductive"]
    for engine, result in results.items():
        assert result.patterns == reference.patterns, engine
        assert (
            result.coverage.first_detection
            == reference.coverage.first_detection
        ), engine
    base = timings["deductive"]
    lines = [
        f"ATPG flow ({circuit.name}) by sim_engine",
        f"{'engine':16} {'time':>8} {'vs deductive':>12}",
    ]
    for engine, t in timings.items():
        lines.append(f"{engine:16} {t * 1e3:>6.0f}ms {base / max(t, 1e-9):>11.2f}x")
    write_artifact("atpg_engines.txt", "\n".join(lines))
