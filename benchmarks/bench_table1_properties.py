"""Table 1 — the qualitative comparison matrix.

Table 1 of the paper is analytic (complexities, guarantees).  This bench
renders it from :data:`repro.diagnosis.APPROACH_PROPERTIES` and validates
its two *checkable* rows empirically on small workloads:

* "valid correction: guaranteed" — every BSAT solution passes the validity
  checker while COV produces at least one invalid solution on the Lemma-2
  witness;
* "time complexity: O(|I| * m)" for BSIM — runtime grows ~linearly in m.
"""

import time

from conftest import write_artifact

from repro.circuits.library import FIG5A_TEST, fig5a
from repro.diagnosis import (
    basic_sat_diagnose,
    basic_sim_diagnose,
    format_table1,
    is_valid_correction,
    sc_diagnose,
)
from repro.experiments import make_workload
from repro.testgen import Test, TestSet


def render_and_check() -> str:
    text = format_table1()

    # empirical spot-check of the guarantee rows
    circuit = fig5a()
    vec, out, val = FIG5A_TEST
    tests = TestSet((Test(vec, out, val),))
    sat = basic_sat_diagnose(circuit, tests, k=1)
    assert all(is_valid_correction(circuit, tests, s) for s in sat.solutions)
    cov = sc_diagnose(circuit, tests, k=1)
    assert any(
        not is_valid_correction(circuit, tests, s) for s in cov.solutions
    )

    # BSIM linear scaling in m (coarse: doubling m must not blow up
    # superlinearly; allow generous noise)
    workload = make_workload("sim1423", p=2, m_max=32, seed=1)
    timings = []
    for m in (8, 16, 32):
        start = time.perf_counter()
        basic_sim_diagnose(workload.faulty, workload.tests.prefix(m))
        timings.append(time.perf_counter() - start)
    lines = [
        text,
        "",
        "empirical spot-checks:",
        "  BSAT solutions all valid, COV produced an invalid cover "
        "(Fig. 5a): OK",
        f"  BSIM runtime vs m (8/16/32 tests): "
        + " / ".join(f"{t*1e3:.1f}ms" for t in timings),
    ]
    return "\n".join(lines)


def test_table1(benchmark):
    text = benchmark.pedantic(render_and_check, rounds=1, iterations=1)
    write_artifact("table1.txt", text)
    print("\n" + text)
