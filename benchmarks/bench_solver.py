"""Substrate bench — the CDCL SAT solver and the persistent-instance path.

Three halves:

* pytest-benchmark micro-benchmarks of the solver on three workload
  classes relevant to the diagnosis instances: circuit-SAT descents
  (decision-heavy, conflict-light — the BSAT profile), pigeonhole
  (conflict-heavy, exercises learning), and incremental re-solving under
  assumptions (the k-loop profile) — each raced arena vs. legacy;
* a standalone end-to-end race (``python bench_solver.py [--smoke]``)
  of the full BSAT session workflow — auto-k probe, complete
  enumeration, corrections query — comparing the pre-overhaul shape
  (legacy object-graph solver, instance rebuilt per query) with the
  master-encoding session path (binary implicit watches, prefix trail
  reuse, chronological insertion, c-free cone-restricted master CNF).
  **Asserts ≥1.5× further end-to-end speedup over the PR-4 ratios**
  (pinned below from the PR-4 ``BENCH_solver.json``) and that the
  per-solution decision/propagation deltas and the per-``extend_k``
  probe decisions are *strictly below* the PR-4 arena baseline — with
  solution sets identical to the legacy rebuilt path;
* a **pool-churn race**: 50 suspect pools derived as master views
  (the IHS / repair-radius / partitioned query shape) versus 50 fresh
  ``build_diagnosis_instance`` rebuilds.  Asserts ≥5× with identical
  per-pool solution sets.

Artifacts: ``benchmarks/out/solver.json`` (per-instance rows including
the per-solution restarts/learned deltas from the enumerator, the probe
decision counts and the pool-churn race); the repo root carries
``BENCH_solver.json`` as the committed rolling baseline which
``compare_baseline.py`` diffs against per CI run.

Run modes::

    PYTHONPATH=../src python bench_solver.py --smoke   # CI: small pinned
    PYTHONPATH=../src python bench_solver.py           # + sim1423-class
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.circuits import random_circuit
from repro.circuits.library import get_circuit
from repro.diagnosis import (
    DiagnosisSession,
    auto_k_sat_diagnose,
    basic_sat_diagnose,
)
from repro.experiments import make_workload
from repro.sat import CNF, LegacySolver, Solver, encode_circuit
from repro.sat.backends import SAT_BACKENDS, unavailable_backends

OUT_DIR = Path(__file__).parent / "out"

#: Minimum end-to-end speedup of the persistent arena path over the
#: legacy rebuilt-instance path (the PR-4 acceptance gate, kept as an
#: absolute floor).
MIN_SPEEDUP = 3.0

#: This PR's gate: the measured speedup must be at least this factor
#: *further* than the PR-4 baseline ratio of the same pinned instance.
MIN_FURTHER_SPEEDUP = 1.5

#: Pool-churn gate: deriving 50 suspect-pool instances as master views
#: must beat 50 pre-overhaul (legacy-backend) CNF rebuilds by at least
#: this factor on the sim1423 leg (full mode).  The smoke circuit is so
#: small that fresh rebuilds are nearly free, so its regression floor is
#: lower.
MIN_POOL_CHURN_SPEEDUP = 5.0
MIN_POOL_CHURN_SPEEDUP_SMOKE = 2.5

#: ``--backend arena-jit`` gate: the compiled kernel must beat the
#: interpreted arena on the sim1423 BSAT workflow (full mode; the
#: smoke instances are too small to amortise anything).  The ratio is
#: published under ``optional_gated_ratios`` — compared against the
#: committed baseline only when both runs had numba, so a numba-less
#: environment skips rather than fails (``--backend arena-jit`` itself
#: exits 0 with a notice when the backend is unavailable).
MIN_JIT_SPEEDUP = 3.0

#: PR-4 arena baselines, pinned from the ``BENCH_solver.json`` PR 4
#: committed (the file itself is regenerated as a rolling baseline, so
#: the PR-4 reference lives here).  ``speedup`` is the legacy/persistent
#: end-to-end ratio; the per-solution numbers are means over the
#: enumerator's ``stats_deltas``.
PR4_BASELINE = {
    "rnd60-p2-a": {
        "speedup": 3.61,
        "decisions_per_solution": 652.2,
        "propagations_per_solution": 1907.3,
    },
    "rnd60-p2-b": {
        "speedup": 3.97,
        "decisions_per_solution": 692.5,
        "propagations_per_solution": 2271.0,
    },
    "sim1423-p2": {
        "speedup": 4.25,
        "decisions_per_solution": 5381.0,
        "propagations_per_solution": 17281.1,
    },
}

#: (name, circuit spec, p errors, m tests, workload seed, k_max).
SMOKE_INSTANCES = [
    ("rnd60-p2-a", ("random", 8, 4, 60, 702), 2, 10, 2, 3),
    ("rnd60-p2-b", ("random", 8, 4, 60, 729), 2, 10, 29, 3),
]

#: The paper-scale leg: sim1423 is the repo's c1355-class circuit
#: (~670 gates after injection).
FULL_EXTRA_INSTANCES = [
    ("sim1423-p2", ("library", "sim1423"), 2, 8, 5, 2),
]


def _build_circuit(spec):
    if spec[0] == "random":
        _, n_in, n_out, n_gates, seed = spec
        return random_circuit(
            n_inputs=n_in, n_outputs=n_out, n_gates=n_gates, seed=seed
        )
    return get_circuit(spec[1])


def _canon(solutions):
    return sorted(tuple(sorted(s)) for s in solutions)


def bsat_workflow_legacy(workload, k_max):
    """The pre-overhaul query shape: legacy backend, every query builds
    its own instance (what ``session.instance()`` did before PR 4)."""
    times = {}
    t0 = time.perf_counter()
    autok = auto_k_sat_diagnose(
        workload.faulty, workload.tests, k_max=k_max, solver_backend="legacy"
    )
    times["autok"] = time.perf_counter() - t0
    k = autok.extras.get("k_found") or k_max
    t0 = time.perf_counter()
    enum = basic_sat_diagnose(
        workload.faulty, workload.tests, k=k, solver_backend="legacy"
    )
    times["enumerate"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    corr = basic_sat_diagnose(
        workload.faulty,
        workload.tests,
        k=k,
        collect_corrections=True,
        solver_backend="legacy",
    )
    times["corrections"] = time.perf_counter() - t0
    times["total"] = sum(times.values())
    return times, k, _canon(enum.solutions), corr


def bsat_workflow_persistent(workload, k_max, backend=None):
    """The overhauled shape: arena backend (or ``backend``), one master
    session encoding serving the auto-k sweep, the enumeration and the
    corrections query through assumptions and activation scopes."""
    times = {}
    session = DiagnosisSession(
        workload.faulty, workload.tests, solver_backend=backend
    )
    t0 = time.perf_counter()
    autok = auto_k_sat_diagnose(
        workload.faulty, workload.tests, k_max=k_max, session=session
    )
    times["autok"] = time.perf_counter() - t0
    k = autok.extras.get("k_found") or k_max
    t0 = time.perf_counter()
    enum = basic_sat_diagnose(
        workload.faulty, workload.tests, k=k, session=session
    )
    times["enumerate"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    corr = basic_sat_diagnose(
        workload.faulty,
        workload.tests,
        k=k,
        collect_corrections=True,
        session=session,
    )
    times["corrections"] = time.perf_counter() - t0
    times["total"] = sum(times.values())
    return times, k, _canon(enum.solutions), corr, enum


def probe_stats(workload, k_max):
    """Per-``extend_k`` probe decision counts on a fresh master view.

    Replicates the auto-k bound sweep (``solve`` under each bound
    assumption, no enumeration) and records what each probe cost — the
    quantity the acceptance gate pins strictly below the PR-4 arena
    full-descent baseline.
    """
    session = DiagnosisSession(workload.faulty, workload.tests)
    instance = session.instance(k_max)
    solver = instance.solver
    probes = []
    for k in range(1, k_max + 1):
        before = dict(solver.stats)
        solver.solve(
            assumptions=instance.base_assumptions()
            + instance.bound_assumptions(k)
        )
        probes.append(
            {
                key: solver.stats[key] - before[key]
                for key in ("decisions", "propagations", "conflicts")
            }
        )
    return probes


def pool_churn_race(workload, n_pools, pool_size, k, seed):
    """Derive ``n_pools`` suspect pools as master views vs per-pool
    instance rebuilds (the IHS / repair / partitioned query shape).

    Half the pools contain the injected error sites (an IHS loop's pools
    concentrate on suspected gates, so most pools admit solutions and
    the race exercises enumeration, not just UNSAT probes).  Three legs:
    ``legacy`` fresh rebuilds (the pre-overhaul shape — the gated
    ratio), ``fresh`` arena rebuilds (isolates the master-view gain from
    the backend gain), and the master ``views``.  All three must report
    identical per-pool solution sets.
    """
    rng = random.Random(seed)
    gates = list(workload.faulty.gate_names)
    pool_size = min(pool_size, len(gates))
    sites = [g for g in workload.sites if g in set(gates)]
    pools = []
    for i in range(n_pools):
        pool = set(rng.sample(gates, pool_size))
        if i % 2 == 0:
            pool.update(sites)
        pools.append(sorted(pool))

    def run_leg(session=None, backend=None):
        sols = []
        t0 = time.perf_counter()
        for pool in pools:
            res = basic_sat_diagnose(
                workload.faulty,
                workload.tests,
                k=k,
                suspects=pool,
                session=session,
                solver_backend=backend,
            )
            sols.append(_canon(res.solutions))
        return time.perf_counter() - t0, sols

    t_legacy, legacy_sols = run_leg(backend="legacy")
    t_fresh, fresh_sols = run_leg()
    # Master built lazily inside the timed region — the views leg pays
    # its one-time encoding cost.
    session = DiagnosisSession(workload.faulty, workload.tests)
    t_views, view_sols = run_leg(session=session)

    return {
        "n_pools": n_pools,
        "pool_size": pool_size,
        "k": k,
        "t_legacy": t_legacy,
        "t_fresh": t_fresh,
        "t_views": t_views,
        "speedup": t_legacy / t_views if t_views else float("inf"),
        "speedup_vs_arena_fresh": (
            t_fresh / t_views if t_views else float("inf")
        ),
        "identical": legacy_sols == fresh_sols == view_sols,
        "n_solutions": sum(len(s) for s in view_sols),
    }


def micro_descent():
    """One satisfiable circuit-SAT descent per backend (BSAT profile)."""
    circuit = get_circuit("sim1423")
    cnf = CNF()
    var_of = encode_circuit(cnf, circuit)
    rng = random.Random(1)
    assumptions = [
        var_of[pi] if rng.getrandbits(1) else -var_of[pi]
        for pi in circuit.inputs
    ]
    rows = {}
    for label, cls in (("arena", Solver), ("legacy", LegacySolver)):
        solver = cls()
        t0 = time.perf_counter()
        cnf.to_solver(solver)
        t_load = time.perf_counter() - t0
        t0 = time.perf_counter()
        assert solver.solve(assumptions) is True
        rows[label] = {
            "t_load": t_load,
            "t_solve": time.perf_counter() - t0,
            "propagations": solver.stats["propagations"],
        }
    return rows


def _stats_means(solution_stats):
    n = len(solution_stats)
    if not n:
        return {}
    return {
        "decisions_per_solution": sum(
            d["decisions"] for d in solution_stats
        )
        / n,
        "propagations_per_solution": sum(
            d["propagations"] for d in solution_stats
        )
        / n,
    }


def run(smoke: bool, backend: str | None = None) -> dict:
    instances = list(SMOKE_INSTANCES)
    if not smoke:
        instances += FULL_EXTRA_INSTANCES
    report: dict = {
        "smoke": smoke,
        "backend": backend or "arena",
        "min_speedup": MIN_SPEEDUP,
        "min_further_speedup": MIN_FURTHER_SPEEDUP,
        "min_pool_churn_speedup": MIN_POOL_CHURN_SPEEDUP,
        "min_jit_speedup": MIN_JIT_SPEEDUP,
        "pr4_baseline": PR4_BASELINE,
        "micro_descent": micro_descent(),
        "instances": [],
        "optional_gated_ratios": {},
    }
    failures: list[str] = []
    for name, spec, p, m, seed, k_max in instances:
        circuit = _build_circuit(spec)
        workload = make_workload(
            circuit, p=p, m_max=m, seed=seed, allow_fewer=True
        )
        legacy_times, k_l, sols_l, _ = bsat_workflow_legacy(workload, k_max)
        new_times, k_n, sols_n, corr, enum = bsat_workflow_persistent(
            workload, k_max
        )
        probes = probe_stats(workload, k_max)
        speedup = legacy_times["total"] / new_times["total"]
        solution_stats = enum.extras.get("solution_stats", [])
        means = _stats_means(solution_stats)
        entry = {
            "instance": name,
            "p": p,
            "m": len(workload.tests),
            "gates": workload.faulty.num_gates,
            "k": k_n,
            "n_solutions": len(sols_n),
            "legacy": legacy_times,
            "persistent": new_times,
            "speedup": speedup,
            # per-solution enumerator cost and per-extend_k probe cost
            # (the stats_deltas acceptance gates)
            "solution_stats": solution_stats,
            "stats_means": means,
            "probe_stats": probes,
            "corrections_cached": bool(corr.extras.get("cached")),
        }
        if backend is not None and backend != "arena":
            # The compiled leg: the same master-session workflow through
            # the selected backend, raced against the interpreted arena
            # leg just measured.  Solutions must stay bit-identical.
            jit_times, k_j, sols_j, _, _ = bsat_workflow_persistent(
                workload, k_max, backend=backend
            )
            jit_ratio = jit_times["total"] and (
                new_times["total"] / jit_times["total"]
            )
            entry["compiled"] = jit_times
            entry["compiled_speedup"] = jit_ratio
            report["optional_gated_ratios"][f"jit:{name}"] = jit_ratio
            if k_j != k_n or sols_j != sols_n:
                failures.append(
                    f"{name}: {backend} workflow diverges from arena "
                    f"(k {k_j} vs {k_n})"
                )
            if name == "sim1423-p2" and jit_ratio < MIN_JIT_SPEEDUP:
                failures.append(
                    f"{name}: {backend} speedup {jit_ratio:.2f}x over "
                    f"arena < {MIN_JIT_SPEEDUP:.1f}x (arena "
                    f"{new_times['total']:.3f}s, {backend} "
                    f"{jit_times['total']:.3f}s)"
                )
        report["instances"].append(entry)
        if k_l != k_n:
            failures.append(f"{name}: k diverged ({k_l} vs {k_n})")
        if sols_l != sols_n:
            failures.append(
                f"{name}: persistent path solutions differ from rebuilt path"
            )
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"{name}: end-to-end speedup {speedup:.2f}x < "
                f"{MIN_SPEEDUP:.1f}x (legacy {legacy_times['total']:.3f}s, "
                f"persistent {new_times['total']:.3f}s)"
            )
        baseline = PR4_BASELINE.get(name)
        if baseline is not None:
            needed = MIN_FURTHER_SPEEDUP * baseline["speedup"]
            if speedup < needed:
                failures.append(
                    f"{name}: speedup {speedup:.2f}x < {needed:.2f}x "
                    f"(= {MIN_FURTHER_SPEEDUP}x the PR-4 baseline "
                    f"{baseline['speedup']:.2f}x)"
                )
            for key in (
                "decisions_per_solution",
                "propagations_per_solution",
            ):
                if means and means[key] >= baseline[key]:
                    failures.append(
                        f"{name}: {key} {means[key]:.1f} not strictly "
                        f"below the PR-4 baseline {baseline[key]:.1f}"
                    )
            # A PR-4 extend_k probe cost at least one full descent; the
            # per-solution decision mean is that descent's yardstick.
            for idx, probe in enumerate(probes):
                if probe["decisions"] >= baseline["decisions_per_solution"]:
                    failures.append(
                        f"{name}: probe k={idx + 1} decisions "
                        f"{probe['decisions']} not strictly below the "
                        f"PR-4 per-descent baseline "
                        f"{baseline['decisions_per_solution']:.1f}"
                    )

    # Pool churn, the IHS-style 50-pools shape: the rnd60 leg always
    # runs (so every artifact — including CI's smoke one — carries a
    # churn ratio the baseline comparison can check), and full mode adds
    # the gated sim1423 leg.
    churn_legs = [
        (
            "rnd60-p2-a",
            make_workload(
                _build_circuit(SMOKE_INSTANCES[0][1]),
                p=2, m_max=10, seed=2, allow_fewer=True,
            ),
            dict(n_pools=50, pool_size=8, k=2, seed=11),
            MIN_POOL_CHURN_SPEEDUP_SMOKE,
        ),
    ]
    if not smoke:
        churn_legs.append(
            (
                "sim1423-p2",
                make_workload(
                    get_circuit("sim1423"),
                    p=2, m_max=8, seed=5, allow_fewer=True,
                ),
                dict(n_pools=50, pool_size=12, k=2, seed=11),
                MIN_POOL_CHURN_SPEEDUP,
            )
        )
    report["pool_churns"] = []
    for name, churn_workload, params, gate in churn_legs:
        churn = pool_churn_race(churn_workload, **params)
        churn["instance"] = name
        churn["gate"] = gate
        report["pool_churns"].append(churn)
        if not churn["identical"]:
            failures.append(
                f"pool churn {name}: arena/legacy/master-view solution "
                "sets differ"
            )
        if churn["speedup"] < gate:
            failures.append(
                f"pool churn {name}: speedup {churn['speedup']:.2f}x < "
                f"{gate:.1f}x (legacy {churn['t_legacy']:.3f}s, "
                f"views {churn['t_views']:.3f}s)"
            )
    report["failures"] = failures
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small pinned instances only (the CI configuration)",
    )
    parser.add_argument(
        "--out", default=str(OUT_DIR / "solver.json"),
        help="JSON artifact path",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="also race the BSAT workflow through this SAT backend "
        "(e.g. arena-jit); skips cleanly when the backend's optional "
        "dependency is unavailable",
    )
    args = parser.parse_args(argv)
    if args.backend is not None and args.backend not in SAT_BACKENDS:
        reason = unavailable_backends().get(args.backend)
        if reason is not None:
            print(
                f"skipping --backend {args.backend} legs: {reason}"
            )
            return 0
        print(
            f"unknown backend {args.backend!r}; registered: "
            f"{sorted(SAT_BACKENDS)}",
            file=sys.stderr,
        )
        return 2
    report = run(smoke=args.smoke, backend=args.backend)
    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {out_path}")
    micro = report["micro_descent"]
    print(
        f"micro descent (sim1423): arena "
        f"{micro['arena']['t_solve'] * 1e3:.1f}ms / legacy "
        f"{micro['legacy']['t_solve'] * 1e3:.1f}ms"
    )
    for entry in report["instances"]:
        baseline = PR4_BASELINE.get(entry["instance"], {})
        print(
            f"{entry['instance']:<12} p={entry['p']} m={entry['m']} "
            f"gates={entry['gates']:>4} k={entry['k']} "
            f"sols={entry['n_solutions']:>3}  "
            f"legacy {entry['legacy']['total']:.3f}s  "
            f"persistent {entry['persistent']['total']:.3f}s  "
            f"speedup {entry['speedup']:.1f}x"
            + (
                f" (PR-4: {baseline['speedup']:.2f}x)"
                if baseline
                else ""
            )
        )
        if "compiled_speedup" in entry:
            print(
                f"{'':<12} {report['backend']} "
                f"{entry['compiled']['total']:.3f}s  "
                f"speedup over arena {entry['compiled_speedup']:.1f}x"
            )
    for churn in report["pool_churns"]:
        print(
            f"pool churn ({churn['instance']}, {churn['n_pools']} pools "
            f"of {churn['pool_size']}): legacy {churn['t_legacy']:.3f}s  "
            f"arena fresh {churn['t_fresh']:.3f}s  views "
            f"{churn['t_views']:.3f}s  speedup {churn['speedup']:.1f}x "
            f"(gate {churn['gate']:.1f}x)"
        )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"all BSAT workflow races >= {MIN_FURTHER_SPEEDUP}x the PR-4 "
        f"ratios, pool churn >= {MIN_POOL_CHURN_SPEEDUP:.0f}x, identical "
        "solution sets"
    )
    return 0


def test_bsat_enumeration_speedup_smoke():
    """Pytest entry point mirroring ``--smoke`` (bench suite style)."""
    report = run(smoke=True)
    assert not report["failures"], report["failures"]


# ----------------------------------------------------------------------
# pytest-benchmark micro-benchmarks (arena vs legacy)
# ----------------------------------------------------------------------
def build_circuit_instance():
    circuit = get_circuit("sim1423")
    cnf = CNF()
    var_of = encode_circuit(cnf, circuit)
    rng = random.Random(1)
    assumptions = [
        var_of[pi] if rng.getrandbits(1) else -var_of[pi]
        for pi in circuit.inputs
    ]
    return cnf, assumptions


def test_circuit_sat_descent(benchmark):
    cnf, assumptions = build_circuit_instance()

    def solve_fresh():
        solver = cnf.to_solver()
        assert solver.solve(assumptions) is True
        return solver.stats["propagations"]

    props = benchmark(solve_fresh)
    assert props > 0


def test_circuit_sat_descent_legacy(benchmark):
    cnf, assumptions = build_circuit_instance()

    def solve_fresh():
        solver = cnf.to_solver(backend="legacy")
        assert solver.solve(assumptions) is True
        return solver.stats["propagations"]

    props = benchmark(solve_fresh)
    assert props > 0


def _php(solver):
    var = {}
    n_p, n_h = 7, 6
    for p in range(n_p):
        for h in range(n_h):
            var[p, h] = solver.new_var()
    for p in range(n_p):
        solver.add_clause([var[p, h] for h in range(n_h)])
    for h in range(n_h):
        for p1 in range(n_p):
            for p2 in range(p1 + 1, n_p):
                solver.add_clause([-var[p1, h], -var[p2, h]])
    assert solver.solve() is False
    return solver.stats["conflicts"]


def test_pigeonhole_unsat(benchmark):
    conflicts = benchmark(lambda: _php(Solver()))
    assert conflicts > 0


def test_pigeonhole_unsat_legacy(benchmark):
    conflicts = benchmark(lambda: _php(LegacySolver()))
    assert conflicts > 0


def test_incremental_assumption_loop(benchmark):
    cnf, _ = build_circuit_instance()
    solver = cnf.to_solver()
    circuit = get_circuit("sim1423")
    var_of = {  # rebuild the name->var map from the CNF names
        name: var
        for var in range(1, cnf.num_vars + 1)
        if (name := cnf.name_of(var)) is not None
    }
    rng = random.Random(2)
    pi_vars = [var_of[pi] for pi in circuit.inputs]

    def incremental_loop():
        total = 0
        for _ in range(10):
            assumptions = [
                v if rng.getrandbits(1) else -v for v in pi_vars
            ]
            assert solver.solve(assumptions) is True
            total += solver.stats["decisions"]
        return total

    benchmark.pedantic(incremental_loop, rounds=1, iterations=1)


if __name__ == "__main__":
    sys.exit(main())
