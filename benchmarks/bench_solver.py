"""Substrate bench — the CDCL SAT solver.

Micro-benchmarks of the solver on three workload classes relevant to the
diagnosis instances: circuit-SAT descents (decision-heavy, conflict-light
— the BSAT profile), pigeonhole (conflict-heavy, exercises learning), and
incremental re-solving under assumptions (the k-loop profile).
"""

import random

from repro.circuits import library
from repro.sat import CNF, Solver, encode_circuit


def build_circuit_instance():
    circuit = library.sim1423()
    cnf = CNF()
    var_of = encode_circuit(cnf, circuit)
    rng = random.Random(1)
    assumptions = [
        var_of[pi] if rng.getrandbits(1) else -var_of[pi]
        for pi in circuit.inputs
    ]
    return cnf, assumptions


def test_circuit_sat_descent(benchmark):
    cnf, assumptions = build_circuit_instance()

    def solve_fresh():
        solver = cnf.to_solver()
        assert solver.solve(assumptions) is True
        return solver.stats["propagations"]

    props = benchmark(solve_fresh)
    assert props > 0


def test_pigeonhole_unsat(benchmark):
    def php():
        solver = Solver()
        var = {}
        n_p, n_h = 7, 6
        for p in range(n_p):
            for h in range(n_h):
                var[p, h] = solver.new_var()
        for p in range(n_p):
            solver.add_clause([var[p, h] for h in range(n_h)])
        for h in range(n_h):
            for p1 in range(n_p):
                for p2 in range(p1 + 1, n_p):
                    solver.add_clause([-var[p1, h], -var[p2, h]])
        assert solver.solve() is False
        return solver.stats["conflicts"]

    conflicts = benchmark(php)
    assert conflicts > 0


def test_incremental_assumption_loop(benchmark):
    cnf, _ = build_circuit_instance()
    solver = cnf.to_solver()
    circuit = library.sim1423()
    var_of = {  # rebuild the name->var map from the CNF names
        name: var
        for var in range(1, cnf.num_vars + 1)
        if (name := cnf.name_of(var)) is not None
    }
    rng = random.Random(2)
    pi_vars = [var_of[pi] for pi in circuit.inputs]

    def incremental_loop():
        total = 0
        for _ in range(10):
            assumptions = [
                v if rng.getrandbits(1) else -v for v in pi_vars
            ]
            assert solver.solve(assumptions) is True
            total += solver.stats["decisions"]
        return total

    benchmark.pedantic(incremental_loop, rounds=1, iterations=1)
