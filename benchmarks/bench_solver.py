"""Substrate bench — the CDCL SAT solver and the persistent-instance path.

Two halves:

* pytest-benchmark micro-benchmarks of the solver on three workload
  classes relevant to the diagnosis instances: circuit-SAT descents
  (decision-heavy, conflict-light — the BSAT profile), pigeonhole
  (conflict-heavy, exercises learning), and incremental re-solving under
  assumptions (the k-loop profile) — each raced arena vs. legacy;
* a standalone end-to-end race (``python bench_solver.py [--smoke]``)
  of the full BSAT session workflow — auto-k probe, complete
  enumeration, corrections query — comparing the pre-overhaul shape
  (legacy object-graph solver, instance rebuilt per query) with the
  arena backend on one persistent session instance.  **Asserts the ≥3×
  speedup** the PR-4 acceptance demands on the pinned multi-fault
  workloads and that both paths return identical solution sets.

Artifacts: ``benchmarks/out/solver.json`` (per-instance rows including
the per-solution restarts/learned deltas from the enumerator); the repo
root carries ``BENCH_solver.json`` as the committed baseline so future
PRs have a perf trajectory to compare against.

Run modes::

    PYTHONPATH=../src python bench_solver.py --smoke   # CI: small pinned
    PYTHONPATH=../src python bench_solver.py           # + sim1423-class
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.circuits import random_circuit
from repro.circuits.library import get_circuit
from repro.diagnosis import (
    DiagnosisSession,
    auto_k_sat_diagnose,
    basic_sat_diagnose,
)
from repro.experiments import make_workload
from repro.sat import CNF, LegacySolver, Solver, encode_circuit

OUT_DIR = Path(__file__).parent / "out"

#: Minimum end-to-end speedup of the persistent arena path over the
#: legacy rebuilt-instance path (the PR acceptance gate).
MIN_SPEEDUP = 3.0

#: (name, circuit spec, p errors, m tests, workload seed, k_max).
SMOKE_INSTANCES = [
    ("rnd60-p2-a", ("random", 8, 4, 60, 702), 2, 10, 2, 3),
    ("rnd60-p2-b", ("random", 8, 4, 60, 729), 2, 10, 29, 3),
]

#: The paper-scale leg: sim1423 is the repo's c1355-class circuit
#: (~670 gates after injection).
FULL_EXTRA_INSTANCES = [
    ("sim1423-p2", ("library", "sim1423"), 2, 8, 5, 2),
]


def _build_circuit(spec):
    if spec[0] == "random":
        _, n_in, n_out, n_gates, seed = spec
        return random_circuit(
            n_inputs=n_in, n_outputs=n_out, n_gates=n_gates, seed=seed
        )
    return get_circuit(spec[1])


def _canon(solutions):
    return sorted(tuple(sorted(s)) for s in solutions)


def bsat_workflow_legacy(workload, k_max):
    """The pre-overhaul query shape: legacy backend, every query builds
    its own instance (what ``session.instance()`` did before PR 4)."""
    times = {}
    t0 = time.perf_counter()
    autok = auto_k_sat_diagnose(
        workload.faulty, workload.tests, k_max=k_max, solver_backend="legacy"
    )
    times["autok"] = time.perf_counter() - t0
    k = autok.extras.get("k_found") or k_max
    t0 = time.perf_counter()
    enum = basic_sat_diagnose(
        workload.faulty, workload.tests, k=k, solver_backend="legacy"
    )
    times["enumerate"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    corr = basic_sat_diagnose(
        workload.faulty,
        workload.tests,
        k=k,
        collect_corrections=True,
        solver_backend="legacy",
    )
    times["corrections"] = time.perf_counter() - t0
    times["total"] = sum(times.values())
    return times, k, _canon(enum.solutions), corr


def bsat_workflow_persistent(workload, k_max):
    """The overhauled shape: arena backend, one persistent session
    instance serving the auto-k sweep, the enumeration and the
    corrections query through assumptions and activation scopes."""
    times = {}
    session = DiagnosisSession(workload.faulty, workload.tests)
    t0 = time.perf_counter()
    autok = auto_k_sat_diagnose(
        workload.faulty, workload.tests, k_max=k_max, session=session
    )
    times["autok"] = time.perf_counter() - t0
    k = autok.extras.get("k_found") or k_max
    t0 = time.perf_counter()
    enum = basic_sat_diagnose(
        workload.faulty, workload.tests, k=k, session=session
    )
    times["enumerate"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    corr = basic_sat_diagnose(
        workload.faulty,
        workload.tests,
        k=k,
        collect_corrections=True,
        session=session,
    )
    times["corrections"] = time.perf_counter() - t0
    times["total"] = sum(times.values())
    return times, k, _canon(enum.solutions), corr, enum


def micro_descent():
    """One satisfiable circuit-SAT descent per backend (BSAT profile)."""
    circuit = get_circuit("sim1423")
    cnf = CNF()
    var_of = encode_circuit(cnf, circuit)
    rng = random.Random(1)
    assumptions = [
        var_of[pi] if rng.getrandbits(1) else -var_of[pi]
        for pi in circuit.inputs
    ]
    rows = {}
    for label, cls in (("arena", Solver), ("legacy", LegacySolver)):
        solver = cls()
        t0 = time.perf_counter()
        cnf.to_solver(solver)
        t_load = time.perf_counter() - t0
        t0 = time.perf_counter()
        assert solver.solve(assumptions) is True
        rows[label] = {
            "t_load": t_load,
            "t_solve": time.perf_counter() - t0,
            "propagations": solver.stats["propagations"],
        }
    return rows


def run(smoke: bool) -> dict:
    instances = list(SMOKE_INSTANCES)
    if not smoke:
        instances += FULL_EXTRA_INSTANCES
    report: dict = {
        "smoke": smoke,
        "min_speedup": MIN_SPEEDUP,
        "micro_descent": micro_descent(),
        "instances": [],
    }
    failures: list[str] = []
    for name, spec, p, m, seed, k_max in instances:
        circuit = _build_circuit(spec)
        workload = make_workload(
            circuit, p=p, m_max=m, seed=seed, allow_fewer=True
        )
        legacy_times, k_l, sols_l, _ = bsat_workflow_legacy(workload, k_max)
        new_times, k_n, sols_n, corr, enum = bsat_workflow_persistent(
            workload, k_max
        )
        speedup = legacy_times["total"] / new_times["total"]
        entry = {
            "instance": name,
            "p": p,
            "m": len(workload.tests),
            "gates": workload.faulty.num_gates,
            "k": k_n,
            "n_solutions": len(sols_n),
            "legacy": legacy_times,
            "persistent": new_times,
            "speedup": speedup,
            # per-solution enumerator cost (satellite: restarts/learned
            # deltas per enumerated solution in the artifact)
            "solution_stats": enum.extras.get("solution_stats", []),
            "corrections_cached": bool(corr.extras.get("cached")),
        }
        report["instances"].append(entry)
        if k_l != k_n:
            failures.append(f"{name}: k diverged ({k_l} vs {k_n})")
        if sols_l != sols_n:
            failures.append(
                f"{name}: persistent path solutions differ from rebuilt path"
            )
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"{name}: end-to-end speedup {speedup:.2f}x < "
                f"{MIN_SPEEDUP:.1f}x (legacy {legacy_times['total']:.3f}s, "
                f"persistent {new_times['total']:.3f}s)"
            )
    report["failures"] = failures
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small pinned instances only (the CI configuration)",
    )
    parser.add_argument(
        "--out", default=str(OUT_DIR / "solver.json"),
        help="JSON artifact path",
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    out_path = Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {out_path}")
    micro = report["micro_descent"]
    print(
        f"micro descent (sim1423): arena "
        f"{micro['arena']['t_solve'] * 1e3:.1f}ms / legacy "
        f"{micro['legacy']['t_solve'] * 1e3:.1f}ms"
    )
    for entry in report["instances"]:
        print(
            f"{entry['instance']:<12} p={entry['p']} m={entry['m']} "
            f"gates={entry['gates']:>4} k={entry['k']} "
            f"sols={entry['n_solutions']:>3}  "
            f"legacy {entry['legacy']['total']:.3f}s  "
            f"persistent {entry['persistent']['total']:.3f}s  "
            f"speedup {entry['speedup']:.1f}x"
        )
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"all BSAT workflow races >= {MIN_SPEEDUP:.0f}x with identical "
        "solution sets"
    )
    return 0


def test_bsat_enumeration_speedup_smoke():
    """Pytest entry point mirroring ``--smoke`` (bench suite style)."""
    report = run(smoke=True)
    assert not report["failures"], report["failures"]


# ----------------------------------------------------------------------
# pytest-benchmark micro-benchmarks (arena vs legacy)
# ----------------------------------------------------------------------
def build_circuit_instance():
    circuit = get_circuit("sim1423")
    cnf = CNF()
    var_of = encode_circuit(cnf, circuit)
    rng = random.Random(1)
    assumptions = [
        var_of[pi] if rng.getrandbits(1) else -var_of[pi]
        for pi in circuit.inputs
    ]
    return cnf, assumptions


def test_circuit_sat_descent(benchmark):
    cnf, assumptions = build_circuit_instance()

    def solve_fresh():
        solver = cnf.to_solver()
        assert solver.solve(assumptions) is True
        return solver.stats["propagations"]

    props = benchmark(solve_fresh)
    assert props > 0


def test_circuit_sat_descent_legacy(benchmark):
    cnf, assumptions = build_circuit_instance()

    def solve_fresh():
        solver = cnf.to_solver(backend="legacy")
        assert solver.solve(assumptions) is True
        return solver.stats["propagations"]

    props = benchmark(solve_fresh)
    assert props > 0


def _php(solver):
    var = {}
    n_p, n_h = 7, 6
    for p in range(n_p):
        for h in range(n_h):
            var[p, h] = solver.new_var()
    for p in range(n_p):
        solver.add_clause([var[p, h] for h in range(n_h)])
    for h in range(n_h):
        for p1 in range(n_p):
            for p2 in range(p1 + 1, n_p):
                solver.add_clause([-var[p1, h], -var[p2, h]])
    assert solver.solve() is False
    return solver.stats["conflicts"]


def test_pigeonhole_unsat(benchmark):
    conflicts = benchmark(lambda: _php(Solver()))
    assert conflicts > 0


def test_pigeonhole_unsat_legacy(benchmark):
    conflicts = benchmark(lambda: _php(LegacySolver()))
    assert conflicts > 0


def test_incremental_assumption_loop(benchmark):
    cnf, _ = build_circuit_instance()
    solver = cnf.to_solver()
    circuit = get_circuit("sim1423")
    var_of = {  # rebuild the name->var map from the CNF names
        name: var
        for var in range(1, cnf.num_vars + 1)
        if (name := cnf.name_of(var)) is not None
    }
    rng = random.Random(2)
    pi_vars = [var_of[pi] for pi in circuit.inputs]

    def incremental_loop():
        total = 0
        for _ in range(10):
            assumptions = [
                v if rng.getrandbits(1) else -v for v in pi_vars
            ]
            assert solver.solve(assumptions) is True
            total += solver.stats["decisions"]
        return total

    benchmark.pedantic(incremental_loop, rounds=1, iterations=1)


if __name__ == "__main__":
    sys.exit(main())
