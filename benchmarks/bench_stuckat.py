"""Extension bench — production-test stuck-at diagnosis throughput.

Times the serial-fault / parallel-pattern fault-dictionary diagnosis on
the sim1423 stand-in: all ~1 500 candidate faults against a 64-pattern
tester log.  Included because the paper motivates diagnosis "after failing
a post-production test"; this quantifies what the simulation substrate
delivers for that use case.
"""

import random

from conftest import write_artifact

from repro.circuits import library
from repro.diagnosis import diagnose_stuck_at
from repro.faults import StuckAtFault, apply_error
from repro.sim import output_values


def setup_dut():
    design = library.sim1423()
    rng = random.Random(7)
    patterns = [
        {pi: rng.getrandbits(1) for pi in design.inputs} for _ in range(64)
    ]
    defect = None
    for gate in design.gates[100:]:
        candidate = StuckAtFault(gate.name, 1)
        dut = apply_error(design, candidate)
        observed = [output_values(dut, p) for p in patterns]
        if any(
            o != output_values(design, p)
            for p, o in zip(patterns, observed)
        ):
            defect = candidate
            break
    assert defect is not None
    return design, patterns, observed, defect


def test_stuckat_dictionary(benchmark):
    design, patterns, observed, defect = setup_dut()

    def run():
        return diagnose_stuck_at(design, patterns, observed)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert frozenset({defect.signal}) in set(result.solutions)
    text = (
        f"stuck-at diagnosis on {design.name}: "
        f"{result.extras['n_faults']} faults x {len(patterns)} patterns "
        f"in {result.t_all:.2f}s; "
        f"{len(result.solutions)} exact candidate sites "
        f"(defect {defect.describe()} found)"
    )
    write_artifact("bench_stuckat.txt", text)
    print("\n" + text)
