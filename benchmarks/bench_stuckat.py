"""Extension bench — production-test stuck-at diagnosis throughput.

Two measurements on the paper's post-production-test motivation:

* **Fault-dictionary build, serial vs batch** — the headline workload of
  the fault-parallel engine (:mod:`repro.sim.batchfault`): a ~600-gate
  circuit, the full ~1 400-fault stuck-at universe, 256 tester patterns.
  The serial path simulates one fault per netlist pass; the batch path
  stacks every fault along a numpy batch axis and sweeps once.  The bench
  asserts the dictionaries are bit-identical and records the speedup
  (required: >= 10x).
* **Per-device diagnosis** on the sim1423 stand-in: all ~1 500 candidate
  faults against a 64-pattern tester log, via the default (batch) engine.

Artifacts: ``benchmarks/out/bench_stuckat.txt``.
"""

import random
import time

from conftest import write_artifact

from repro.circuits import library, random_circuit
from repro.diagnosis import FaultDictionary, diagnose_stuck_at
from repro.diagnosis.stuckat import full_fault_list
from repro.faults import StuckAtFault, apply_error
from repro.sim import output_values


def setup_dictionary_workload():
    """The ISSUE workload: ~600 gates, full fault universe, 256 patterns."""
    circuit = random_circuit(
        n_inputs=91, n_outputs=79, n_gates=600, seed=1423, name="dict600"
    )
    rng = random.Random(7)
    patterns = [
        {pi: rng.getrandbits(1) for pi in circuit.inputs} for _ in range(256)
    ]
    return circuit, patterns, full_fault_list(circuit)


def test_fault_dictionary_batch_vs_serial():
    circuit, patterns, faults = setup_dictionary_workload()

    t_batch = float("inf")
    for _ in range(3):  # min-of-3: the build is noise-sensitive at ~tens of ms
        t0 = time.perf_counter()
        fd_batch = FaultDictionary(circuit, patterns, faults, engine="batch")
        t_batch = min(t_batch, time.perf_counter() - t0)

    t0 = time.perf_counter()
    fd_serial = FaultDictionary(circuit, patterns, faults, engine="serial")
    t_serial = time.perf_counter() - t0
    speedup = t_serial / max(t_batch, 1e-9)

    # Bit-identical signatures against the scalar oracle.
    assert fd_batch.signatures() == fd_serial.signatures()
    text = "\n".join(
        [
            f"fault-dictionary build on {circuit.name}: "
            f"{circuit.num_gates} gates, {len(faults)} faults, "
            f"{len(patterns)} patterns",
            f"serial (one pass per fault): {t_serial:.3f}s",
            f"batch (fault-parallel numpy): {t_batch:.3f}s",
            f"speedup: {speedup:.1f}x  (signatures bit-identical)",
        ]
    )
    write_artifact("bench_stuckat_dictionary.txt", text)
    print("\n" + text)
    assert speedup >= 10.0, f"batch engine only {speedup:.1f}x over serial"


def setup_dut():
    design = library.sim1423()
    rng = random.Random(7)
    patterns = [
        {pi: rng.getrandbits(1) for pi in design.inputs} for _ in range(64)
    ]
    defect = None
    for gate in design.gates[100:]:
        candidate = StuckAtFault(gate.name, 1)
        dut = apply_error(design, candidate)
        observed = [output_values(dut, p) for p in patterns]
        if any(
            o != output_values(design, p)
            for p, o in zip(patterns, observed)
        ):
            defect = candidate
            break
    assert defect is not None
    return design, patterns, observed, defect


def test_stuckat_dictionary(benchmark):
    design, patterns, observed, defect = setup_dut()

    def run():
        return diagnose_stuck_at(design, patterns, observed)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert frozenset({defect.signal}) in set(result.solutions)
    text = (
        f"stuck-at diagnosis on {design.name}: "
        f"{result.extras['n_faults']} faults x {len(patterns)} patterns "
        f"in {result.t_all:.2f}s via {result.extras['engine']} engine; "
        f"{len(result.solutions)} exact candidate sites "
        f"(defect {defect.describe()} found)"
    )
    write_artifact("bench_stuckat.txt", text)
    print("\n" + text)
