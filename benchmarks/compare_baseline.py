"""Machine-check the perf trajectory: diff a bench artifact against
the committed baseline.

``bench_solver.py`` writes ``out/solver.json`` per run; the repo root
carries ``BENCH_solver.json``, the artifact committed by the last PR
that touched the solver stack.  This script compares every *gated
ratio* of the two — the end-to-end legacy/persistent speedup of each
pinned workflow instance, the pool-churn speedup, and any ratios an
artifact publishes under its own ``gated_ratios`` block (how
``bench_serve.py`` exposes its service-vs-baseline throughput and
latency ratios, gated against ``BENCH_serve.json``, and how
``bench_faultsim_engines.py`` exposes its engine speedups, gated
against ``BENCH_faultsim.json``) — and fails when any current ratio
has regressed by more than ``--tolerance`` (default 25%) relative to
the baseline.  Ratios are machine-independent (the slow leg is the
in-run control), so the comparison is meaningful across CI runners.

An artifact may additionally publish an ``optional_gated_ratios``
block for ratios that only exist when an optional dependency is
importable (the ``arena-jit`` legs of ``bench_solver.py`` need numba).
Optional ratios are gated with the same tolerance but **only when both
artifacts carry them**: a numba-less smoke run simply skips the
compiled ratios of a numba-full baseline (and vice versa) instead of
failing, whereas a *required* ratio missing from the baseline demands
the baseline be regenerated.

CI runs this right after each smoke bench; a smoke artifact is
compared against the full-mode baseline on their common keys (e.g. the
sim1423 solver leg and the sim1423 pool churn only exist in full
mode).

Usage::

    PYTHONPATH=../src python compare_baseline.py \
        --baseline ../BENCH_solver.json --current out/solver.json
    PYTHONPATH=../src python compare_baseline.py --tolerance 0.5 \
        --baseline ../BENCH_serve.json --current out/serve.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: A gated ratio may drop at most this fraction below its baseline.
DEFAULT_TOLERANCE = 0.25


def gated_ratios(report: dict) -> dict[str, float]:
    """Extract every gated ratio of a bench artifact.

    Understands the ``bench_solver.py`` shapes (``instances`` /
    ``pool_churns``) plus the self-describing ``gated_ratios`` block
    newer benches (``bench_serve.py``) publish directly.
    """
    ratios: dict[str, float] = {}
    for entry in report.get("instances", []):
        ratios[f"speedup:{entry['instance']}"] = entry["speedup"]
    for churn in report.get("pool_churns", []):
        ratios[f"pool_churn:{churn.get('instance', '?')}"] = churn[
            "speedup"
        ]
    for key, value in report.get("gated_ratios", {}).items():
        if isinstance(value, (int, float)):
            ratios[key] = float(value)
    return ratios


def optional_gated_ratios(report: dict) -> dict[str, float]:
    """Ratios gated only when both artifacts publish them (the
    ``optional_gated_ratios`` block — optional-dependency legs)."""
    return {
        key: float(value)
        for key, value in report.get("optional_gated_ratios", {}).items()
        if isinstance(value, (int, float))
    }


def compare(
    baseline: dict, current: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Return (lines, failures) for the common gated ratios."""
    base_ratios = gated_ratios(baseline)
    cur_ratios = gated_ratios(current)
    lines: list[str] = []
    failures: list[str] = []
    common = sorted(set(base_ratios) & set(cur_ratios))
    if not common:
        failures.append(
            "no gated ratios in common between baseline and current "
            "artifacts"
        )
        return lines, failures
    for key in common:
        base = base_ratios[key]
        cur = cur_ratios[key]
        floor = base * (1.0 - tolerance)
        status = "ok" if cur >= floor else "REGRESSED"
        lines.append(
            f"{key:<24} baseline {base:6.2f}x  current {cur:6.2f}x  "
            f"floor {floor:6.2f}x  [{status}]"
        )
        if cur < floor:
            failures.append(
                f"{key}: {cur:.2f}x is more than "
                f"{tolerance:.0%} below the baseline {base:.2f}x"
            )
    for key in sorted(set(base_ratios) - set(cur_ratios)):
        lines.append(f"{key:<24} (baseline only — skipped)")
    for key in sorted(set(cur_ratios) - set(base_ratios)):
        # A ratio with no baseline cannot be gated here; surface it so
        # it is added to the committed baseline instead of drifting
        # silently.
        failures.append(
            f"{key}: present in the current artifact but missing from "
            "the baseline — regenerate the committed baseline artifact"
        )
    # Optional ratios: gated on the intersection, informational
    # everywhere else (an optional dependency present in only one of
    # the two runs is expected, never a failure).
    base_opt = optional_gated_ratios(baseline)
    cur_opt = optional_gated_ratios(current)
    for key in sorted(set(base_opt) & set(cur_opt)):
        base, cur = base_opt[key], cur_opt[key]
        floor = base * (1.0 - tolerance)
        status = "ok" if cur >= floor else "REGRESSED"
        lines.append(
            f"{key:<24} baseline {base:6.2f}x  current {cur:6.2f}x  "
            f"floor {floor:6.2f}x  [optional, {status}]"
        )
        if cur < floor:
            failures.append(
                f"{key}: {cur:.2f}x is more than {tolerance:.0%} below "
                f"the baseline {base:.2f}x (optional ratio present in "
                "both artifacts)"
            )
    for key in sorted(set(base_opt) ^ set(cur_opt)):
        where = "baseline" if key in base_opt else "current"
        lines.append(f"{key:<24} (optional, {where} only — skipped)")
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(Path(__file__).parent.parent / "BENCH_solver.json"),
        help="committed baseline artifact (repo root BENCH_solver.json)",
    )
    parser.add_argument(
        "--current",
        default=str(Path(__file__).parent / "out" / "solver.json"),
        help="artifact of the run under test (benchmarks/out/solver.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional regression of any gated ratio "
        "(default 0.25)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(Path(args.baseline).read_text())
    current = json.loads(Path(args.current).read_text())
    lines, failures = compare(baseline, current, args.tolerance)
    for line in lines:
        print(line)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"all gated ratios within {args.tolerance:.0%} of the baseline")
    return 0


def test_compare_baseline_self():
    """The committed baseline must agree with itself (sanity) and a
    fabricated regression must be caught."""
    baseline = json.loads(
        (Path(__file__).parent.parent / "BENCH_solver.json").read_text()
    )
    _, failures = compare(baseline, baseline, DEFAULT_TOLERANCE)
    assert not failures, failures
    regressed = json.loads(json.dumps(baseline))
    regressed["instances"][0]["speedup"] = (
        baseline["instances"][0]["speedup"] * 0.5
    )
    _, failures = compare(baseline, regressed, DEFAULT_TOLERANCE)
    assert failures


def test_compare_faultsim_baseline_self():
    """The committed fault-simulation baseline must agree with itself,
    and a fabricated codegen regression must be caught via its
    ``gated_ratios`` block."""
    baseline = json.loads(
        (Path(__file__).parent.parent / "BENCH_faultsim.json").read_text()
    )
    _, failures = compare(baseline, baseline, DEFAULT_TOLERANCE)
    assert not failures, failures
    regressed = json.loads(json.dumps(baseline))
    regressed["gated_ratios"]["faultsim:codegen_detect"] *= 0.4
    _, failures = compare(baseline, regressed, DEFAULT_TOLERANCE)
    assert failures


def test_optional_ratios_gated_only_on_intersection():
    """An ``optional_gated_ratios`` entry present in one artifact only
    is skipped; present in both, it is gated like any other ratio."""
    base = {"gated_ratios": {"x": 2.0}, "optional_gated_ratios": {}}
    cur = {
        "gated_ratios": {"x": 2.0},
        "optional_gated_ratios": {"jit:sim1423-p2": 3.5},
    }
    # current-only optional ratio: informational, never a failure
    _, failures = compare(base, cur, DEFAULT_TOLERANCE)
    assert not failures, failures
    # baseline-only optional ratio: also skipped
    _, failures = compare(cur, base, DEFAULT_TOLERANCE)
    assert not failures, failures
    # in both and regressed: caught
    regressed = {
        "gated_ratios": {"x": 2.0},
        "optional_gated_ratios": {"jit:sim1423-p2": 1.0},
    }
    _, failures = compare(cur, regressed, DEFAULT_TOLERANCE)
    assert failures
    # in both and healthy: passes
    _, failures = compare(cur, cur, DEFAULT_TOLERANCE)
    assert not failures, failures


def test_compare_serve_baseline_self():
    """The committed serving baseline must agree with itself, and a
    fabricated throughput regression must be caught via its
    ``gated_ratios`` block."""
    baseline = json.loads(
        (Path(__file__).parent.parent / "BENCH_serve.json").read_text()
    )
    _, failures = compare(baseline, baseline, DEFAULT_TOLERANCE)
    assert not failures, failures
    regressed = json.loads(json.dumps(baseline))
    regressed["gated_ratios"]["serve:throughput"] *= 0.4
    _, failures = compare(baseline, regressed, DEFAULT_TOLERANCE)
    assert failures


if __name__ == "__main__":
    sys.exit(main())
