"""Ablation bench — does the error *model* change the paper's story?

The paper's experiments inject gate-change errors (function replacement
over unchanged fanins).  The design-error literature it builds on
(ref [18]) uses the richer Abadir model zoo: extra/missing inverters and
wrong/extra/missing wires, which also change a gate's *support*.  This
ablation reruns one Table-2/3 cell per error model and checks that the
qualitative conclusions survive:

* the runtime ordering BSIM ≪ COV ≪ BSAT is model-independent;
* BSAT still returns only valid corrections;
* the actual error site is still among BSAT's solutions (a wire error
  changes the gate's function, so the site remains correctable).

Artifact: ``benchmarks/out/ablation_error_models.txt``.
"""

from conftest import write_artifact

from repro.circuits import random_circuit
from repro.diagnosis import is_valid_correction
from repro.experiments import Workload, run_cell
from repro.faults import random_gate_changes, random_wire_errors
from repro.testgen import distinguishing_tests

M = 8
P = 2


def _cells():
    circuit = random_circuit(n_inputs=10, n_outputs=6, n_gates=120, seed=404)
    cells = []
    for label, injector in (
        ("gate-change", random_gate_changes),
        ("wire-error", random_wire_errors),
    ):
        injection = injector(circuit, p=P, seed=11)
        tests = distinguishing_tests(circuit, injection.faulty, m=M)
        workload = Workload(
            name=f"{circuit.name}/{label}", injection=injection, tests=tests
        )
        cells.append((label, workload, run_cell(workload, m=M, solution_limit=100)))
    return cells


def test_error_model_ablation(benchmark):
    cells = benchmark.pedantic(_cells, rounds=1, iterations=1)
    lines = [
        f"Error-model ablation (120-gate circuit, p={P}, m={M})",
        f"{'model':12} {'BSIM':>7} {'COV all':>8} {'BSAT all':>9} "
        f"{'|uCi|':>6} {'COV#':>5} {'SAT#':>5} {'site in BSAT':>12}",
    ]
    for label, workload, cell in cells:
        site_hit = any(
            set(workload.sites) & set(sol) for sol in cell.sat_result.solutions
        )
        lines.append(
            f"{label:12} {cell.bsim_time * 1e3:>6.1f}ms "
            f"{cell.cov_all:>7.2f}s {cell.bsat_all:>8.2f}s "
            f"{cell.bsim.union_size:>6} {len(cell.cov_result.solutions):>5} "
            f"{len(cell.sat_result.solutions):>5} {str(site_hit):>12}"
        )
        # The paper's orderings must hold under both models.
        assert cell.bsim_time < cell.cov_all < cell.bsat_all
        assert site_hit
        # Lemma 1 is model-independent: every BSAT solution is valid.
        tests = workload.tests.prefix(M)
        for sol in cell.sat_result.solutions[:25]:
            assert is_valid_correction(workload.faulty, tests, sol)
    write_artifact("ablation_error_models.txt", "\n".join(lines))
