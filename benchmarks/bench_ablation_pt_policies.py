"""Ablation — path-tracing tie-break policies (DESIGN.md decision 5).

The paper leaves the "mark one of these inputs" choice open.  This bench
quantifies its impact: for each policy, the BSIM union size, whether an
actual error site gets the top mark count, and the downstream COV solution
count/quality.
"""

from conftest import write_artifact

from repro.diagnosis import (
    POLICIES,
    basic_sim_diagnose,
    bsim_quality,
    sc_diagnose,
    solution_quality,
)
from repro.experiments import make_workload


def run_policy_ablation():
    workload = make_workload("sim1423", p=2, m_max=16, seed=9)
    faulty, tests, sites = workload.faulty, workload.tests, workload.sites
    header = (
        f"{'policy':<9} {'|uCi|':>6} {'avgA':>6} {'Gmax':>5} "
        f"{'hit':>4} | {'COV #sol':>8} {'avg dist':>8}"
    )
    lines = [
        f"workload: {faulty.name}, p=2, m={tests.m}",
        header,
        "-" * len(header),
    ]
    for policy in POLICIES:
        sim = basic_sim_diagnose(faulty, tests, policy=policy)
        q = bsim_quality(faulty, sim, sites)
        cov = sc_diagnose(
            faulty, tests, k=2, sim_result=sim, solution_limit=500
        )
        sq = solution_quality(faulty, cov.solutions, sites)
        lines.append(
            f"{policy:<9} {q.union_size:>6} {q.avg_all:>6.2f} "
            f"{q.gmax_size:>5} {str(q.error_in_gmax):>4} | "
            f"{sq.n_solutions:>8} {sq.avg_avg:>8.2f}"
        )
    lines.append(
        "\n'all' over-marks (largest union) but never misses a sensitized "
        "path; single-choice policies trade recall for resolution."
    )
    return "\n".join(lines)


def test_pt_policy_ablation(benchmark):
    text = benchmark.pedantic(run_policy_ablation, rounds=1, iterations=1)
    write_artifact("ablation_pt_policies.txt", text)
    print("\n" + text)
