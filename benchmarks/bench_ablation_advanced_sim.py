"""Ablation — advanced simulation-based diagnosis cost growth.

The paper gives O(|I|^(k+1) * m) for the advanced simulation-based
approaches vs O(|I| * m) for BSIM.  This bench measures the blow-up on one
workload as k grows, and the gap between the PT-pool-restricted search and
BSAT (completeness loss vs runtime gain).
"""

import time

from conftest import write_artifact

from repro.circuits import random_circuit
from repro.diagnosis import (
    basic_sat_diagnose,
    basic_sim_diagnose,
    enumerate_sim_corrections,
    incremental_sim_diagnose,
)
from repro.experiments import make_workload


def run_sim_ablation():
    circuit = random_circuit(n_inputs=10, n_outputs=5, n_gates=100, seed=71)
    workload = make_workload(circuit, p=2, m_max=8, seed=8)
    faulty, tests = workload.faulty, workload.tests
    lines = [
        f"workload: {faulty.num_gates} gates, p=2, m={tests.m}",
        "",
        "cost growth with k (advanced sim, PT pool):",
    ]
    for k in (1, 2):
        start = time.perf_counter()
        adv = enumerate_sim_corrections(faulty, tests, k=k)
        wall = time.perf_counter() - start
        lines.append(
            f"  k={k}: {wall:7.2f}s, {adv.n_solutions} solutions, "
            f"pool={adv.extras['pool_size']}"
        )

    start = time.perf_counter()
    bsim = basic_sim_diagnose(faulty, tests)
    t_bsim = time.perf_counter() - start
    start = time.perf_counter()
    adv2 = enumerate_sim_corrections(faulty, tests, k=2)
    t_adv = time.perf_counter() - start
    start = time.perf_counter()
    inc = incremental_sim_diagnose(faulty, tests, k=2)
    t_inc = time.perf_counter() - start
    start = time.perf_counter()
    sat = basic_sat_diagnose(faulty, tests, k=2, solution_limit=200)
    t_sat = time.perf_counter() - start
    lines += [
        "",
        f"BSIM (marking only)     : {t_bsim*1e3:7.1f} ms",
        f"advanced sim (k=2)      : {t_adv:7.2f} s, "
        f"{adv2.n_solutions} solutions (subset of BSAT)",
        f"incremental sim (k=2)   : {t_inc:7.2f} s, "
        f"{inc.n_solutions} solutions",
        f"BSAT (k=2)              : {t_sat:7.2f} s, "
        f"{sat.n_solutions} solutions (complete)",
        "",
        f"completeness: advanced sim found "
        f"{adv2.n_solutions}/{sat.n_solutions} of BSAT's solutions "
        f"(missing ones lie outside the PT pool — the Lemma 4 gap)",
    ]
    assert set(adv2.solutions) <= set(sat.solutions)
    assert set(inc.solutions) <= set(sat.solutions)
    return "\n".join(lines)


def test_advanced_sim_ablation(benchmark):
    text = benchmark.pedantic(run_sim_ablation, rounds=1, iterations=1)
    write_artifact("ablation_advanced_sim.txt", text)
    print("\n" + text)
