"""Substrate bench — DRAT certification cost.

Certifying "no correction with ≤ k candidates" (Lemma 3's UNSAT side)
costs three things: proof logging during the solve, proof size, and the
independent RUP re-check.  This bench measures all three on a real
diagnosis refutation and on pigeonhole formulas, recording the overhead
factor a user pays for a checkable verdict.

It also pins the **zero-cost-when-off** property: with logging disabled
the solver's only proof-related work is one ``self._proof is None``
identity check per learnt clause (no method calls, no literal
conversion, no list builds anywhere in the search loop) —
``test_disabled_logging_overhead_under_two_percent`` races the shipped
solver against a guard-stripped control and asserts the off-path
overhead stays under 2%.

Artifact: ``benchmarks/out/proof_overhead.txt``.
"""

import random
import time
from itertools import combinations

from conftest import write_artifact

from repro.circuits import random_circuit
from repro.diagnosis import certify_correction_bound
from repro.experiments import make_workload
from repro.sat import CNF, Solver, check_drat, solve_with_proof


def _pigeonhole_cnf(holes):
    cnf = CNF()
    pigeons = holes + 1
    var = {
        (p, h): cnf.new_var(f"p{p}h{h}")
        for p in range(pigeons)
        for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1, p2 in combinations(range(pigeons), 2):
            cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


class _GuardStrippedSolver(Solver):
    """Control for the off-path measurement: ``_record_learnt`` with the
    proof guard deleted entirely (otherwise byte-identical)."""

    def _record_learnt(self, learnt):
        self.stats["learned"] += 1
        if len(learnt) == 1:
            self._enqueue(learnt[0], 0)
            return
        ref = self._alloc_clause(learnt, learnt=True)
        self._cla_activity[ref] = self._cla_inc
        self._learnts.append(ref)
        w0, w1 = learnt[0], learnt[1]
        ws = self._watches[w0]
        ws.append(ref)
        ws.append(w1)
        ws = self._watches[w1]
        ws.append(ref)
        ws.append(w0)
        self._enqueue(learnt[0], ref)
        if len(self._learnts) > max(2000, 2 * len(self._clauses)):
            self._reduce_learnts()


def _conflict_heavy_solve(cls):
    """A learning-heavy workload so per-learnt-clause costs dominate."""
    rng = random.Random(7)
    solver = cls()
    solver.ensure_vars(40)
    for _ in range(172):
        solver.add_clause(
            [rng.choice([1, -1]) * rng.randint(1, 40) for _ in range(3)]
        )
    solver.solve()
    return solver.stats["learned"]


def test_disabled_logging_overhead_under_two_percent():
    """Off-path proof support must cost <2% vs. a guard-free build."""
    # Interleave min-of-N measurements so machine noise hits both arms.
    best = {Solver: float("inf"), _GuardStrippedSolver: float("inf")}
    learned = {}
    for _ in range(9):
        for cls in (Solver, _GuardStrippedSolver):
            t0 = time.perf_counter()
            learned[cls] = _conflict_heavy_solve(cls)
            best[cls] = min(best[cls], time.perf_counter() - t0)
    # same search either way — the guard cannot change the result
    assert learned[Solver] == learned[_GuardStrippedSolver] > 0
    overhead = best[Solver] / best[_GuardStrippedSolver]
    assert overhead < 1.02, (
        f"proof-off path costs {100 * (overhead - 1):.2f}% over the "
        f"guard-stripped control (limit 2%)"
    )


def test_solve_without_proof(benchmark):
    def run():
        solver = Solver()
        _pigeonhole_cnf(5).to_solver(solver)
        return solver.solve()

    assert benchmark(run) is False


def test_solve_with_proof_logging(benchmark):
    def run():
        return solve_with_proof(_pigeonhole_cnf(5))

    sat, proof = benchmark(run)
    assert not sat and proof.ends_with_empty_clause


def test_proof_checking(benchmark):
    cnf = _pigeonhole_cnf(4)
    _sat, proof = solve_with_proof(cnf)

    assert benchmark.pedantic(
        lambda: check_drat(cnf.clauses, proof), rounds=1, iterations=1
    )


def test_certified_diagnosis_verdict(benchmark):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=303)
    workload = make_workload(circuit, p=2, m_max=4, seed=6)

    verdict = benchmark.pedantic(
        lambda: certify_correction_bound(workload.faulty, workload.tests, k=0),
        rounds=1,
        iterations=1,
    )
    assert not verdict.has_correction and verdict.verified


def test_record_overhead_artifact(benchmark):
    def measure():
        return _measure_rows()

    lines = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_artifact("proof_overhead.txt", "\n".join(lines))


def _measure_rows():
    lines = ["DRAT certification overhead", ""]
    for holes in (4, 5):
        cnf = _pigeonhole_cnf(holes)
        solver = Solver()
        cnf.to_solver(solver)
        t0 = time.perf_counter()
        assert solver.solve() is False
        t_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        _sat, proof = solve_with_proof(cnf)
        t_logged = time.perf_counter() - t0
        t0 = time.perf_counter()
        assert check_drat(cnf.clauses, proof)
        t_check = time.perf_counter() - t0
        lines.append(
            f"PHP({holes + 1},{holes}): solve {t_plain * 1e3:.1f} ms, "
            f"with logging {t_logged * 1e3:.1f} ms "
            f"({t_logged / max(t_plain, 1e-9):.2f}x), "
            f"proof {len(proof)} steps, check {t_check * 1e3:.1f} ms"
        )
    return lines
