"""Substrate bench — DRAT certification cost.

Certifying "no correction with ≤ k candidates" (Lemma 3's UNSAT side)
costs three things: proof logging during the solve, proof size, and the
independent RUP re-check.  This bench measures all three on a real
diagnosis refutation and on pigeonhole formulas, recording the overhead
factor a user pays for a checkable verdict.

Artifact: ``benchmarks/out/proof_overhead.txt``.
"""

import time
from itertools import combinations

from conftest import write_artifact

from repro.circuits import random_circuit
from repro.diagnosis import certify_correction_bound
from repro.experiments import make_workload
from repro.sat import CNF, Solver, check_drat, solve_with_proof


def _pigeonhole_cnf(holes):
    cnf = CNF()
    pigeons = holes + 1
    var = {
        (p, h): cnf.new_var(f"p{p}h{h}")
        for p in range(pigeons)
        for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add_clause([var[(p, h)] for h in range(holes)])
    for h in range(holes):
        for p1, p2 in combinations(range(pigeons), 2):
            cnf.add_clause([-var[(p1, h)], -var[(p2, h)]])
    return cnf


def test_solve_without_proof(benchmark):
    def run():
        solver = Solver()
        _pigeonhole_cnf(5).to_solver(solver)
        return solver.solve()

    assert benchmark(run) is False


def test_solve_with_proof_logging(benchmark):
    def run():
        return solve_with_proof(_pigeonhole_cnf(5))

    sat, proof = benchmark(run)
    assert not sat and proof.ends_with_empty_clause


def test_proof_checking(benchmark):
    cnf = _pigeonhole_cnf(4)
    _sat, proof = solve_with_proof(cnf)

    assert benchmark.pedantic(
        lambda: check_drat(cnf.clauses, proof), rounds=1, iterations=1
    )


def test_certified_diagnosis_verdict(benchmark):
    circuit = random_circuit(n_inputs=6, n_outputs=3, n_gates=30, seed=303)
    workload = make_workload(circuit, p=2, m_max=4, seed=6)

    verdict = benchmark.pedantic(
        lambda: certify_correction_bound(workload.faulty, workload.tests, k=0),
        rounds=1,
        iterations=1,
    )
    assert not verdict.has_correction and verdict.verified


def test_record_overhead_artifact(benchmark):
    def measure():
        return _measure_rows()

    lines = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_artifact("proof_overhead.txt", "\n".join(lines))


def _measure_rows():
    lines = ["DRAT certification overhead", ""]
    for holes in (4, 5):
        cnf = _pigeonhole_cnf(holes)
        solver = Solver()
        cnf.to_solver(solver)
        t0 = time.perf_counter()
        assert solver.solve() is False
        t_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        _sat, proof = solve_with_proof(cnf)
        t_logged = time.perf_counter() - t0
        t0 = time.perf_counter()
        assert check_drat(cnf.clauses, proof)
        t_check = time.perf_counter() - t0
        lines.append(
            f"PHP({holes + 1},{holes}): solve {t_plain * 1e3:.1f} ms, "
            f"with logging {t_logged * 1e3:.1f} ms "
            f"({t_logged / max(t_plain, 1e-9):.2f}x), "
            f"proof {len(proof)} steps, check {t_check * 1e3:.1f} ms"
        )
    return lines
