#!/usr/bin/env python3
"""Reproduce one cell of the paper's Tables 2 and 3 interactively.

Runs BSIM, COV and BSAT on an ISCAS89-scale stand-in circuit (sim1423)
with 2 injected errors and 4/8 tests, then prints paper-style rows and the
qualitative conclusions of Section 5.

Run:  python examples/compare_approaches.py [--circuit sim1423] [--p 2]
"""

import argparse

from repro.experiments import (
    format_cell_summary,
    format_fig6,
    format_table2,
    format_table3,
    make_workload,
    run_cell,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="sim1423")
    parser.add_argument("--p", type=int, default=2, help="#injected errors")
    parser.add_argument(
        "--m", type=int, nargs="+", default=[4, 8], help="test counts"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--limit", type=int, default=100, help="solution cap per approach"
    )
    args = parser.parse_args()

    print(f"building workload: {args.circuit}, p={args.p} ...")
    workload = make_workload(
        args.circuit, p=args.p, m_max=max(args.m), seed=args.seed
    )
    print(f"injected at: {', '.join(workload.sites)}\n")

    cells = []
    for m in args.m:
        print(f"running cell m={m} ...")
        cell = run_cell(workload, m=m, solution_limit=args.limit)
        cells.append(cell)
        print(format_cell_summary(cell), "\n")

    print(format_table2(cells))
    print()
    print(format_table3(cells))
    print()
    print(format_fig6(cells))
    print(
        "\nAs in the paper: BSIM is fastest but only guides; COV is fast "
        "but may return invalid corrections; BSAT is slowest and returns "
        "exactly the valid corrections."
    )


if __name__ == "__main__":
    main()
