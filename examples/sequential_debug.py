#!/usr/bin/env python3
"""Sequential diagnosis via time-frame expansion (paper ref [4]).

A sequential design (a small random FSM-like circuit) has a gate-change
error.  Failing input *sequences* are found against the golden model and
the error is localized with the time-frame-expanded SAT formulation, where
the select line of a gate is shared over all frames.

Run:  python examples/sequential_debug.py
"""

from repro.circuits import random_sequential_circuit
from repro.diagnosis import failing_sequences, seq_sat_diagnose
from repro.faults import random_gate_changes


def main() -> None:
    golden = random_sequential_circuit(
        n_inputs=5, n_outputs=3, n_gates=40, n_dffs=4, seed=11
    )
    # The single-frame detectability check does not apply to sequential
    # errors; draw injections until one is excitable within 4 frames.
    injection = None
    seqs: list = []
    for seed in range(20):
        candidate = random_gate_changes(
            golden, p=1, seed=seed, ensure_detectable=False
        )
        seqs = failing_sequences(
            golden, candidate.faulty, m=6, n_frames=4, seed=5
        )
        if seqs:
            injection = candidate
            break
    assert injection is not None, "no excitable sequential injection found"
    faulty = injection.faulty
    print(
        f"sequential circuit: {golden.num_gates} gates, "
        f"{len(golden.dffs)} DFFs; hidden error at {injection.sites[0]} "
        f"({injection.errors[0].describe()})\n"
    )
    print(f"found {len(seqs)} failing sequences over 4 clock cycles")
    for s in seqs[:3]:
        print(
            f"   mismatch at frame {s.frame}, output {s.output} "
            f"(should be {s.value})"
        )

    result = seq_sat_diagnose(faulty, seqs, k=1)
    print(
        f"\ntime-frame diagnosis: {result.n_solutions} candidate "
        f"corrections in {result.t_all:.2f}s "
        f"(instance: {result.extras['n_vars']} vars, "
        f"{result.extras['n_clauses']} clauses)"
    )
    for sol in result.solutions:
        (gate,) = sol
        tag = "  <-- actual error" if gate == injection.sites[0] else ""
        print(f"   {{{gate}}}{tag}")


if __name__ == "__main__":
    main()
