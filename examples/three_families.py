#!/usr/bin/env python3
"""One bug, every diagnosis family the paper's introduction surveys.

The introduction positions three families of error-location techniques:

* **structural** approaches [12] — rely on implementation/specification
  similarity (break under synthesis restructuring);
* **BDD-based** approaches [6, 8] — canonical, complete, but space-bound;
* **test-vector** approaches — the paper's subject: BSIM, COV, BSAT.

This example runs all of them on the same injected bug, first on a
similar implementation, then on a restructured one, showing exactly the
strengths and failure modes the intro claims.

Run:  python examples/three_families.py
"""

from repro.bdd import single_fix_candidates
from repro.circuits import decompose_wide_gates
from repro.circuits.library import mux_tree
from repro.diagnosis import (
    basic_sat_diagnose,
    basic_sim_diagnose,
    sc_diagnose,
    structural_diagnose,
)
from repro.faults import random_gate_changes
from repro.testgen import distinguishing_tests


def _run_families(spec, impl_base, label):
    print(f"=== implementation: {label} "
          f"({impl_base.num_gates} gates) ===")
    inj = random_gate_changes(impl_base, p=1, seed=5)
    site = inj.sites[0]
    print(f"injected bug (hidden): {inj.errors[0].describe()}")

    # --- structural: signature correspondence --------------------------
    diag = structural_diagnose(spec, inj.faulty, seed=0)
    hit = site in diag.suspects
    print(f"[structural] {diag.suspect_count} suspects, "
          f"{len(diag.sources)} sources; bug flagged: {hit}")

    # --- BDD: all-vector rectification ----------------------------------
    fixes = single_fix_candidates(spec, inj.faulty)
    names = [r.gate for r in fixes]
    print(f"[BDD]        {len(names)} single-fix candidates "
          f"(complete over all vectors); bug included: {site in names}")

    # --- test vectors: the paper's BSIM / COV / BSAT --------------------
    tests = distinguishing_tests(spec, inj.faulty, m=8)
    sim = basic_sim_diagnose(inj.faulty, tests)
    cov = sc_diagnose(inj.faulty, tests, k=1, sim_result=sim)
    sat = basic_sat_diagnose(inj.faulty, tests, k=1)
    marked = set().union(*sim.candidate_sets)
    sat_gates = {next(iter(s)) for s in sat.solutions}
    print(f"[BSIM]       {len(marked)} marked gates; bug marked: "
          f"{site in marked}")
    print(f"[COV]        {cov.n_solutions} covers (no validity guarantee)")
    print(f"[BSAT]       {sat.n_solutions} valid corrections; bug included: "
          f"{site in sat_gates}")
    print()


def main() -> None:
    spec = mux_tree(3)
    print(f"specification: {spec.name} with {spec.num_gates} gates\n")

    # Case 1: the implementation is structurally similar to the spec.
    _run_families(spec, spec.copy(), "similar (pre-synthesis)")

    # Case 2: a synthesis-like rewrite decomposed the wide gates — the
    # structural baseline's similarity assumption is gone.
    restructured = decompose_wide_gates(spec, max_fanin=2, seed=7)
    _run_families(spec, restructured, "restructured (post-synthesis)")

    print("takeaway: the test-vector family (the paper's subject) is the")
    print("only one that is both synthesis-robust and size-robust; BSAT")
    print("additionally guarantees valid corrections (Lemma 1).")


if __name__ == "__main__":
    main()
