#!/usr/bin/env python3
"""Quickstart: diagnose an injected gate-change error three ways.

Builds a small random circuit, injects one gate-change error, collects
failing tests, and runs the paper's three basic approaches — BSIM (path
tracing), COV (set covering) and BSAT (SAT with correction multiplexers) —
printing what each one can and cannot tell you.

Run:  python examples/quickstart.py
"""

from repro.circuits import random_circuit
from repro.diagnosis import (
    basic_sat_diagnose,
    basic_sim_diagnose,
    is_valid_correction,
    sc_diagnose,
)
from repro.experiments import make_workload


def main() -> None:
    circuit = random_circuit(n_inputs=8, n_outputs=4, n_gates=60, seed=2024)
    workload = make_workload(circuit, p=1, m_max=8, seed=7)
    faulty, tests = workload.faulty, workload.tests
    print(f"circuit: {faulty.name} with {faulty.num_gates} gates")
    print(f"injected error (hidden from the tools): {workload.sites[0]}")
    print(f"failing tests: {tests.m}\n")

    # --- BSIM: fast, returns marked candidates, no guarantees -----------
    sim = basic_sim_diagnose(faulty, tests)
    ranked = sorted(sim.marks, key=lambda g: -sim.marks[g])
    print(f"BSIM marked {len(sim.union)} gates "
          f"(in {sim.runtime * 1e3:.1f} ms); top by mark count:")
    for g in ranked[:5]:
        tag = "  <-- actual error" if g == workload.sites[0] else ""
        print(f"   {g}: marked by {sim.marks[g]}/{tests.m} tests{tag}")

    # --- COV: minimal covers of the candidate sets ----------------------
    cov = sc_diagnose(faulty, tests, k=1, sim_result=sim)
    print(f"\nCOV found {cov.n_solutions} size-1 covers "
          f"(in {cov.t_all * 1e3:.1f} ms)")
    invalid = [
        s for s in cov.solutions if not is_valid_correction(faulty, tests, s)
    ]
    print(f"   ... of which {len(invalid)} are NOT valid corrections "
          f"(Lemma 2: no effect analysis)")

    # --- BSAT: guaranteed valid corrections -----------------------------
    sat = basic_sat_diagnose(faulty, tests, k=1, collect_corrections=True)
    print(f"\nBSAT found {sat.n_solutions} valid corrections "
          f"(in {sat.t_all:.2f} s):")
    for sol in sat.solutions:
        (gate,) = sol
        tag = "  <-- actual error" if gate == workload.sites[0] else ""
        print(f"   {{{gate}}}{tag}")
    corrections = sat.extras["corrections"]
    site_fixes = next(
        (vals for sol, vals in corrections.items()
         if workload.sites[0] in sol),
        None,
    )
    if site_fixes:
        print(f"\nper-test correction values at {workload.sites[0]} "
              f"(the 'correct function' witness): "
              f"{site_fixes[workload.sites[0]]}")


if __name__ == "__main__":
    main()
