#!/usr/bin/env python3
"""Realistic debug scenario: a ripple-carry adder with a wrong gate.

An engineer implemented a 4-bit adder but typed OR where a XOR belonged
(a classic design error).  The verification flow found mismatching vectors
against the golden model; this script shows the full debug loop:

1. failing tests from the mismatching vectors,
2. BSAT diagnosis to get every possible single-gate correction,
3. validity/essentialness double-check,
4. the per-test correction values revealing the intended function.

Run:  python examples/locate_design_error.py
"""

from repro.circuits import GateType, library
from repro.diagnosis import (
    basic_sat_diagnose,
    has_only_essential_candidates,
)
from repro.faults import GateChangeError, apply_error
from repro.testgen import distinguishing_tests


def main() -> None:
    golden = library.ripple_carry_adder(4)
    # The typo: sum bit 2 computed with OR instead of XOR.
    buggy = apply_error(
        golden, GateChangeError("s2", GateType.XOR, GateType.OR)
    )
    print("golden:", golden.name, "| buggy gate: s2 (XOR typed as OR)\n")

    tests = distinguishing_tests(golden, buggy, m=12)
    print(f"verification produced {tests.m} failing tests, e.g.:")
    t0 = tests[0]
    assignment = {k: t0.vector[k] for k in sorted(t0.vector)}
    print(f"   inputs {assignment}")
    print(f"   output {t0.output} should be {t0.value}\n")

    result = basic_sat_diagnose(buggy, tests, k=1, collect_corrections=True)
    print(f"BSAT corrections of size 1 ({result.n_solutions} total):")
    for sol in result.solutions:
        essential = has_only_essential_candidates(buggy, tests, sol)
        (gate,) = sol
        mark = " <-- the typo" if gate == "s2" else ""
        print(f"   {{{gate}}} essential={essential}{mark}")

    corrections = result.extras["corrections"]
    s2_fix = next(
        (vals["s2"] for sol, vals in corrections.items() if "s2" in sol),
        None,
    )
    if s2_fix is not None:
        print("\nwhat value should s2 take per test? ", s2_fix)
        print("cross-check against XOR of its fanins per test:")
        from repro.sim import simulate

        agree = True
        for i, test in enumerate(tests):
            values = simulate(buggy, test.vector)
            intended = values["p2"] ^ values["c1"]  # XOR semantics
            got = s2_fix[i]
            if got != -1 and got != intended:
                agree = False
        print(
            "   the correction values match the XOR function on every "
            "test" if agree else "   (values constrain only some tests)"
        )
    print("\nconclusion: replace the OR at s2 by XOR.")


if __name__ == "__main__":
    main()
