#!/usr/bin/env python3
"""BDD vs SAT: equivalence checking, rectification, and the blowup.

The paper's introduction contrasts the test-vector diagnosis approaches it
studies with BDD-based ones [6, 8], which "suffer from space complexity
issues".  This example shows both sides of that trade-off:

1. equivalence checking of an adder with all three engines (random / SAT /
   BDD) — everything agrees and is fast;
2. BDD-based *single-fix rectification*: unlike the test-set-based BSAT,
   the BDD baseline certifies candidates against **all** input vectors at
   once and emits the rectifying function;
3. the blowup: the same BDD engine cannot build a modest multiplier within
   a generous node budget, while the SAT miter handles it — the intro's
   criticism, live.

Run:  python examples/bdd_vs_sat.py
"""

from repro.bdd import BddBlowupError, build_output_bdds, single_fix_candidates
from repro.circuits import GateType
from repro.circuits.library import array_multiplier, ripple_carry_adder
from repro.diagnosis import basic_sat_diagnose
from repro.faults import GateChangeError, apply_error
from repro.testgen import distinguishing_tests
from repro.verify import check_equivalence


def main() -> None:
    golden = ripple_carry_adder(6)
    print(f"design: {golden.name} with {golden.num_gates} gates\n")

    # --- 1. three equivalence-checking engines ---------------------------
    # (Fun fact caught by these very tools: OR -> XOR at a carry gate is
    # *untestable* — the generate/propagate terms are mutually exclusive —
    # so we break the carry with OR -> AND instead.)
    impl = apply_error(
        golden, GateChangeError("c2", GateType.OR, GateType.AND)
    )
    for method in ("random", "sat", "bdd"):
        result = check_equivalence(golden, impl, method=method)
        print(f"CEC[{method:6}] vs buggy impl: {result.summary()}")
    print()

    # --- 2. BDD rectification vs test-set BSAT ---------------------------
    fixes = single_fix_candidates(golden, impl)
    print(f"BDD single-fix candidates (valid for ALL {2**13} input vectors):")
    for fix in fixes:
        kind = "constant" if fix.is_constant() else "function of the inputs"
        tag = "  <-- actual error" if fix.gate == "c2" else ""
        print(f"   {fix.gate}: rectifiable by a {kind}{tag}")

    tests = distinguishing_tests(golden, impl, m=8)
    sat = basic_sat_diagnose(impl, tests, k=1)
    bdd_names = {f.gate for f in fixes}
    sat_names = {next(iter(s)) for s in sat.solutions}
    print(f"\nBSAT candidates for 8 failing tests: {len(sat_names)}")
    print(f"BDD candidates are a subset of BSAT's: {bdd_names <= sat_names}")
    print("   (BSAT keeps candidates that merely survive these 8 tests;")
    print("    the BDD check quantifies over every vector)\n")

    # --- 3. the space blowup ----------------------------------------------
    print("node counts under a 50k-node budget:")
    for circuit in (ripple_carry_adder(16), array_multiplier(4)):
        built = build_output_bdds(circuit, max_nodes=50_000)
        print(f"   {circuit.name:8}: {built.node_count} BDD nodes")
    mul = array_multiplier(8)
    try:
        build_output_bdds(mul, max_nodes=50_000)
        print(f"   {mul.name:8}: fits (unexpected!)")
    except BddBlowupError:
        print(f"   {mul.name:8}: BLOWUP — exceeds 50k nodes "
              f"({mul.num_gates} gates)")
    small = array_multiplier(6)
    result = check_equivalence(small, small.copy(), method="sat")
    print(f"   ... while SAT checks {small.name} equivalence in "
          f"{result.elapsed:.2f}s: {result.equivalent}")


if __name__ == "__main__":
    main()
