#!/usr/bin/env python3
"""Property checking → counterexample trace → sequential diagnosis.

The paper motivates diagnosis with "dynamic verification, property
checking, equivalence checking" (§1): a checker *detects* the bug, then a
diagnosis engine *locates* it.  This example closes that loop on a
sequential circuit:

1. a gate-change error is hidden in the ISCAS89 s27 benchmark;
2. bounded model checking of the product machine finds the shortest input
   sequence distinguishing the buggy design from its specification;
3. the trace is converted into sequential diagnosis tests;
4. time-frame-expanded SAT diagnosis (the paper's ref [4] extension)
   pinpoints the error.

Run:  python examples/bmc_counterexample_debug.py
"""

from repro.circuits import GateType
from repro.circuits.library import s27
from repro.diagnosis import seq_sat_diagnose
from repro.faults import GateChangeError, apply_error
from repro.verify import bmc_assertion, bmc_equivalence, trace_to_sequence_tests


def main() -> None:
    golden = s27()
    error = GateChangeError("G10", GateType.NOR, GateType.NAND)
    buggy = apply_error(golden, error)
    print(f"design: {golden.name} ({golden.num_gates} gates, "
          f"{len(golden.dffs)} DFFs)")
    print(f"hidden bug: {error.describe()}\n")

    # --- 1. BMC equivalence: find the shortest distinguishing sequence ----
    result = bmc_equivalence(golden, buggy, bound=8)
    print(f"BMC product machine: {result.summary()}")
    if not result.violated:
        print("no divergence within the bound — nothing to debug")
        return
    for frame, vector in enumerate(result.trace):
        values = "".join(str(vector[pi]) for pi in golden.inputs)
        print(f"   frame {frame}: inputs {dict(sorted(vector.items()))} "
              f"({values})")
    print()

    # --- 2. trace → sequential diagnosis tests ----------------------------
    tests = trace_to_sequence_tests(golden, buggy, result.trace)
    print(f"the trace yields {len(tests)} failing (frame, output) "
          f"observation(s):")
    for t in tests:
        print(f"   output {t.output!r} at frame {t.frame}: "
              f"correct value {t.value}")
    print()

    # --- 3. time-frame-expanded SAT diagnosis ------------------------------
    diag = seq_sat_diagnose(buggy, tests, k=1)
    print(f"sequential SAT diagnosis (k=1): {diag.n_solutions} corrections")
    for sol in diag.solutions:
        (gate,) = sol
        tag = "  <-- actual bug" if gate == error.gate else ""
        print(f"   {{{gate}}}{tag}")
    print()

    # --- bonus: assertion-style BMC on the golden design -------------------
    # "can output G17 ever rise?" — a liveness-ish reachability query.
    reach = bmc_assertion(golden, "G17", bound=6, bad_value=1)
    print(f"BMC reachability of G17=1 on the golden design: {reach.summary()}")


if __name__ == "__main__":
    main()
