#!/usr/bin/env python3
"""Production test end to end: ATPG, tester response, fault diagnosis.

The paper's §1 lists post-production test as a source of diagnosis
problems.  This example runs that flow completely:

1. collapse the stuck-at fault universe of a design (equivalence +
   dominance collapsing);
2. generate a compact pattern set with PODEM (fault dropping by deductive
   simulation, reverse-order compaction) and report coverage;
3. manufacture a "defective chip" (inject a stuck-at defect);
4. apply the pattern set on the virtual tester and record the failing
   responses;
5. diagnose: fault-dictionary matching plus the paper's BSAT on the
   failing tests.

Run:  python examples/atpg_flow.py
"""

from repro.circuits.library import ripple_carry_adder
from repro.diagnosis import basic_sat_diagnose, diagnose_stuck_at
from repro.faults import StuckAtFault, apply_error, collapse_faults
from repro.sim import response
from repro.testgen import Test, TestSet, generate_tests


def main() -> None:
    design = ripple_carry_adder(8)
    print(f"design: {design.name} with {design.num_gates} gates")

    # --- 1. fault list ---------------------------------------------------
    collapsed = collapse_faults(design)
    print(
        f"stuck-at universe: {len(collapsed.universe)} faults, "
        f"collapsed to {len(collapsed.representatives)} "
        f"({100 * collapsed.collapse_ratio:.0f}%)"
    )

    # --- 2. ATPG ----------------------------------------------------------
    result = generate_tests(design, backend="podem", seed=42)
    print(result.summary())
    print(f"patterns after reverse-order compaction: {result.test_count}\n")

    # --- 3. a defective chip ----------------------------------------------
    defect = StuckAtFault("c3", 0)  # carry chain broken mid-way
    chip = apply_error(design, defect)
    print(f"defective chip manufactured with hidden defect: {defect.describe()}")

    # --- 4. the virtual tester --------------------------------------------
    failing: list[Test] = []
    tester_log: list[dict[str, int]] = []
    for pattern in result.patterns:
        expected = response(design, pattern)
        observed = response(chip, pattern)
        tester_log.append(dict(zip(design.outputs, observed)))
        if expected != observed:
            idx = next(
                i for i, (e, g) in enumerate(zip(expected, observed)) if e != g
            )
            failing.append(
                Test(
                    vector=dict(pattern),
                    output=design.outputs[idx],
                    value=expected[idx],
                )
            )
    print(f"tester: {len(failing)}/{result.test_count} patterns fail\n")

    # --- 5a. cause-effect diagnosis (fault dictionary) ---------------------
    dictionary = diagnose_stuck_at(
        design, [dict(p) for p in result.patterns], tester_log
    )
    print("fault-dictionary diagnosis (top candidates):")
    for match in dictionary.extras["matches"][:5]:
        tag = "  <-- actual defect" if match.fault == defect else ""
        print(
            f"   {match.fault.describe()}: "
            f"{match.mismatch_bits} mismatching response bits{tag}"
        )

    # --- 5b. the paper's BSAT on the failing tests -------------------------
    tests = TestSet(tuple(failing))
    sat = basic_sat_diagnose(chip, tests, k=1)
    print(f"\nBSAT corrections (k=1): {sat.n_solutions} solutions")
    for sol in sat.solutions[:5]:
        (gate,) = sol
        tag = "  <-- actual defect site" if gate == defect.signal else ""
        print(f"   {{{gate}}}{tag}")


if __name__ == "__main__":
    main()
