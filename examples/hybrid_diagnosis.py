#!/usr/bin/env python3
"""The paper's §6 hybrids in action: PT-guided SAT and correction repair.

Hybrid 1 seeds the SAT solver's decision heuristic with path-tracing mark
counts.  Hybrid 2 takes a (cheap, possibly invalid) COV solution and
repairs it into a valid correction by searching only a structural
neighbourhood.  Both are compared against plain BSAT on the same workload.

Run:  python examples/hybrid_diagnosis.py
"""

from repro.circuits import random_circuit
from repro.diagnosis import (
    basic_sat_diagnose,
    is_valid_correction,
    pt_guided_sat_diagnose,
    repair_correction_sat,
    sc_diagnose,
)
from repro.experiments import make_workload


def main() -> None:
    circuit = random_circuit(n_inputs=10, n_outputs=5, n_gates=150, seed=99)
    workload = make_workload(circuit, p=2, m_max=8, seed=3)
    faulty, tests = workload.faulty, workload.tests
    print(
        f"workload: {faulty.num_gates} gates, p={workload.p}, "
        f"m={tests.m}; errors at {workload.sites}\n"
    )

    plain = basic_sat_diagnose(faulty, tests, k=2)
    print(
        f"BSAT          : {plain.n_solutions} solutions, "
        f"first in {plain.t_first:.2f}s, all in {plain.t_all:.2f}s, "
        f"{plain.extras['solver_stats']['decisions']} decisions"
    )

    guided = pt_guided_sat_diagnose(faulty, tests, k=2)
    print(
        f"PT-guided SAT : {guided.n_solutions} solutions, "
        f"first in {guided.t_first:.2f}s, all in {guided.t_all:.2f}s, "
        f"{guided.extras['solver_stats']['decisions']} decisions"
    )
    assert set(guided.solutions) == set(plain.solutions)
    print("   (identical solution sets — guidance only reorders search)\n")

    cov = sc_diagnose(faulty, tests, k=2, solution_limit=5)
    initial = cov.solutions[0]
    valid = is_valid_correction(faulty, tests, initial)
    print(
        f"COV initial correction: {sorted(initial)} "
        f"(valid={valid}, found in {cov.t_all*1e3:.0f} ms)"
    )
    repaired = repair_correction_sat(faulty, tests, initial)
    print(
        f"repair        : {repaired.n_solutions} valid corrections within "
        f"radius {repaired.extras.get('radius')} "
        f"({repaired.extras.get('suspects', faulty.num_gates)} suspects "
        f"vs {faulty.num_gates} for BSAT), in {repaired.t_all:.2f}s"
    )
    for sol in repaired.solutions[:5]:
        print(f"   {sorted(sol)}")


if __name__ == "__main__":
    main()
