#!/usr/bin/env python3
"""Production-test diagnosis: a device fails on the tester.

The paper's introduction lists production test among the settings where
diagnosis matters.  Here a manufactured device has a stuck-at defect; the
tester applies patterns and logs full output responses.  Two flows locate
the defect:

1. classic cause-effect stuck-at diagnosis — every candidate fault
   simulated in ONE fault-parallel batched sweep
   (:mod:`repro.sim.batchfault`, the default ``engine="batch"``), with
   the fault-dropping exact matcher shown alongside, and
2. the paper's BSAT formulation fed with the failing (t, o, v) triples —
   showing the same SAT machinery covers test diagnosis, exactly as
   ref [1] argues error location and fault diagnosis coincide.

Run:  python examples/production_test_diagnosis.py
"""

import random

from repro.circuits import random_circuit
from repro.diagnosis import basic_sat_diagnose, diagnose_stuck_at
from repro.faults import StuckAtFault, apply_error
from repro.sim import exact_match_faults, output_values
from repro.testgen import tests_from_vectors, TestSet


def main() -> None:
    design = random_circuit(n_inputs=10, n_outputs=5, n_gates=120, seed=77)
    rng = random.Random(42)
    patterns = [
        {pi: rng.getrandbits(1) for pi in design.inputs} for _ in range(64)
    ]
    # Pick a defect the tester's patterns actually excite (an unexcited
    # defect is invisible by definition — the tester would pass the part).
    defect = dut = observed = None
    for gate in design.gates[30:]:
        for value in (1, 0):
            candidate = StuckAtFault(gate.name, value)
            trial_dut = apply_error(design, candidate)
            trial_observed = [output_values(trial_dut, p) for p in patterns]
            if any(
                o != output_values(design, p)
                for p, o in zip(patterns, trial_observed)
            ):
                defect, dut, observed = candidate, trial_dut, trial_observed
                break
        if defect is not None:
            break
    assert defect is not None, "no excitable defect found"
    print(f"design: {design.num_gates} gates; hidden defect: {defect.describe()}\n")

    failing = sum(
        1
        for p, o in zip(patterns, observed)
        if o != output_values(design, p)
    )
    print(f"tester log: {len(patterns)} patterns applied, {failing} failing\n")

    # --- flow 1: stuck-at dictionary diagnosis --------------------------
    result = diagnose_stuck_at(design, patterns, observed)
    exact = [m for m in result.extras["matches"] if m.exact]
    print(
        f"stuck-at diagnosis: {result.extras['n_faults']} candidate faults "
        f"simulated in {result.t_all:.2f}s "
        f"({result.extras['engine']} engine); {len(exact)} exact matches:"
    )
    for m in exact[:6]:
        tag = "  <-- the defect" if m.fault == defect else ""
        print(f"   {m.fault.describe()}{tag}")

    # Same answer, skipping the full ranking: fault dropping masks every
    # candidate out of the batch as soon as it mismatches the tester log.
    survivors = exact_match_faults(design, patterns, observed)
    assert sorted(map(str, survivors)) == sorted(str(m.fault) for m in exact)
    print(
        f"fault-dropping exact matcher agrees: "
        f"{len(survivors)} perfect explanations"
    )

    # --- flow 2: BSAT on the failing triples -----------------------------
    tests = TestSet(
        tuple(
            tests_from_vectors(design, dut, patterns, per_vector_outputs=1)
        )[:8]
    )
    sat = basic_sat_diagnose(dut, tests, k=1, solution_limit=50)
    print(
        f"\nBSAT (k=1, {tests.m} failing triples): "
        f"{sat.n_solutions} valid corrections in {sat.t_all:.2f}s"
    )
    for sol in sat.solutions[:6]:
        (gate,) = sol
        tag = "  <-- the defect site" if gate == defect.signal else ""
        print(f"   {{{gate}}}{tag}")
    hit = any(defect.signal in sol for sol in sat.solutions)
    print(
        "\nboth flows agree on the defect site."
        if hit and any(m.fault == defect for m in exact)
        else "\nflows disagree — inspect the ranking above."
    )


if __name__ == "__main__":
    main()
